#!/usr/bin/env bash
# Full verification gate: static lint -> type check -> tier-1 tests ->
# differential equivalence over the two fastest workloads.
#
# ruff and mypy are optional locally (skipped with a notice when absent,
# so the gate stays runnable anywhere); under REPRO_CI=1 a missing tool
# is a gate FAILURE — CI images must install the [dev] extra, which pins
# both (pyproject.toml).
set -u

cd "$(dirname "$0")/.."
export PYTHONPATH=src

failures=0

step() {
    echo
    echo "==> $*"
}

# require <tool>: 0 if the tool must run and is present, 1 to skip.
# Missing tools only skip outside CI; in CI they count as failures.
require() {
    if command -v "$1" >/dev/null 2>&1; then
        return 0
    fi
    if [ "${REPRO_CI:-0}" = "1" ]; then
        echo "$1 not installed but REPRO_CI=1: FAIL (pip install -e .[dev])"
        failures=$((failures + 1))
    else
        echo "$1 not installed; skipping"
    fi
    return 1
}

step "ruff (static lint)"
if require ruff; then
    ruff check src tests || failures=$((failures + 1))
fi

step "mypy (type check)"
if require mypy; then
    mypy || failures=$((failures + 1))
fi

step "pytest (tier-1 suite)"
# Coverage floor: with pytest-cov available the tier-1 run also
# measures line coverage of the four timing-core packages (the
# columnar kernels and their scalar references) and fails below 85%
# — a retired scalar path or a dead columnar branch that the
# differential suites stopped reaching shows up here before it rots.
# Like ruff/mypy, the plugin is optional locally and mandatory in CI
# (pytest-cov ships in the [dev] extra); it is a python package, not
# a binary, so the availability probe is an import, not command -v.
cov_args=""
if python -c "import pytest_cov" >/dev/null 2>&1; then
    cov_args="--cov=repro.ooo --cov=repro.pipeline --cov=repro.multipass \
--cov=repro.runahead --cov-report=term --cov-fail-under=85"
elif [ "${REPRO_CI:-0}" = "1" ]; then
    echo "pytest-cov not installed but REPRO_CI=1: FAIL (pip install -e .[dev])"
    failures=$((failures + 1))
else
    echo "pytest-cov not installed; running without the coverage floor"
fi
# Shard across CPUs when pytest-xdist is available; serial otherwise.
if python -c "import xdist" >/dev/null 2>&1; then
    python -m pytest -x -q -n auto $cov_args || failures=$((failures + 1))
else
    python -m pytest -x -q $cov_args || failures=$((failures + 1))
fi

step "repro lint (workload verifier)"
python -m repro lint || failures=$((failures + 1))

step "repro diffcheck (differential equivalence: vpr, parser)"
python -m repro diffcheck vpr parser || failures=$((failures + 1))

step "repro audit --smoke (static cycle-bound oracle)"
python -m repro audit --smoke --strict || failures=$((failures + 1))

step "repro sweep --smoke (parallel engine + result cache end-to-end)"
smoke_cache="$(mktemp -d)"
# Cold pass simulates and populates the cache; warm pass must serve
# every cell from disk.
python -m repro sweep --smoke --results-cache "$smoke_cache" \
    || failures=$((failures + 1))
python -m repro sweep --smoke --results-cache "$smoke_cache" \
    || failures=$((failures + 1))
rm -rf "$smoke_cache"

step "repro serve / submit (sweep service end-to-end)"
serve_dir="$(mktemp -d)"
# Loopback server on an ephemeral port; the port file is the rendezvous.
python -m repro serve --port 0 --port-file "$serve_dir/port" \
    --parallel 2 --results-cache "$serve_dir/cache" \
    >"$serve_dir/serve.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do
    [ -s "$serve_dir/port" ] && break
    sleep 0.1
done
if [ ! -s "$serve_dir/port" ]; then
    echo "sweep service never published its port:"
    cat "$serve_dir/serve.log"
    kill "$serve_pid" 2>/dev/null
    failures=$((failures + 1))
else
    serve_port="$(cat "$serve_dir/port")"
    # Cold submit simulates every cell; warm resubmit must serve the
    # whole grid from the shared cache without a single simulation.
    python -m repro submit --smoke --port "$serve_port" --json \
        >"$serve_dir/cold.json" || failures=$((failures + 1))
    python -m repro submit --smoke --port "$serve_port" --json \
        >"$serve_dir/warm.json" || failures=$((failures + 1))
    python - "$serve_dir/cold.json" "$serve_dir/warm.json" \
        <<'EOF' || failures=$((failures + 1))
import json, sys
from repro.harness import run_matrix
cold = json.load(open(sys.argv[1]))
warm = json.load(open(sys.argv[2]))
serial = run_matrix(("inorder", "multipass"), ("vpr", "parser"),
                    scale=0.05)
cells = {(e["workload"], e["model"]): e["stats"]
         for e in cold["events"] if e["kind"] == "cell"}
assert len(cells) == 4, sorted(cells)
for (w, m), stats in cells.items():
    assert stats == serial.get(w, m).to_dict(), \
        f"{w}/{m}: service result differs from a direct sweep"
assert cold["report"]["failures"] == 0, cold["report"]
assert warm["report"]["simulated"] == 0, warm["report"]
assert warm["report"]["cache_hits"] > 0, warm["report"]
print("service smoke ok: 4 cells bit-identical to a direct sweep, "
      f"warm resubmit {warm['report']['cache_hits']} cache hit(s), "
      "0 simulations")
EOF
    # Clean shutdown: SIGTERM must reap the fleet and exit 0.
    kill -TERM "$serve_pid"
    if wait "$serve_pid"; then
        echo "service shut down cleanly"
    else
        echo "service exited non-zero on SIGTERM"
        failures=$((failures + 1))
    fi
fi
rm -rf "$serve_dir"

step "repro bench --smoke (perf gate: <=25% wall-clock regression)"
# The baseline was re-recorded on the gen-2 OOO kernel (PR 10, the
# consumer-driven spend-accumulator wakeup; PR 9 before it put the
# multipass family on columnar kernels): gating against a slower
# era's cells would let a large regression in the current fast paths
# pass unnoticed.  --against gates the matrix total; --compare
# additionally gates each model's cycles/second, so a model-specific
# slowdown fails the gate even when the other cells absorb it in the
# total.  The host's frequency scaling swings ~40% between sittings
# (see the calibration keys in BENCH_PR9/PR10.json); a gate failure
# with every model uniformly slow is the machine, not the change —
# re-run before believing it.
python -m repro bench --smoke \
    --against benchmarks/bench_smoke_baseline.json --max-regression 0.25 \
    --compare benchmarks/bench_smoke_baseline.json \
    || failures=$((failures + 1))

step "repro trace / profile (telemetry round-trip)"
trace_dir="$(mktemp -d)"
# The Chrome export must be loadable trace-event JSON with mode spans
# (what Perfetto renders as the mode track).
python -m repro trace mcf --model multipass --scale 0.05 \
    --format chrome --out "$trace_dir/mcf.json" \
    || failures=$((failures + 1))
python - "$trace_dir/mcf.json" <<'EOF' || failures=$((failures + 1))
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
modes = [e for e in events if e.get("cat") == "mode" and e["ph"] == "X"]
assert modes, "no mode spans in the Chrome trace"
assert any(e["ph"] == "X" and e.get("cat") == "stall" for e in events)
print(f"chrome trace ok: {len(events)} events, {len(modes)} mode spans")
EOF
python -m repro profile mcf --scale 0.05 --top 5 >/dev/null \
    || failures=$((failures + 1))
rm -rf "$trace_dir"

echo
if [ "$failures" -ne 0 ]; then
    echo "check.sh: $failures step(s) FAILED"
    exit 1
fi
echo "check.sh: all steps passed"
