#!/usr/bin/env bash
# Full verification gate: static lint -> type check -> tier-1 tests ->
# differential equivalence over the two fastest workloads.
#
# ruff and mypy are optional (the CI image may not ship them); each is
# skipped with a notice when absent so the gate stays runnable anywhere.
set -u

cd "$(dirname "$0")/.."
export PYTHONPATH=src

failures=0

step() {
    echo
    echo "==> $*"
}

step "ruff (static lint)"
if command -v ruff >/dev/null 2>&1; then
    ruff check src tests || failures=$((failures + 1))
else
    echo "ruff not installed; skipping"
fi

step "mypy (type check)"
if command -v mypy >/dev/null 2>&1; then
    mypy || failures=$((failures + 1))
else
    echo "mypy not installed; skipping"
fi

step "pytest (tier-1 suite)"
python -m pytest -x -q || failures=$((failures + 1))

step "repro lint (workload verifier)"
python -m repro lint || failures=$((failures + 1))

step "repro diffcheck (differential equivalence: vpr, parser)"
python -m repro diffcheck vpr parser || failures=$((failures + 1))

echo
if [ "$failures" -ne 0 ]; then
    echo "check.sh: $failures step(s) FAILED"
    exit 1
fi
echo "check.sh: all steps passed"
