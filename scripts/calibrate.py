#!/usr/bin/env python
"""Calibration helper: per-workload stall shares and model speedups.

Usage: python scripts/calibrate.py [workload ...] [--scale S]
"""

import argparse
import time

from repro.harness.experiment import TraceCache, geomean, run_model
from repro.pipeline.stats import StallCategory
from repro.workloads import ALL_WORKLOADS

MODELS = ("multipass", "runahead", "ooo", "ooo-realistic")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("workloads", nargs="*", default=list(ALL_WORKLOADS))
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--models", nargs="*", default=list(MODELS))
    args = parser.parse_args()
    workloads = args.workloads or list(ALL_WORKLOADS)

    cache = TraceCache(scale=args.scale)
    speedups = {m: [] for m in args.models}
    t0 = time.time()
    print(f"{'workload':>8} {'ipc':>5} {'exec%':>6} {'fe%':>5} {'oth%':>5} "
          f"{'load%':>6} | " + " ".join(f"{m:>13}" for m in args.models))
    for workload in workloads:
        trace = cache.trace(workload)
        base = run_model("inorder", trace)
        shares = {c: base.cycle_breakdown[c] / base.cycles
                  for c in StallCategory}
        cells = []
        for model in args.models:
            stats = run_model(model, trace)
            speedup = base.cycles / stats.cycles
            speedups[model].append(speedup)
            cells.append(f"{speedup:13.2f}")
        print(f"{workload:>8} {base.ipc:5.2f} "
              f"{shares[StallCategory.EXECUTION]:6.1%} "
              f"{shares[StallCategory.FRONT_END]:5.1%} "
              f"{shares[StallCategory.OTHER]:5.1%} "
              f"{shares[StallCategory.LOAD]:6.1%} | " + " ".join(cells))
    if len(workloads) > 1:
        means = " ".join(f"{geomean(speedups[m]):13.3f}"
                         for m in args.models)
        print(f"{'geomean':>8} {'':29} | {means}")
    print(f"[{time.time() - t0:.1f}s]")


if __name__ == "__main__":
    main()
