#!/usr/bin/env python
"""Record the PR's wall-clock benchmark trajectory file.

Runs the full 5-model x 12-workload matrix at scale 0.1 (the Figure 6
grid) through :mod:`repro.harness.bench` and writes ``BENCH_PR<n>.json``
at the repository root.  An existing record — typically the previous
PR's, or a pre-change run of this script — can be embedded as the
``baseline`` key so each trajectory file is self-contained:

    PYTHONPATH=src python scripts/run_bench.py --pr 5 \\
        --baseline /tmp/pre_timing_record.json

Usage:
    python scripts/run_bench.py [--pr N] [--out FILE]
        [--baseline FILE] [--smoke] [--repeats N] [--scale S]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.harness.bench import (BENCH_MODELS, SMOKE_WORKLOADS,  # noqa: E402
                                 load_record, render_bench, run_bench,
                                 write_record)
from repro.workloads import ALL_WORKLOADS  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pr", type=int, default=5,
                        help="PR number for the default output name")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="output path (default: BENCH_PR<n>.json at "
                             "the repo root)")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="embed this record under the 'baseline' key")
    parser.add_argument("--smoke", action="store_true",
                        help="3-workload smoke matrix instead of the "
                             "full 12")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--scale", type=float, default=0.1)
    args = parser.parse_args(argv)

    workloads = (list(SMOKE_WORKLOADS) if args.smoke
                 else list(ALL_WORKLOADS))
    record = run_bench(BENCH_MODELS, workloads, scale=args.scale,
                       repeats=args.repeats)
    baseline = None
    if args.baseline:
        baseline = load_record(args.baseline)
        record["baseline"] = baseline
    print(render_bench(record, baseline))

    out = args.out or str(REPO_ROOT / f"BENCH_PR{args.pr}.json")
    write_record(record, out)
    print(f"\nbenchmark record written to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
