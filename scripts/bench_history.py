#!/usr/bin/env python
"""Render the PR-to-PR simulator throughput trajectory.

Every perf PR commits a full-matrix benchmark record as
``BENCH_PR<n>.json`` at the repository root (written by
``scripts/run_bench.py``).  This script merges them into one per-model
cycles/second trajectory table — one column per recorded PR, one row
per model plus the matrix total — and writes it into ``EXPERIMENTS.md``
between the ``bench-history`` markers so the document always reflects
the committed records.

Each cell shows the recorded throughput and, from the second PR on,
the ratio against the previous *recorded* PR.  Wall-clock numbers are
machine-dependent (see the calibration notes inside the records), so
the table is a trajectory of committed measurements, not a claim that
every ratio was taken on the same machine in the same sitting; records
carrying a ``calibration`` key are footnoted.

Usage:
    python scripts/bench_history.py           # rewrite EXPERIMENTS.md
    python scripts/bench_history.py --check   # exit 1 if out of date
    python scripts/bench_history.py --stdout  # print table only
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
EXPERIMENTS = REPO_ROOT / "EXPERIMENTS.md"

BEGIN_MARK = "<!-- bench-history:begin (scripts/bench_history.py) -->"
END_MARK = "<!-- bench-history:end -->"

#: Row order: the five primary models, then the matrix total.
ROW_ORDER = ("inorder", "multipass", "runahead", "ooo", "ooo-realistic",
             "total")


def load_history(root: Path = REPO_ROOT) -> List[Tuple[int, dict]]:
    """All ``BENCH_PR<n>.json`` records at ``root``, ascending by PR."""
    history = []
    for path in root.glob("BENCH_PR*.json"):
        match = re.fullmatch(r"BENCH_PR(\d+)\.json", path.name)
        if not match:
            continue
        with open(path) as handle:
            history.append((int(match.group(1)), json.load(handle)))
    history.sort(key=lambda pair: pair[0])
    return history


def throughputs(record: dict) -> Dict[str, int]:
    """Per-model (plus ``total``) cycles/second of one record."""
    cps = {model: entry.get("cycles_per_second")
           for model, entry in record.get("per_model", {}).items()}
    cps["total"] = record.get("total", {}).get("cycles_per_second")
    return cps


def _fmt(cps) -> str:
    return f"{cps / 1000:.0f}k" if cps else "—"


def render_table(history: List[Tuple[int, dict]]) -> str:
    """Markdown trajectory table over the given records."""
    if not history:
        return "*(no BENCH_PR<n>.json records found)*"
    columns = [(pr, throughputs(record)) for pr, record in history]
    lines = ["| model (cyc/s) | " +
             " | ".join(f"PR {pr}" for pr, _ in columns) + " |",
             "|---|" + "---|" * len(columns)]
    for model in ROW_ORDER:
        cells = []
        prev = None
        for _, cps in columns:
            cur = cps.get(model)
            cell = _fmt(cur)
            if cur and prev:
                cell += f" ({cur / prev:.2f}x)"
            cells.append(cell)
            if cur:
                prev = cur
        label = "**total**" if model == "total" else model
        lines.append(f"| {label} | " + " | ".join(cells) + " |")
    notes = [f"PR {pr}" for pr, record in history if "calibration" in record]
    if notes:
        lines.append("")
        lines.append(
            f"Ratios compare committed records; {', '.join(notes)} "
            f"carr{'y' if len(notes) > 1 else 'ies'} a ``calibration`` "
            f"key with same-sitting reruns where the committed baseline "
            f"was recorded in a different machine speed window.")
    return "\n".join(lines)


def update_experiments(table: str, check: bool = False) -> int:
    """Splice ``table`` between the markers in EXPERIMENTS.md."""
    text = EXPERIMENTS.read_text()
    if BEGIN_MARK not in text or END_MARK not in text:
        print(f"error: {BEGIN_MARK} / {END_MARK} markers not found in "
              f"{EXPERIMENTS}", file=sys.stderr)
        return 2
    head, rest = text.split(BEGIN_MARK, 1)
    _, tail = rest.split(END_MARK, 1)
    updated = f"{head}{BEGIN_MARK}\n{table}\n{END_MARK}{tail}"
    if updated == text:
        return 0
    if check:
        print("bench history table in EXPERIMENTS.md is out of date; "
              "run: python scripts/bench_history.py", file=sys.stderr)
        return 1
    EXPERIMENTS.write_text(updated)
    print(f"updated {EXPERIMENTS.relative_to(REPO_ROOT)}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if EXPERIMENTS.md is out of date "
                             "instead of rewriting it")
    parser.add_argument("--stdout", action="store_true",
                        help="print the table without touching "
                             "EXPERIMENTS.md")
    args = parser.parse_args(argv)
    table = render_table(load_history())
    if args.stdout:
        print(table)
        return 0
    return update_experiments(table, check=args.check)


if __name__ == "__main__":
    raise SystemExit(main())
