#!/usr/bin/env python
"""Regenerate every table and figure and write a results report.

Usage:
    python scripts/run_experiments.py [--scale S] [--out results.md]
                                      [--parallel N]
                                      [--results-cache DIR]

This is the free-standing equivalent of ``pytest benchmarks/`` for users
who want the regenerated artefacts without the benchmark machinery.
``--parallel`` fans each figure's cell grid over a worker pool and
``--results-cache`` persists per-cell stats so a re-run (same sources,
same scale) regenerates every artefact without a single simulation;
both default to the $REPRO_JOBS / $REPRO_RESULTS_CACHE environment
knobs (off when unset) and are bit-identical to the serial path.
"""

import argparse
import sys
import time

from repro.harness import (TraceCache, figure6, figure7, figure8,
                           realistic_ooo_comparison, runahead_comparison,
                           table1)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale (1.0 = calibrated size)")
    parser.add_argument("--out", default=None,
                        help="also write the report to this file")
    parser.add_argument("--skip-fig7", action="store_true",
                        help="skip the (slow) three-hierarchy sweep")
    parser.add_argument("--parallel", metavar="N", default=None,
                        help="worker processes ('auto' = one per CPU; "
                             "default: $REPRO_JOBS, else serial)")
    parser.add_argument("--results-cache", metavar="DIR", default=None,
                        help="persistent result cache directory "
                             "(default: $REPRO_RESULTS_CACHE, else off)")
    args = parser.parse_args()

    cache = TraceCache(args.scale)
    engine = {"parallel": args.parallel,
              "results_cache": args.results_cache}
    sections = []
    jobs = [
        ("Table 1 — structure power ratios",
         lambda: table1(args.scale, cache=cache, **engine)),
        ("Figure 6 — normalized execution cycles",
         lambda: figure6(args.scale, cache=cache, **engine)),
        ("Figure 8 — regrouping / restart ablations",
         lambda: figure8(args.scale, cache=cache, **engine)),
        ("Section 5.4 — Dundas-Mudge runahead",
         lambda: runahead_comparison(args.scale, cache=cache, **engine)),
        ("Section 5.2 — realistic out-of-order",
         lambda: realistic_ooo_comparison(args.scale, cache=cache,
                                          **engine)),
    ]
    if not args.skip_fig7:
        jobs.append(("Figure 7 — cache hierarchies",
                     lambda: figure7(args.scale, **engine)))

    for title, job in jobs:
        start = time.time()
        result = job()
        banner = f"== {title} " + "=" * max(0, 66 - len(title))
        block = f"{banner}\n{result.text}\n[{time.time() - start:.1f}s]\n"
        print(block)
        sections.append(block)

    if args.out:
        with open(args.out, "w") as handle:
            handle.write("\n".join(sections))
        print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
