"""Dundas–Mudge runahead preexecution (Figure 1(b) of the paper).

Runahead is the purely-prefetching ancestor of multipass pipelining: when
the pipeline stalls on an unready load, it pre-executes subsequent
instructions speculatively — overlapping independent cache misses — but

* results are **not persisted**: when the stall resolves, execution resumes
  at the consumer and everything pre-executed runs again (re-spending both
  time and energy), and
* there is **no advance restart**: an instruction skipped during the single
  runahead pass is not reconsidered, so a short miss returning mid-pass
  cannot enable further useful preexecution (the e' limitation in the
  paper's Figure 1(b)).

Implemented as the multipass core with persistence, restart and regrouping
disabled — the remaining machinery (advance store cache, suppression,
wrong-path kill) is shared by construction, mirroring how the paper frames
multipass as "a set of enhancements to the Dundas-Mudge approach".
"""

from __future__ import annotations

from typing import Optional

from ..isa.trace import Trace
from ..machine import MachineConfig
from ..multipass.core import MultipassCore
from ..pipeline.stats import SimStats


class RunaheadCore(MultipassCore):
    """Single-pass, non-persistent advance execution."""

    model_name = "runahead"

    def __init__(self, trace: Trace,
                 config: Optional[MachineConfig] = None,
                 check: bool = False, tracer=None, slow: bool = False):
        super().__init__(trace, config, enable_regroup=False,
                         enable_restart=False, persist_results=False,
                         check=check, tracer=tracer, slow=slow)
        # Exiting runahead restores the checkpointed state and refetches
        # from the stalled instruction — a pipeline-refill penalty the
        # multipass design avoids by latching the architectural stream
        # in place (paper Section 3.1.3).  A column-level flag, so the
        # columnar kernel inherits it like the other model toggles.
        self.rally_exit_refill = True


def simulate_runahead(trace: Trace,
                      config: Optional[MachineConfig] = None) -> SimStats:
    """Run the Dundas–Mudge runahead model over ``trace``."""
    return RunaheadCore(trace, config).run()
