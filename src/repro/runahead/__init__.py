"""Dundas–Mudge runahead baseline."""

from .core import RunaheadCore, simulate_runahead

__all__ = ["RunaheadCore", "simulate_runahead"]
