"""Reproduction of "Flea-flicker" Multipass Pipelining (MICRO 2005).

Multipass pipelining lets a simple in-order EPIC pipeline tolerate cache
misses nearly as well as an aggressive out-of-order design: when an
instruction stalls on an unready load result, the pipeline makes multiple
carefully-controlled *advance passes* over the following instructions,
preserving every valid result in a low-complexity result store so later
passes — and the final architectural *rally* — get faster and cheaper.

Public API overview
-------------------

* :mod:`repro.isa` — the EPIC target ISA, program builder and golden
  functional simulator.
* :mod:`repro.compiler` — scheduling, issue-group formation and the
  Section 3.3 RESTART-insertion pass.
* :mod:`repro.multipass` — the multipass pipeline core.
* :mod:`repro.pipeline`, :mod:`repro.runahead`, :mod:`repro.ooo` — the
  baseline in-order, Dundas–Mudge runahead and out-of-order models.
* :mod:`repro.memory`, :mod:`repro.branch` — the shared memory hierarchy
  and branch predictor substrates.
* :mod:`repro.power` — Wattch-style structure power models (Table 1).
* :mod:`repro.workloads` — the twelve SPEC CPU2000-like kernels.
* :mod:`repro.harness` — experiment runners and the figure/table drivers.

Quick start::

    from repro import quick_comparison
    print(quick_comparison("mcf"))
"""

from .compiler import CompileOptions, compile_program
from .harness import TraceCache, run_model
from .isa import ProgramBuilder, execute
from .machine import MachineConfig, itanium2_like
from .multipass import MultipassCore, simulate_multipass
from .ooo import simulate_ooo, simulate_realistic_ooo
from .pipeline import InOrderCore, SimStats, StallCategory, simulate_inorder
from .runahead import simulate_runahead
from .workloads import ALL_WORKLOADS, build_workload

__version__ = "1.0.0"

__all__ = [
    "ALL_WORKLOADS", "CompileOptions", "InOrderCore", "MachineConfig",
    "MultipassCore", "ProgramBuilder", "SimStats", "StallCategory",
    "TraceCache", "build_workload", "compile_program", "execute",
    "itanium2_like", "quick_comparison", "run_model", "simulate_inorder",
    "simulate_multipass", "simulate_ooo", "simulate_realistic_ooo",
    "simulate_runahead",
]


def quick_comparison(workload: str = "mcf", scale: float = 0.25) -> str:
    """Run one workload through the four main models; return a summary.

    A convenience entry point for the README quick start.  Uses a reduced
    workload scale so it completes in seconds.
    """
    cache = TraceCache(scale)
    trace = cache.trace(workload)
    lines = [f"{workload} ({len(trace)} dynamic instructions, "
             f"scale {scale}):"]
    base = run_model("inorder", trace)
    for model in ("inorder", "multipass", "runahead", "ooo"):
        stats = run_model(model, trace) if model != "inorder" else base
        lines.append(
            f"  {model:>10}: {stats.cycles:>9} cycles  "
            f"IPC {stats.ipc:4.2f}  speedup "
            f"{base.cycles / stats.cycles:5.2f}x")
    return "\n".join(lines)
