"""Branch prediction."""

from .gshare import GsharePredictor

__all__ = ["GsharePredictor"]
