"""Gshare branch predictor (Table 2: 1024-entry gshare).

Two-bit saturating counters indexed by PC XOR global history.  All timing
models share this implementation; each instantiates its own state so that
(for instance) advance-mode branches in the multipass core can consult the
predictor without perturbing a different model's run.
"""

from __future__ import annotations


class GsharePredictor:
    """1024-entry gshare with a global history register."""

    def __init__(self, entries: int = 1024):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self._mask = entries - 1
        self._history_bits = entries.bit_length() - 1
        self._counters = [2] * entries   # weakly taken
        self._history = 0
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pc: int) -> int:
        return (pc ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at static index ``pc``."""
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> bool:
        """Record the outcome; returns True when the prediction was correct.

        Updates the pattern table and the global history, and maintains
        the prediction/misprediction counters.
        """
        idx = self._index(pc)
        prediction = self._counters[idx] >= 2
        correct = prediction == taken
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        counter = self._counters[idx]
        self._counters[idx] = (min(3, counter + 1) if taken
                               else max(0, counter - 1))
        history_mask = (1 << self._history_bits) - 1
        self._history = ((self._history << 1) | int(taken)) & history_mask
        return correct

    def peek_correct(self, pc: int, taken: bool) -> bool:
        """Would the current prediction be correct?  No state change."""
        return self.predict(pc) == taken

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions
