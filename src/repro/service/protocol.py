"""The service wire protocol: JSONL events over chunked HTTP.

The job-event stream reuses the telemetry JSONL convention
(:class:`~repro.telemetry.sinks.JsonlSink`): one JSON object per line,
sorted keys, a ``kind`` discriminator.  Three kinds flow on a job
stream, always in this shape:

``{"kind": "job", "id", "key", "cells", "workers", "wire_version"}``
    First line of every stream: the accepted job, its canonical
    ``job_key`` and the size of its cell grid.

``{"kind": "cell", "workload", "model", "status", "source", "dedup",
"attempts", "duration", "stats"|"error"}``
    One line per resolved cell, in completion order.  ``status`` is
    ``"ok"`` or ``"failed"``; ``source`` records where the result came
    from (``"simulated"`` or ``"cache"``); ``dedup`` is true when this
    job attached to another job's in-flight cell instead of scheduling
    its own.  Successful cells carry the full
    :meth:`~repro.pipeline.stats.SimStats.to_dict` payload — the
    round-trip through :meth:`~repro.pipeline.stats.SimStats.from_dict`
    is bit-identical, which is what lets service results equal a local
    ``repro sweep``.  Failed cells carry the
    :class:`~repro.harness.parallel.CellResult` failure-row schema
    instead: the stringified exception (class-prefixed) and the
    attempt count.

``{"kind": "done", "id", "cells", "simulated", "cache_hits",
"deduped", "failures", "elapsed"}``
    Last line: per-job accounting.  ``simulated + cache_hits +
    deduped == cells`` always holds.

Streams replay from the start for late subscribers, so attaching to a
finished job yields its full history followed by ``done``.
"""

from __future__ import annotations

import json
from typing import Union

from ..harness.parallel import CellResult
from ..pipeline.stats import SimStats

#: Bump on any incompatible change to the event shapes above.
WIRE_VERSION = 1


def encode_line(record: dict) -> bytes:
    """One wire line: compact JSON + newline (telemetry JSONL style)."""
    return (json.dumps(record, sort_keys=True) + "\n").encode()


def decode_line(line: Union[str, bytes]) -> dict:
    """Parse one wire line; rejects anything that is not a kinded event."""
    if isinstance(line, bytes):
        line = line.decode()
    record = json.loads(line)
    if not isinstance(record, dict) or "kind" not in record:
        raise ValueError(f"malformed wire event: {line!r:.120}")
    return record


def cell_event(result: CellResult, *, source: str,
               dedup: bool) -> dict:
    """Render one resolved cell as its wire event."""
    record = {
        "kind": "cell",
        "workload": result.workload,
        "model": result.model,
        "status": "ok" if result.ok else "failed",
        "source": source,
        "dedup": dedup,
        "attempts": result.attempts,
        "duration": round(result.duration, 6),
    }
    if result.ok:
        record["stats"] = result.stats.to_dict()
    else:
        record["error"] = result.error
    return record


def cell_result_from_event(event: dict) -> CellResult:
    """Rebuild the :class:`CellResult` row a ``cell`` event describes.

    Failure rows come back with the exact schema ``repro sweep``
    reports (exception class in ``error``, retry count in
    ``attempts``), so client-side reports can reuse
    :class:`~repro.harness.parallel.SweepReport` rendering unchanged.
    """
    stats = None
    if event.get("stats") is not None:
        stats = SimStats.from_dict(event["stats"])
    return CellResult(
        workload=event["workload"],
        model=event["model"],
        stats=stats,
        error=event.get("error"),
        attempts=event.get("attempts", 1),
        duration=event.get("duration", 0.0),
        cached=event.get("source") == "cache",
    )


__all__ = ["WIRE_VERSION", "cell_event", "cell_result_from_event",
           "decode_line", "encode_line"]
