"""Thin blocking client for the sweep service (stdlib ``http.client``).

The client turns a job-event stream back into the exact shapes the
batch engine produces: a :class:`~repro.harness.experiment.Matrix` of
real :class:`~repro.pipeline.stats.SimStats` (reconstructed
bit-identically via ``SimStats.from_dict``) plus
:class:`~repro.harness.parallel.CellResult` failure rows — so code
written against ``repro sweep``'s :class:`SweepReport` consumes
service results unchanged.  ``repro submit`` is just this library
plus argument parsing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from http.client import HTTPConnection
from typing import Callable, Iterator, Optional

from ..harness.experiment import Matrix
from ..harness.parallel import SweepReport
from .protocol import cell_result_from_event, decode_line
from .spec import JobSpec

#: Default port for ``repro serve`` / ``repro submit``.
DEFAULT_PORT = 8734


class ServiceError(RuntimeError):
    """The server rejected a request or broke protocol."""


@dataclass
class ServiceSweepReport(SweepReport):
    """A :class:`SweepReport` assembled from service events.

    ``simulated``/``cache_hits`` keep their batch-engine meaning;
    ``deduped`` counts cells this job *attached to* — another client's
    in-flight simulation served this job too — and the three are
    mutually exclusive per cell.
    """

    deduped: int = 0
    job_id: str = ""
    job_key: str = ""

    def summary(self) -> str:
        rate = (f", {self.cells / self.elapsed:.1f} cells/s"
                if self.elapsed > 0 else "")
        lines = [
            f"job {self.job_id}: {self.cells} cell(s) via {self.jobs} "
            f"server worker(s) in {self.elapsed:.1f}s{rate} — "
            f"{self.simulated} simulated, {self.cache_hits} from "
            f"cache, {self.deduped} deduped, "
            f"{len(self.failures)} failed"
        ]
        lines.extend(self.failure_lines())
        return "\n".join(lines)


class ServiceClient:
    """Blocking HTTP client; one connection per request/stream.

    ``timeout`` applies to connect and to individual reads.  Event
    streams emit a line per resolved cell, so any healthy job keeps the
    stream moving; the default (no timeout) never gives up on a slow
    cell.
    """

    def __init__(self, host: str = "127.0.0.1",
                 port: int = DEFAULT_PORT,
                 timeout: Optional[float] = None):
        self.host = host
        self.port = port
        self.timeout = timeout

    def _connect(self) -> HTTPConnection:
        if self.timeout is None:
            return HTTPConnection(self.host, self.port)
        return HTTPConnection(self.host, self.port,
                              timeout=self.timeout)

    def _request(self, method: str, path: str,
                 doc: Optional[dict] = None) -> dict:
        conn = self._connect()
        try:
            body = (json.dumps(doc).encode()
                    if doc is not None else None)
            headers = ({"Content-Type": "application/json"}
                       if body is not None else {})
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                payload = response.read()
            except OSError as exc:
                raise ServiceError(
                    f"cannot reach sweep service at "
                    f"{self.host}:{self.port}: {exc}") from exc
            try:
                parsed = json.loads(payload) if payload else {}
            except ValueError:
                parsed = {"error": payload[:200].decode("latin-1")}
            if response.status >= 400:
                raise ServiceError(
                    f"{method} {path} -> {response.status}: "
                    f"{parsed.get('error', 'unknown error')}")
            return parsed
        finally:
            conn.close()

    # -- endpoints ------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/health")

    def submit(self, spec: JobSpec) -> dict:
        """Post a job; returns ``{"id", "key", "cells", "workers"}``."""
        return self._request("POST", "/jobs", spec.to_dict())

    def job_status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def shutdown(self) -> dict:
        """Ask the server to stop cleanly (reaps its worker fleet)."""
        return self._request("POST", "/shutdown")

    def events(self, job_id: str) -> Iterator[dict]:
        """Follow a job's JSONL event stream (history + live)."""
        conn = self._connect()
        try:
            try:
                conn.request("GET", f"/jobs/{job_id}/events")
                response = conn.getresponse()
            except OSError as exc:
                raise ServiceError(
                    f"cannot reach sweep service at "
                    f"{self.host}:{self.port}: {exc}") from exc
            if response.status != 200:
                payload = response.read()[:200].decode("latin-1")
                raise ServiceError(
                    f"GET /jobs/{job_id}/events -> "
                    f"{response.status}: {payload}")
            # HTTPResponse undoes the chunked framing; what is left is
            # exactly the telemetry-style JSONL stream.
            for line in response:
                line = line.strip()
                if line:
                    yield decode_line(line)
        finally:
            conn.close()

    def run(self, spec: JobSpec,
            on_event: Optional[Callable[[dict], None]] = None
            ) -> ServiceSweepReport:
        """Submit a spec and follow it to completion.

        The returned report's matrix holds stats bit-identical to a
        local ``repro sweep`` of the same spec; failure rows reuse the
        batch engine's schema.
        """
        accepted = self.submit(spec)
        report = ServiceSweepReport(
            matrix=Matrix(scale=spec.scale),
            cells=accepted.get("cells", 0),
            jobs=accepted.get("workers", 0),
            job_id=accepted.get("id", ""),
            job_key=accepted.get("key", ""))
        done = False
        for event in self.events(report.job_id):
            if on_event is not None:
                on_event(event)
            kind = event.get("kind")
            if kind == "cell":
                row = cell_result_from_event(event)
                if event.get("dedup"):
                    report.deduped += 1
                elif event.get("source") == "cache":
                    report.cache_hits += 1
                else:
                    report.simulated += 1
                if row.ok:
                    cell = (row.workload, row.model)
                    report.matrix.results[cell] = row.stats
                else:
                    report.failures.append(row)
            elif kind == "done":
                report.elapsed = event.get("elapsed", 0.0)
                done = True
        if not done:
            raise ServiceError(
                f"event stream for {report.job_id} ended before the "
                f"job completed")
        return report


__all__ = ["DEFAULT_PORT", "ServiceClient", "ServiceError",
           "ServiceSweepReport"]
