"""The sweep backend: persistent fleet, shared cache, in-flight dedup.

:class:`SweepService` is the HTTP-free heart of the service (the
asyncio HTTP framing in :mod:`repro.service.server` is a thin shell
around it, and the tests drive it directly).  It owns three layers of
work avoidance, checked in order for every requested cell:

1. **In-flight dedup** — one future per live cell key; any number of
   concurrent jobs needing the same cell await the same future, so an
   identical sweep submitted by N clients simulates each cell exactly
   once and fans the result out to all N subscribers.
2. **The shared results cache** — the same content-addressed
   :class:`~repro.harness.results_cache.ResultsCache` the CLI uses
   (optionally size-bounded with LRU eviction), so a warm resubmission
   performs zero simulations and ad-hoc ``repro sweep`` runs interop
   with the service's store.
3. **The worker fleet** — one process pool built on the sharded
   engine's :func:`~repro.harness.parallel._execute_cell` runner
   (same SIGALRM per-cell timeout, same retry-once-then-record fault
   discipline), *persistent across jobs* so workers keep their
   process-global trace caches warm between submissions.

Every job keeps an append-only event history; subscribers replay it
from the start and then follow live, so attaching late (or re-reading
a finished job) always yields the complete stream.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import shutil
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, process
from typing import AsyncIterator, Callable, Dict, List, Optional, Union

from ..harness.parallel import (CellResult, CellSpec, _execute_cell,
                                _execute_group, _pool_context,
                                resolve_jobs, simulate_cell)
from ..harness.results_cache import (CACHE_ENV_VAR, ResultsCache,
                                     parse_size)
from .protocol import WIRE_VERSION, cell_event
from .spec import JobSpec


class Job:
    """One submitted sweep: spec, event history, completion state."""

    def __init__(self, job_id: str, spec: JobSpec):
        self.id = job_id
        self.spec = spec
        self.created = time.time()
        self.events: List[dict] = []
        self.done = False
        # Per-job accounting (mutually exclusive per cell).
        self.simulated = 0
        self.cache_hits = 0
        self.deduped = 0
        self.failures = 0
        self._new_event = asyncio.Condition()
        self.task: Optional[asyncio.Task] = None

    async def append(self, event: dict, *, final: bool = False) -> None:
        async with self._new_event:
            self.events.append(event)
            if final:
                self.done = True
            self._new_event.notify_all()

    async def stream(self) -> AsyncIterator[dict]:
        """Replay history, then follow live events until ``done``."""
        cursor = 0
        while True:
            async with self._new_event:
                await self._new_event.wait_for(
                    lambda: len(self.events) > cursor or self.done)
                chunk = self.events[cursor:]
                cursor = len(self.events)
                finished = self.done
            for event in chunk:
                yield event
            if finished:
                return

    def status(self) -> dict:
        return {
            "id": self.id,
            "done": self.done,
            "cells": (len(self.spec.workloads)
                      * len(self.spec.models)),
            "resolved": (self.simulated + self.cache_hits
                         + self.deduped),
            "simulated": self.simulated,
            "cache_hits": self.cache_hits,
            "deduped": self.deduped,
            "failures": self.failures,
            "events": len(self.events),
        }


class SweepService:
    """A long-running sweep backend shared by many clients.

    All public methods must run on the service's event loop (the HTTP
    layer guarantees that); only the simulations themselves leave the
    loop, onto the process fleet.
    """

    def __init__(self, *,
                 jobs: Union[None, int, str] = None,
                 results_cache: Union[None, str, ResultsCache] = None,
                 cache_max_bytes: Union[None, int, str] = None,
                 timeout: Optional[float] = None,
                 retries: int = 1,
                 runner: Optional[Callable[[CellSpec], object]] = None):
        self.workers = resolve_jobs(jobs)
        self.timeout = timeout
        self.retries = retries
        self.runner = runner or simulate_cell
        self._ephemeral_root: Optional[str] = None
        if isinstance(results_cache, ResultsCache):
            self.store = results_cache
        else:
            root = results_cache or os.environ.get(CACHE_ENV_VAR)
            if root is None:
                # The service always has a shared store: without a
                # configured directory it lives (and dies) with the
                # server process.
                root = tempfile.mkdtemp(prefix="repro-serve-cache-")
                self._ephemeral_root = root
            self.store = ResultsCache(
                root, max_bytes=parse_size(cache_max_bytes))
        self._pool: Optional[ProcessPoolExecutor] = None
        self._inflight: Dict[str, asyncio.Future] = {}
        self._jobs: Dict[str, Job] = {}
        self._ids = itertools.count(1)
        self._stop = asyncio.Event()
        self.started = time.time()
        self.counters = {
            "jobs": 0,
            "cells_requested": 0,
            "cells_simulated": 0,
            "cells_cached": 0,
            "cells_deduped": 0,
            "cells_failed": 0,
        }

    # -- job lifecycle --------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Register a job and start resolving its cells."""
        job = Job(f"job-{next(self._ids)}", spec)
        self._jobs[job.id] = job
        self.counters["jobs"] += 1
        job.task = asyncio.ensure_future(self._run_job(job))
        return job

    def job(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    async def _run_job(self, job: Job) -> None:
        start = time.perf_counter()
        spec = job.spec
        cells = spec.cells()
        keys = spec.cell_keys(self.store.tree_digest)
        await job.append({
            "kind": "job",
            "id": job.id,
            "key": spec.job_key(self.store.tree_digest),
            "cells": len(cells),
            "workers": self.workers,
            "wire_version": WIRE_VERSION,
        })
        # Group the job's cells by workload: one fleet task per group,
        # so every model of a workload runs on the same worker and
        # shares one trace build + decode (mirroring the batch engine's
        # grouped dispatch).
        groups: Dict[str, List[CellSpec]] = {}
        for cell in cells:
            groups.setdefault(cell.workload, []).append(cell)
        tasks = [
            asyncio.ensure_future(self._resolve_group(
                group, keys, spec.timeout))
            for group in groups.values()
        ]
        for future in asyncio.as_completed(tasks):
            for result, source, dedup in await future:
                if dedup:
                    job.deduped += 1
                elif source == "cache":
                    job.cache_hits += 1
                else:
                    job.simulated += 1
                if not result.ok:
                    job.failures += 1
                await job.append(cell_event(result, source=source,
                                            dedup=dedup))
        await job.append({
            "kind": "done",
            "id": job.id,
            "cells": len(cells),
            "simulated": job.simulated,
            "cache_hits": job.cache_hits,
            "deduped": job.deduped,
            "failures": job.failures,
            "elapsed": round(time.perf_counter() - start, 6),
        }, final=True)

    # -- cell resolution ------------------------------------------------

    def _settle(self, key: str, result: CellResult, source: str) -> None:
        """Account for a resolved cell and fan it out to subscribers."""
        future = self._inflight.pop(key, None)
        if result.ok:
            if source == "cache":
                self.counters["cells_cached"] += 1
            else:
                self.counters["cells_simulated"] += 1
        else:
            self.counters["cells_failed"] += 1
        if future is not None and not future.done():
            future.set_result((result, source))

    async def _resolve_group(self, cells: List[CellSpec], keys: Dict,
                             timeout: Optional[float]):
        """One workload group through the dedup -> cache -> fleet layers.

        Returns one ``(CellResult, source, dedup)`` per cell, in cell
        order.  The cells that actually need simulation are dispatched
        to the fleet as a single batch, so one worker resolves the whole
        group over a shared trace build + decode.  Never raises: faults
        become failure rows, exactly like the batch engine.
        """
        loop = asyncio.get_running_loop()
        outcomes: Dict[int, tuple] = {}
        attached: Dict[int, asyncio.Future] = {}
        fresh: List[tuple] = []
        for index, cell in enumerate(cells):
            key = keys[(cell.workload, cell.model)]
            self.counters["cells_requested"] += 1
            pending = self._inflight.get(key)
            if pending is not None:
                # Another job is already resolving this cell: attach.
                self.counters["cells_deduped"] += 1
                attached[index] = pending
                continue
            self._inflight[key] = loop.create_future()
            fresh.append((index, key, cell))
        try:
            to_run: List[tuple] = []
            for index, key, cell in fresh:
                # Cache probes are tiny pickle reads, but they still
                # leave the loop so a slow/networked filesystem cannot
                # stall the server.
                stats = await loop.run_in_executor(None, self.store.get,
                                                   key)
                if stats is not None:
                    result = CellResult(cell.workload, cell.model,
                                        stats=stats, cached=True)
                    self._settle(key, result, "cache")
                    outcomes[index] = (result, "cache", False)
                else:
                    to_run.append((index, key, cell))
            if to_run:
                cell_timeout = (timeout if timeout is not None
                                else self.timeout)
                batch = await self._run_group_on_fleet(
                    [cell for _, _, cell in to_run], cell_timeout)
                for (index, key, cell), result in zip(to_run, batch):
                    for attempt in range(2, self.retries + 2):
                        if result.ok:
                            break
                        result = await self._run_on_fleet(cell,
                                                          cell_timeout)
                        result.attempts = attempt
                    if result.ok:
                        await loop.run_in_executor(None, self.store.put,
                                                   key, result.stats)
                    self._settle(key, result, "simulated")
                    outcomes[index] = (result, "simulated", False)
        except Exception as exc:  # pragma: no cover - defensive
            for index, key, cell in fresh:
                if index not in outcomes:
                    result = CellResult(
                        cell.workload, cell.model,
                        error=f"{type(exc).__name__}: {exc}")
                    self._settle(key, result, "simulated")
                    outcomes[index] = (result, "simulated", False)
        for index, pending in attached.items():
            result, source = await asyncio.shield(pending)
            outcomes[index] = (result, source, True)
        return [outcomes[index] for index in range(len(cells))]

    async def _run_group_on_fleet(self, specs: List[CellSpec],
                                  timeout: Optional[float]
                                  ) -> List[CellResult]:
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(
                self._ensure_pool(), _execute_group, specs, self.runner,
                timeout)
        except process.BrokenProcessPool:
            self._shutdown_pool(wait=False)
            return [CellResult(spec.workload, spec.model,
                               error="worker process died (broken pool)")
                    for spec in specs]
        except Exception as exc:  # pragma: no cover - defensive
            return [CellResult(spec.workload, spec.model,
                               error=f"{type(exc).__name__}: {exc}")
                    for spec in specs]

    async def _run_on_fleet(self, spec: CellSpec,
                            timeout: Optional[float]) -> CellResult:
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(
                self._ensure_pool(), _execute_cell, spec, self.runner,
                timeout)
        except process.BrokenProcessPool:
            # A worker died hard (OOM kill, segfault).  Drop the pool
            # so the next attempt rebuilds a fresh fleet.
            self._shutdown_pool(wait=False)
            return CellResult(spec.workload, spec.model,
                              error="worker process died (broken pool)")
        except Exception as exc:  # pragma: no cover - defensive
            return CellResult(spec.workload, spec.model,
                              error=f"{type(exc).__name__}: {exc}")

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=_pool_context())
        return self._pool

    # -- operability ----------------------------------------------------

    def health(self) -> dict:
        return {
            "status": "stopping" if self._stop.is_set() else "ok",
            "wire_version": WIRE_VERSION,
            "workers": self.workers,
            "uptime": round(time.time() - self.started, 3),
            "counters": dict(self.counters),
            "inflight_cells": len(self._inflight),
            "active_jobs": sum(1 for job in self._jobs.values()
                               if not job.done),
            "jobs": len(self._jobs),
            "cache": self.store.describe_dict(),
        }

    def request_stop(self) -> None:
        self._stop.set()

    async def wait_stopped(self) -> None:
        await self._stop.wait()

    def _shutdown_pool(self, wait: bool) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=True)
            self._pool = None

    def shutdown(self) -> None:
        """Reap the fleet (no orphan workers) and drop ephemeral state."""
        for job in self._jobs.values():
            if job.task is not None and not job.task.done():
                job.task.cancel()
        self._shutdown_pool(wait=True)
        if self._ephemeral_root is not None:
            shutil.rmtree(self._ephemeral_root, ignore_errors=True)
            self._ephemeral_root = None


__all__ = ["Job", "SweepService"]
