"""Sweep-as-a-service: the simulator as a shared backend.

A long-running asyncio HTTP/JSON job server (stdlib only) that accepts
declarative sweep specs, shards their cells over a persistent worker
fleet, dedupes identical in-flight cells across concurrent clients,
serves repeats from the shared content-addressed results cache, and
streams per-cell progress as telemetry-style JSONL over chunked
responses.  ``repro serve`` runs it; ``repro submit`` (built on
:class:`ServiceClient`) is one client of many — results are
bit-identical to a local ``repro sweep``.

Layering: :mod:`spec` (the job language and its canonicalization),
:mod:`protocol` (wire events), :mod:`jobs` (the HTTP-free engine:
dedup + fleet + cache), :mod:`server` (asyncio HTTP framing),
:mod:`client` (blocking client library).
"""

from .client import (DEFAULT_PORT, ServiceClient, ServiceError,
                     ServiceSweepReport)
from .jobs import Job, SweepService
from .protocol import (WIRE_VERSION, cell_event, cell_result_from_event,
                       decode_line, encode_line)
from .server import ServiceServer, serve_async
from .spec import JobSpec, SpecError

__all__ = [
    "DEFAULT_PORT", "Job", "JobSpec", "ServiceClient", "ServiceError",
    "ServiceServer", "ServiceSweepReport", "SpecError", "SweepService",
    "WIRE_VERSION", "cell_event", "cell_result_from_event",
    "decode_line", "encode_line", "serve_async",
]
