"""Declarative sweep specs: the job language of the sweep service.

A :class:`JobSpec` names *what* to simulate — workloads x models at a
scale, plus flat machine/compile overrides — and nothing about *how*
(worker count, cache location and streaming are service concerns).
Clients post specs as JSON; the server expands them into the same
:class:`~repro.harness.parallel.CellSpec` grid the CLI sweep engine
uses, so a cell requested through the service is *the same cell* —
same :func:`~repro.harness.results_cache.cell_key`, same cached entry,
bit-identical stats — as one run by ``repro sweep``.

Canonicalization: a job **is** its set of cells.  ``job_key`` hashes
the sorted, de-duplicated cell keys, so two specs collide exactly when
they expand to the same cell set — list order and repeated names never
matter, and anything that perturbs a ``cell_key`` (scale, overrides,
budget, source tree) perturbs the job key.  Execution details that
cannot change results (``timeout``) are deliberately excluded.  The
in-flight dedup layer keys on the individual cell keys, so two
*overlapping* (not identical) jobs still share their common cells.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..compiler import CompileOptions
from ..harness.experiment import ABLATION_FACTORIES, MODEL_FACTORIES
from ..harness.parallel import DEFAULT_MAX_INSTRUCTIONS, CellSpec
from ..harness.results_cache import cell_key
from ..machine import MachineConfig
from ..workloads import ALL_WORKLOADS


class SpecError(ValueError):
    """A job spec that cannot be turned into sweep cells."""


#: The only value types accepted for wire overrides: flat scalars.
#: Structured fields (port model, cache hierarchy) are not expressible
#: in a JSON job spec; rejecting them loudly beats a silently wrong
#: fingerprint.
_SCALAR_TYPES = (bool, int, float, str)


def _apply_overrides(base, overrides: Dict[str, object], what: str):
    """``dataclasses.replace`` with field/type validation."""
    if not overrides:
        return base
    valid = {f.name for f in dataclasses.fields(base)}
    for name, value in overrides.items():
        if name not in valid:
            raise SpecError(
                f"unknown {what} field {name!r}; valid: {sorted(valid)}")
        current = getattr(base, name)
        if not isinstance(current, _SCALAR_TYPES):
            raise SpecError(
                f"{what} field {name!r} is not overridable over the "
                f"wire (it takes a {type(current).__name__})")
        if not isinstance(value, _SCALAR_TYPES):
            raise SpecError(
                f"{what} override {name!r} must be a scalar, "
                f"got {type(value).__name__}")
    return dataclasses.replace(base, **overrides)


@dataclass
class JobSpec:
    """One declarative sweep: workloads x models at a scale.

    ``machine`` and ``compile`` are flat ``{field: scalar}`` overrides
    applied on top of the default :class:`MachineConfig` /
    :class:`CompileOptions`; ``timeout`` is a per-cell wall-clock
    budget in seconds (an execution knob — never part of the job key).
    """

    workloads: Tuple[str, ...]
    models: Tuple[str, ...]
    scale: float = 1.0
    machine: Dict[str, object] = field(default_factory=dict)
    compile: Dict[str, object] = field(default_factory=dict)
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        # Canonicalize structurally: the spec is a *set* of cells, so
        # list order and duplicates are normalized away up front.
        self.workloads = tuple(sorted(set(self.workloads)))
        self.models = tuple(sorted(set(self.models)))
        if not self.workloads:
            raise SpecError("a job needs at least one workload")
        if not self.models:
            raise SpecError("a job needs at least one model")
        unknown = [w for w in self.workloads if w not in ALL_WORKLOADS]
        if unknown:
            raise SpecError(f"unknown workload(s) {unknown}; "
                            f"available: {sorted(ALL_WORKLOADS)}")
        known_models = {**MODEL_FACTORIES, **ABLATION_FACTORIES}
        unknown = [m for m in self.models if m not in known_models]
        if unknown:
            raise SpecError(f"unknown model(s) {unknown}; "
                            f"available: {sorted(known_models)}")
        if not (isinstance(self.scale, (int, float)) and self.scale > 0):
            raise SpecError(f"scale must be positive, got {self.scale!r}")
        if self.max_instructions <= 0:
            raise SpecError("max_instructions must be positive")
        if self.timeout is not None and self.timeout <= 0:
            raise SpecError("timeout must be positive when given")
        # Validate the overrides eagerly so a bad spec is rejected at
        # submission time, not when its first cell is scheduled.
        self.machine_config()
        self.compile_options()

    # -- expansion ------------------------------------------------------

    def machine_config(self) -> MachineConfig:
        return _apply_overrides(MachineConfig(), self.machine, "machine")

    def compile_options(self) -> CompileOptions:
        return _apply_overrides(CompileOptions(), self.compile, "compile")

    def cells(self) -> List[CellSpec]:
        """The cell grid, in deterministic (workload, model) order."""
        config = self.machine_config()
        options = self.compile_options()
        return [CellSpec(workload, model, self.scale, options, config,
                         self.max_instructions)
                for workload in self.workloads for model in self.models]

    # -- canonicalization -----------------------------------------------

    def cell_keys(self, tree_digest: Optional[str] = None
                  ) -> Dict[Tuple[str, str], str]:
        """Content-addressed key per cell — the service dedup unit."""
        config = self.machine_config()
        options = self.compile_options()
        return {
            (workload, model): cell_key(
                workload, model, self.scale, options, config,
                self.max_instructions, tree_digest=tree_digest)
            for workload in self.workloads for model in self.models
        }

    def job_key(self, tree_digest: Optional[str] = None) -> str:
        """SHA-256 over the sorted cell-key set.

        Collides exactly when :meth:`cell_keys` produces the same set —
        the property suite in ``tests/service/test_spec_property.py``
        pins this.
        """
        keys = sorted(set(self.cell_keys(tree_digest).values()))
        return hashlib.sha256("|".join(keys).encode()).hexdigest()

    # -- wire form ------------------------------------------------------

    _FIELDS = ("workloads", "models", "scale", "machine", "compile",
               "max_instructions", "timeout")

    def to_dict(self) -> dict:
        return {
            "workloads": list(self.workloads),
            "models": list(self.models),
            "scale": self.scale,
            "machine": dict(self.machine),
            "compile": dict(self.compile),
            "max_instructions": self.max_instructions,
            "timeout": self.timeout,
        }

    @classmethod
    def from_dict(cls, doc: object) -> "JobSpec":
        if not isinstance(doc, dict):
            raise SpecError(f"job spec must be a JSON object, "
                            f"got {type(doc).__name__}")
        unknown = sorted(set(doc) - set(cls._FIELDS))
        if unknown:
            raise SpecError(f"unknown job spec field(s) {unknown}; "
                            f"valid: {sorted(cls._FIELDS)}")
        for required in ("workloads", "models"):
            if not isinstance(doc.get(required), (list, tuple)):
                raise SpecError(f"job spec field {required!r} must be "
                                f"a list of names")
        machine = doc.get("machine") or {}
        compile_overrides = doc.get("compile") or {}
        for name, overrides in (("machine", machine),
                                ("compile", compile_overrides)):
            if not isinstance(overrides, dict):
                raise SpecError(f"job spec field {name!r} must be an "
                                f"object of field overrides")
        timeout = doc.get("timeout")
        try:
            return cls(
                workloads=tuple(str(w) for w in doc["workloads"]),
                models=tuple(str(m) for m in doc["models"]),
                scale=float(doc.get("scale", 1.0)),
                machine=dict(machine),
                compile=dict(compile_overrides),
                max_instructions=int(doc.get("max_instructions",
                                             DEFAULT_MAX_INSTRUCTIONS)),
                timeout=(float(timeout) if timeout is not None
                         else None))
        except (TypeError, ValueError) as exc:
            if isinstance(exc, SpecError):
                raise
            raise SpecError(f"malformed job spec: {exc}") from exc

    @classmethod
    def smoke(cls) -> "JobSpec":
        """The check.sh smoke grid — identical cells to
        ``repro sweep --smoke``, so their caches interoperate."""
        return cls(workloads=("vpr", "parser"),
                   models=("inorder", "multipass"), scale=0.05)


__all__ = ["JobSpec", "SpecError"]
