"""Minimal asyncio HTTP/1.1 framing for the sweep service.

Stdlib only, by design: ``asyncio.start_server`` plus hand-rolled
request parsing and response framing — the service's wire format is
JSON documents and JSONL event streams, so a general web framework
would add dependencies without adding capability.  One request per
connection (``Connection: close``), which keeps the framing trivial
and matches the client library's usage.

Routes:

* ``GET  /health``            — service + cache status JSON.
* ``POST /jobs``              — submit a :class:`JobSpec`; ``202``
  with ``{"id", "key", "cells", "workers"}``.
* ``GET  /jobs/<id>``         — job status JSON (``404`` unknown).
* ``GET  /jobs/<id>/events``  — chunked JSONL event stream: full
  history replay, then live events, ending with the ``done`` event.
* ``POST /shutdown``          — request a clean server stop.
"""

from __future__ import annotations

import asyncio
import json
import signal
from pathlib import Path
from typing import Callable, Optional

from .jobs import SweepService
from .protocol import encode_line
from .spec import JobSpec, SpecError

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            500: "Internal Server Error"}

#: Upper bound on request bodies; job specs are tiny.
_MAX_BODY = 1 << 20


class HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


async def _read_request(reader: asyncio.StreamReader):
    """Parse one request: ``(method, path, headers, body)`` or None."""
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        raise HttpError(400, "request line too long") from None
    if not line:
        return None
    try:
        method, target, _version = line.decode("latin-1").split(None, 2)
    except ValueError:
        raise HttpError(400, "malformed request line") from None
    headers = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
        if len(headers) > 100:
            raise HttpError(400, "too many headers")
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise HttpError(400, "bad Content-Length") from None
    if length < 0 or length > _MAX_BODY:
        raise HttpError(400, "request body too large")
    body = await reader.readexactly(length) if length else b""
    path = target.split("?", 1)[0]
    return method.upper(), path, headers, body


def _write_head(writer: asyncio.StreamWriter, status: int,
                headers: str) -> None:
    reason = _REASONS.get(status, "Unknown")
    writer.write(f"HTTP/1.1 {status} {reason}\r\n{headers}"
                 f"Connection: close\r\n\r\n".encode("latin-1"))


async def _send_json(writer: asyncio.StreamWriter, status: int,
                     doc: dict) -> None:
    body = (json.dumps(doc, sort_keys=True) + "\n").encode()
    _write_head(writer, status,
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n")
    writer.write(body)
    await writer.drain()


class ServiceServer:
    """Bind a :class:`SweepService` to a listening socket."""

    def __init__(self, service: SweepService, host: str = "127.0.0.1",
                 port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling --------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await _read_request(reader)
            if request is not None:
                await self._dispatch(*request, writer)
        except HttpError as err:
            try:
                await _send_json(writer, err.status,
                                 {"error": err.message})
            except (ConnectionError, OSError):
                pass
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass  # client went away mid-request/stream
        except Exception as exc:  # pragma: no cover - defensive
            try:
                await _send_json(writer, 500,
                                 {"error": f"{type(exc).__name__}: "
                                           f"{exc}"})
            except (ConnectionError, OSError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, method: str, path: str, headers: dict,
                        body: bytes,
                        writer: asyncio.StreamWriter) -> None:
        if path == "/health":
            if method != "GET":
                raise HttpError(405, "use GET")
            await _send_json(writer, 200, self.service.health())
            return
        if path == "/shutdown":
            if method != "POST":
                raise HttpError(405, "use POST")
            await _send_json(writer, 200, {"status": "stopping"})
            self.service.request_stop()
            return
        if path == "/jobs":
            if method != "POST":
                raise HttpError(405, "use POST")
            await self._submit(body, writer)
            return
        if path.startswith("/jobs/"):
            parts = path[len("/jobs/"):].split("/")
            job = self.service.job(parts[0])
            if job is None:
                raise HttpError(404, f"unknown job {parts[0]!r}")
            if len(parts) == 1:
                if method != "GET":
                    raise HttpError(405, "use GET")
                await _send_json(writer, 200, job.status())
                return
            if len(parts) == 2 and parts[1] == "events":
                if method != "GET":
                    raise HttpError(405, "use GET")
                await self._stream_events(job, writer)
                return
        raise HttpError(404, f"no route for {method} {path}")

    async def _submit(self, body: bytes,
                      writer: asyncio.StreamWriter) -> None:
        try:
            doc = json.loads(body.decode() or "null")
        except (ValueError, UnicodeDecodeError):
            raise HttpError(400, "request body is not JSON") from None
        try:
            spec = JobSpec.from_dict(doc)
        except SpecError as err:
            raise HttpError(400, str(err)) from None
        job = self.service.submit(spec)
        await _send_json(writer, 202, {
            "id": job.id,
            "key": spec.job_key(self.service.store.tree_digest),
            "cells": len(spec.workloads) * len(spec.models),
            "workers": self.service.workers,
        })

    async def _stream_events(self, job,
                             writer: asyncio.StreamWriter) -> None:
        _write_head(writer, 200,
                    "Content-Type: application/x-ndjson\r\n"
                    "Transfer-Encoding: chunked\r\n"
                    "Cache-Control: no-store\r\n")
        async for event in job.stream():
            data = encode_line(event)
            writer.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()


async def serve_async(service: SweepService, host: str = "127.0.0.1",
                      port: int = 0, *,
                      port_file: Optional[str] = None,
                      ready: Optional[Callable[[int], None]] = None,
                      banner: bool = True) -> None:
    """Run the service until a stop is requested, then shut down clean.

    ``port_file``/``ready`` publish the bound port (``--port 0`` picks
    a free one), which is how check.sh and the tests rendezvous with a
    freshly spawned server.  SIGINT/SIGTERM request the same graceful
    stop as ``POST /shutdown``: stop accepting, reap the worker fleet
    (``shutdown(wait=True)`` — no orphans), then return.
    """
    server = ServiceServer(service, host, port)
    await server.start()
    loop = asyncio.get_running_loop()
    installed = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, service.request_stop)
            installed.append(signum)
        except (NotImplementedError, ValueError, RuntimeError):
            pass  # non-main thread or platform without loop signals
    if banner:
        print(f"repro serve: listening on http://{host}:{server.port} "
              f"with {service.workers} worker(s); cache at "
              f"{service.store.root}", flush=True)
    if port_file:
        Path(port_file).write_text(f"{server.port}\n")
    if ready is not None:
        ready(server.port)
    try:
        await service.wait_stopped()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        await server.stop()
        service.shutdown()


__all__ = ["HttpError", "ServiceServer", "serve_async"]
