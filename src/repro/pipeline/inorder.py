"""Baseline in-order EPIC core (the paper's ``inorder``/``base`` machine).

Strict in-order issue of compiler-formed issue groups: up to one group per
cycle, stall-on-use when an operand is not ready, scoreboarded WAW stalls
for variable-latency writers (Section 3.5), non-blocking stores, and a
gshare-driven front end.  Long stalls are fast-forwarded when neither the
front end nor the memory system has intervening work, which does not change
cycle counts — only wall-clock simulation time.
"""

from __future__ import annotations

from typing import Optional

from ..isa.trace import Trace
from ..machine import MachineConfig
from .base import BaseCore, SimulationDiverged
from .stats import SimStats, StallCategory


class InOrderCore(BaseCore):
    """Stall-on-use in-order pipeline."""

    model_name = "inorder"

    def __init__(self, trace: Trace, config: Optional[MachineConfig] = None,
                 check: bool = False, tracer=None):
        config = config or MachineConfig()
        super().__init__(trace, config, config.inorder_buffer_size,
                         check=check, tracer=tracer)

    def run(self, max_cycles: int = 500_000_000) -> SimStats:
        trace = self.trace
        entries = trace.entries
        n = len(entries)
        frontend = self.frontend
        tracker = self.config.ports.new_tracker()
        reg_ready = self.reg_ready
        tel = self.tracer if self.tracer.enabled else None
        now = 0
        ptr = 0

        while ptr < n:
            if now > max_cycles:
                raise SimulationDiverged(
                    f"inorder exceeded {max_cycles} cycles on "
                    f"{trace.program.name}"
                )
            frontend.tick(now, ptr)
            tracker.reset()
            issued = 0
            reason = None
            wait_until = now + 1

            while ptr < frontend.fetched_until:
                entry = entries[ptr]
                inst = entry.inst
                fu = self.issue_fu(entry)
                if not tracker.can_issue(fu):
                    reason = StallCategory.OTHER
                    break

                unready = self.unready_sources(entry, now)
                if unready:
                    reason, wait_until = self.classify_wait(unready, now)
                    break

                latency = inst.spec.latency
                l1_miss = False
                if entry.executed and entry.inst.is_mem:
                    if entry.is_load:
                        result = self.hierarchy.access(entry.addr, now)
                        latency = result.latency
                        l1_miss = result.l1_miss
                        self.stats.counters["loads_issued"] += 1
                        if l1_miss:
                            self.stats.counters["l1d_load_misses"] += 1
                            if tel is not None:
                                tel.cache_miss(now, entry.seq, inst.index,
                                               result.level)
                    else:
                        self.hierarchy.access(entry.addr, now, kind="store")

                # Scoreboarded WAW: a shorter-latency writer may not
                # complete before an in-flight longer-latency one.
                waw_conflict = [
                    d for d in entry.dests
                    if reg_ready.get(d, 0) > now + latency
                ]
                if waw_conflict:
                    reason, wait_until = self.classify_wait(waw_conflict,
                                                            now)
                    self.stats.counters["waw_stalls"] += 1
                    break

                tracker.issue(fu)
                self.writeback(entry, now, latency, l1_miss)
                self.stats.instructions += 1
                if tel is not None:
                    tel.issue(now, entry.seq, inst.index)
                self.commit_entry(entry, now)
                issued += 1
                ptr += 1
                if entry.is_branch:
                    if frontend.resolve_branch(entry, now):
                        self.stats.counters["mispredicts"] += 1
                        break
                if inst.stop:
                    break  # issue-group boundary ends the cycle

            if issued:
                self.stats.charge(StallCategory.EXECUTION)
                if tel is not None:
                    tel.charge(now, StallCategory.EXECUTION)
            elif ptr >= frontend.fetched_until:
                self.stats.charge(StallCategory.FRONT_END)
                if tel is not None:
                    blocked = entries[ptr] if ptr < n else None
                    tel.charge(now, StallCategory.FRONT_END,
                               seq=blocked.seq if blocked else -1,
                               pc=blocked.inst.index if blocked else -1)
            else:
                self.stats.charge(reason or StallCategory.OTHER)
                if tel is not None:
                    blocked = entries[ptr]
                    tel.charge(now, reason or StallCategory.OTHER,
                               seq=blocked.seq, pc=blocked.inst.index)
            now += 1

            # Fast-forward a long operand stall when nothing else can
            # happen: the attribution for the skipped cycles is identical.
            if not issued and reason in (StallCategory.LOAD,
                                         StallCategory.OTHER) \
                    and wait_until > now:
                skip_to = wait_until
                limit = min(n, ptr + self.buffer_size)
                if frontend.fetched_until < limit:
                    if frontend.stall_until > now:
                        skip_to = min(wait_until, frontend.stall_until)
                    else:
                        skip_to = now  # front end still fetching
                if skip_to > now:
                    self.stats.charge(reason, skip_to - now)
                    if tel is not None:
                        blocked = entries[ptr]
                        tel.charge(now, reason, seq=blocked.seq,
                                   pc=blocked.inst.index,
                                   cycles=skip_to - now)
                    now = skip_to

        return self.finalize()


def simulate_inorder(trace: Trace, config: Optional[MachineConfig] = None
                     ) -> SimStats:
    """Run the baseline in-order model over ``trace``."""
    return InOrderCore(trace, config).run()
