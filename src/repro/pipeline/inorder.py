"""Baseline in-order EPIC core (the paper's ``inorder``/``base`` machine).

Strict in-order issue of compiler-formed issue groups: up to one group per
cycle, stall-on-use when an operand is not ready, scoreboarded WAW stalls
for variable-latency writers (Section 3.5), non-blocking stores, and a
gshare-driven front end.  Long stalls are fast-forwarded when neither the
front end nor the memory system has intervening work, which does not change
cycle counts — only wall-clock simulation time.  The inner loop reads the
decoded-trace cache (:mod:`repro.isa.decoded`) instead of per-entry
properties.
"""

from __future__ import annotations

from typing import Optional

from ..isa.columns import columns_of
from ..isa.trace import Trace
from ..machine import MachineConfig
from .base import BaseCore
from .stats import SimStats, StallCategory


class InOrderCore(BaseCore):
    """Stall-on-use in-order pipeline."""

    model_name = "inorder"

    def __init__(self, trace: Trace, config: Optional[MachineConfig] = None,
                 check: bool = False, tracer=None, slow: bool = False):
        config = config or MachineConfig()
        super().__init__(trace, config, config.inorder_buffer_size,
                         check=check, tracer=tracer, slow=slow)

    def run(self, max_cycles: int = 500_000_000) -> SimStats:
        trace = self.trace
        entries = trace.entries
        dec = trace.decoded
        n = dec.n
        frontend = self.frontend
        ports = self.config.ports
        width = ports.width
        m_ports = ports.m_ports
        i_ports = ports.i_ports
        f_ports = ports.f_ports
        b_ports = ports.b_ports
        port_code = columns_of(dec).port_code  # shared per-trace column
        reg_ready = self.reg_ready
        pending = self.load_miss_pending
        stats = self.stats
        counters = stats.counters
        access = self.hierarchy.access
        d_srcs = dec.srcs
        d_dests = dec.dests
        d_lat = dec.latency
        d_mem = dec.mem_exec
        d_load = dec.is_load
        d_addr = dec.addr
        d_branch = dec.is_branch
        d_stop = dec.stop
        d_pc = dec.pc
        tel = self.tracer if self.tracer.enabled else None
        replay = self.replay
        EXECUTION = StallCategory.EXECUTION
        FRONT_END = StallCategory.FRONT_END
        LOAD = StallCategory.LOAD
        OTHER = StallCategory.OTHER
        # Per-category cycle tallies kept in locals, flushed into the
        # stats once after the loop — identical totals to per-cycle
        # charge() without a method call + enum-dict update per cycle.
        c_exec = c_fe = c_load = c_other = 0
        now = 0
        ptr = 0

        while ptr < n:
            if now > max_cycles:
                self.check_cycle_budget(now, max_cycles)
            # tick() is a no-op once the whole trace is fetched (its
            # limit clamps to n); a redirect rolls fetched_until back,
            # so the guard re-arms itself.
            if frontend.fetched_until < n:
                frontend.tick(now, ptr)
            m_used = i_used = f_used = b_used = 0
            issued = 0
            reason = None
            wait_until = now + 1
            waw_break = False

            while ptr < frontend.fetched_until:
                i = ptr
                code = port_code[i]
                if issued >= width:
                    reason = OTHER
                    break
                if code == 0:          # MEM
                    if m_used >= m_ports:
                        reason = OTHER
                        break
                elif code == 1:        # ALU: I port with M fallback
                    if i_used >= i_ports and m_used >= m_ports:
                        reason = OTHER
                        break
                elif code == 2:        # FP / MULDIV
                    if f_used >= f_ports:
                        reason = OTHER
                        break
                elif code == 3:        # BR
                    if b_used >= b_ports:
                        reason = OTHER
                        break

                stall = 0
                load_wait = False
                for s in d_srcs[i]:
                    r = reg_ready[s]
                    if r > now:
                        if r > stall:
                            stall = r
                        if pending[s] > now:
                            load_wait = True
                if stall:
                    wait_until = stall
                    reason = LOAD if load_wait else OTHER
                    break

                latency = d_lat[i]
                l1_miss = False
                if d_mem[i]:
                    if d_load[i]:
                        result = access(d_addr[i], now)
                        latency = result.latency
                        l1_miss = result.l1_miss
                        counters["loads_issued"] += 1
                        if l1_miss:
                            counters["l1d_load_misses"] += 1
                            if tel is not None:
                                tel.cache_miss(now, i, d_pc[i],
                                               result.level)
                    else:
                        access(d_addr[i], now, kind="store")

                # Scoreboarded WAW: a shorter-latency writer may not
                # complete before an in-flight longer-latency one.
                done = now + latency
                stall = 0
                load_wait = False
                for d in d_dests[i]:
                    r = reg_ready[d]
                    if r > done:
                        if r > stall:
                            stall = r
                        if pending[d] > now:
                            load_wait = True
                if stall:
                    wait_until = stall
                    reason = LOAD if load_wait else OTHER
                    counters["waw_stalls"] += 1
                    waw_break = True
                    break

                if code == 0:
                    m_used += 1
                elif code == 1:
                    if i_used < i_ports:
                        i_used += 1
                    else:
                        m_used += 1
                elif code == 2:
                    f_used += 1
                elif code == 3:
                    b_used += 1
                for d in d_dests[i]:
                    reg_ready[d] = done
                    pending[d] = done if l1_miss else 0
                stats.instructions += 1
                if tel is not None:
                    tel.issue(now, i, d_pc[i])
                    self.commit_entry(entries[i], now)
                elif replay is not None:
                    replay.commit(entries[i])
                issued += 1
                ptr = i + 1
                if d_branch[i]:
                    if frontend.resolve_branch(entries[i], now):
                        counters["mispredicts"] += 1
                        break
                if d_stop[i]:
                    break  # issue-group boundary ends the cycle

            if issued:
                c_exec += 1
                if tel is not None:
                    tel.charge(now, EXECUTION)
            elif ptr >= frontend.fetched_until:
                c_fe += 1
                if tel is not None:
                    has_blocked = ptr < n
                    tel.charge(now, FRONT_END,
                               seq=ptr if has_blocked else -1,
                               pc=d_pc[ptr] if has_blocked else -1)
            elif reason is LOAD:
                c_load += 1
                if tel is not None:
                    tel.charge(now, LOAD, seq=ptr, pc=d_pc[ptr])
            else:
                c_other += 1
                if tel is not None:
                    tel.charge(now, reason or OTHER, seq=ptr, pc=d_pc[ptr])
            now += 1

            # Fast-forward a long operand stall when nothing else can
            # happen: the attribution for the skipped cycles is identical.
            # The WAW skip predates the --slow mode and is golden-pinned
            # as a span (a per-cycle retry would repeat the cache access),
            # so it stays on even in --slow.
            if not issued and wait_until > now \
                    and (reason is LOAD or reason is OTHER):
                if waw_break:
                    skip_to = self._frontend_clamp(now, wait_until, ptr)
                else:
                    skip_to = self.next_event_cycle(now, wait_until, ptr)
                if skip_to > now:
                    if reason is LOAD:
                        c_load += skip_to - now
                    else:
                        c_other += skip_to - now
                    if tel is not None:
                        tel.charge(now, reason, seq=ptr, pc=d_pc[ptr],
                                   cycles=skip_to - now)
                    now = skip_to

        breakdown = stats.cycle_breakdown
        breakdown[EXECUTION] += c_exec
        breakdown[FRONT_END] += c_fe
        breakdown[LOAD] += c_load
        breakdown[OTHER] += c_other
        stats.cycles += c_exec + c_fe + c_load + c_other
        return self.finalize()


def simulate_inorder(trace: Trace, config: Optional[MachineConfig] = None
                     ) -> SimStats:
    """Run the baseline in-order model over ``trace``."""
    return InOrderCore(trace, config).run()
