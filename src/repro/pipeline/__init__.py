"""Pipeline infrastructure and the baseline in-order core."""

from .base import BaseCore, SimulationDiverged
from .frontend import FrontEnd
from .inorder import InOrderCore, simulate_inorder
from .stats import SimStats, StallCategory

__all__ = [
    "BaseCore", "FrontEnd", "InOrderCore", "SimStats", "SimulationDiverged",
    "StallCategory", "simulate_inorder",
]
