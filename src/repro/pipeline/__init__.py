"""Pipeline infrastructure and the baseline in-order core."""

from .base import BaseCore, SimulationDiverged
from .eventq import WHEEL, EventCalendar
from .frontend import FrontEnd
from .inorder import InOrderCore, simulate_inorder
from .stats import SimStats, StallCategory

__all__ = [
    "BaseCore", "EventCalendar", "FrontEnd", "InOrderCore", "SimStats",
    "SimulationDiverged", "StallCategory", "WHEEL", "simulate_inorder",
]
