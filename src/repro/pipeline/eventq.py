"""Shared event calendar: 64-slot timing wheel + far-event heap.

Both columnar timing kernels (:mod:`repro.ooo.columnar` and
:mod:`repro.multipass.columnar`) schedule future wake-ups on the same
two-tier calendar:

* events due within :data:`WHEEL` cycles go to a slot of a 64-entry
  timing wheel — appended in O(1), drained exactly at their cycle by
  the ``now & WHEEL_MASK`` slot visit;
* farther events (memory-latency fills) go to a binary heap ordered by
  due cycle, popped as they come due.

The calendar stores caller-shaped tuples and never inspects them beyond
the heap ordering, so one contract serves both kernels:

* **Far entries are due-cycle-first.**  A heap entry must compare by
  its due cycle, i.e. ``entry[0] == time``.  Wheel entries need no time
  field when the caller drains slots cycle-by-cycle (the slot index IS
  the time): the OOO kernel stores ``(seq, gen)`` pairs.  A caller that
  min-scans slots out of drain order (the multipass hardware-restart
  rendezvous) stores the time explicitly.
* **Staleness is the caller's stamp, checked at drain.**  Nothing is
  ever removed from the calendar eagerly.  Callers stamp entries with a
  generation/epoch at insertion (the OOO kernel's per-seq ``gen``,
  bumped at squash; the multipass kernel's pass epoch) and discard
  mismatches when the entry surfaces.  This is what makes wheel slots
  safe across 64-cycle wraps and idle fast-forward spans: a *live*
  entry is always drained exactly at its due cycle (every entry is
  inserted less than :data:`WHEEL` cycles before it fires, so the first
  visit of its slot after insertion is its own cycle, and the kernels'
  quiescence skips never jump a live event — the wake horizon that caps
  a skip is itself derived from the in-flight completions that feed the
  calendar); only *stale* entries can be jumped, and their stamp
  discards them whenever the slot next comes around.
* **Hot loops inline.**  The kernels localize :attr:`wheel` and
  :attr:`heap` and open-code :meth:`schedule` / the drain loop — at a
  few million events per second a method call per event is measurable.
  The methods here are the readable specification of those idioms (and
  the surface the unit tests pin); the localized loops must stay
  observationally identical to them.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import List, Optional, Tuple

#: Calendar horizon: events strictly less than ``WHEEL`` cycles out sit
#: in a wheel slot, farther ones in the heap.  Power of two — the slot
#: index is ``cycle & WHEEL_MASK``.
WHEEL = 64

#: Slot-index mask (``cycle & WHEEL_MASK == cycle % WHEEL``).
WHEEL_MASK = WHEEL - 1


class EventCalendar:
    """One timing wheel + far heap, as used by both columnar kernels."""

    __slots__ = ("wheel", "heap")

    def __init__(self) -> None:
        self.wheel: List[list] = [[] for _ in range(WHEEL)]
        self.heap: List[Tuple] = []

    def schedule(self, time: int, now: int, entry: tuple) -> None:
        """File ``entry`` to fire at cycle ``time`` (``time > now``).

        Near events (``time - now < WHEEL``) go to their wheel slot;
        far events are heap-pushed and must be due-cycle-first tuples
        (``entry[0] == time``).
        """
        if time - now < WHEEL:
            self.wheel[time & WHEEL_MASK].append(entry)
        else:
            heappush(self.heap, entry)

    def slot(self, now: int) -> list:
        """The wheel slot due at cycle ``now`` (drain with ``del s[:]``)."""
        return self.wheel[now & WHEEL_MASK]

    def pop_due(self, now: int) -> list:
        """Drain and return every entry due at or before ``now``.

        Returns this cycle's wheel slot entries followed by all far
        entries whose due cycle has arrived (heap order) — far events
        are *promoted* out of the heap the moment their cycle comes due,
        which for a cycle-by-cycle caller is exactly their own cycle.
        Staleness stamps are NOT checked here; the caller filters.
        """
        due: list = []
        slot = self.wheel[now & WHEEL_MASK]
        if slot:
            due.extend(slot)
            del slot[:]
        heap = self.heap
        while heap and heap[0][0] <= now:
            due.append(heappop(heap))
        return due

    def earliest_far(self) -> Optional[int]:
        """Due cycle of the earliest far event, or None (heap empty)."""
        heap = self.heap
        return heap[0][0] if heap else None

    def clear(self) -> None:
        """Drop every scheduled event (fresh calendar, same lists)."""
        for slot in self.wheel:
            del slot[:]
        del self.heap[:]

    def __len__(self) -> int:
        """Total entries filed (including stale ones awaiting discard)."""
        return sum(len(slot) for slot in self.wheel) + len(self.heap)


__all__ = ("WHEEL", "WHEEL_MASK", "EventCalendar")
