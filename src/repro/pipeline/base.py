"""Shared machinery for all timing cores.

Every core replays a golden :class:`~repro.isa.trace.Trace` against its own
memory hierarchy, branch predictor and front end, and produces a
:class:`~repro.pipeline.stats.SimStats` with the Figure 6 cycle taxonomy.
"""

from __future__ import annotations

from typing import Tuple

from ..branch.gshare import GsharePredictor
from ..isa.opcodes import FUClass
from ..isa.registers import NUM_REGS
from ..isa.trace import Trace, TraceEntry
from ..machine import MachineConfig
from ..telemetry.events import NULL_TRACER
from .frontend import FrontEnd
from .stats import SimStats, StallCategory


class SimulationDiverged(Exception):
    """A core exceeded its cycle budget — indicates a modelling bug."""


class BaseCore:
    """Common state: scoreboard, front end, memory, stall attribution."""

    model_name = "base"

    def __init__(self, trace: Trace, config: MachineConfig,
                 buffer_size: int, check: bool = False, tracer=None,
                 slow: bool = False):
        self.trace = trace
        self.config = config
        self.buffer_size = buffer_size
        self.hierarchy = config.hierarchy.build()
        self.predictor = GsharePredictor(config.branch_predictor_entries)
        # Telemetry: a live Tracer, or the shared do-nothing NULL_TRACER
        # whose ``enabled`` attribute is the only cost when tracing is
        # off (stats are bit-identical either way — golden tests pin it).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.frontend = FrontEnd(trace, self.hierarchy, self.predictor,
                                 config, buffer_size, tracer=self.tracer)
        self.stats = SimStats(model=self.model_name,
                              workload=trace.program.name)
        # Architectural scoreboard: absolute ready cycle per register id.
        # Flat integer-indexed lists (register ids are dense, < NUM_REGS);
        # 0 means "never written" — real ready cycles are always >= 1
        # because a cycle-0 issue with latency >= 1 completes at >= 1.
        self.reg_ready = [0] * NUM_REGS
        # Registers whose in-flight producer is a load that missed the L1
        # (consumers stalled on these are charged to the *load* category,
        # and the multipass core suppresses rather than waits for them).
        # Same encoding: fill cycle, or 0 when no miss is pending.
        self.load_miss_pending = [0] * NUM_REGS
        # Reference mode: disable the stall fast-forward and tick every
        # cycle (``--slow``).  Used by the differential tests that pin
        # fast-forwarded stats against the naive per-cycle loop.
        self.slow = slow
        # Runtime invariant checking (the --check flag): every commit is
        # cross-checked against independent re-execution.
        self.check = check
        self.replay = None
        if check:
            from ..analysis.invariants import ArchReplay
            self.replay = ArchReplay(trace, model=self.model_name)

    # -- operand checking ----------------------------------------------------

    def unready_sources(self, entry: TraceEntry, now: int):
        """Source registers of ``entry`` that are not ready at ``now``."""
        ready = self.reg_ready
        return [s for s in entry.srcs if ready[s] > now]

    def classify_wait(self, unready, now: int
                      ) -> Tuple[StallCategory, int]:
        """Stall category + cycle when all ``unready`` regs become ready."""
        ready = self.reg_ready
        wait_until = max(ready[s] for s in unready)
        pending = self.load_miss_pending
        is_load_wait = any(pending[s] > now for s in unready)
        category = StallCategory.LOAD if is_load_wait else StallCategory.OTHER
        return category, wait_until

    # -- execution helpers -----------------------------------------------------

    def issue_fu(self, entry: TraceEntry) -> FUClass:
        """Functional-unit class the entry occupies (nullified -> none)."""
        return entry.inst.spec.fu if entry.executed else FUClass.NONE

    def execute_memory(self, entry: TraceEntry, now: int) -> int:
        """Perform the cache access of a load/store; returns load latency."""
        kind = "store" if entry.is_store else "load"
        result = self.hierarchy.access(entry.addr, now, kind=kind)
        if entry.is_load:
            self.stats.counters["loads_issued"] += 1
            if result.l1_miss:
                self.stats.counters["l1d_load_misses"] += 1
            return result.latency
        return 0

    def writeback(self, entry: TraceEntry, now: int, latency: int,
                  l1_miss: bool) -> None:
        """Update the scoreboard for the entry's destinations."""
        ready = now + latency
        reg_ready = self.reg_ready
        pending = self.load_miss_pending
        for dest in entry.dests:
            reg_ready[dest] = ready
            pending[dest] = ready if l1_miss else 0

    # -- fast-forward contract -----------------------------------------------

    def next_event_cycle(self, now: int, wait_until: int,
                         consume_ptr: int) -> int:
        """Clamp a stall-skip target to the next cycle with real work.

        The fast-forward contract: a core that has established "nothing
        can issue before ``wait_until``" may jump the clock there — but
        only if the front end has no intervening work, because fetch
        ticks (I-cache probes, buffer fill) happen on the skipped cycles
        and must be replayed faithfully.  ``consume_ptr`` is the oldest
        un-issued trace index bounding the fetch window.

        Returns the cycle to skip to (``now`` means: do not skip).
        Identical attribution is the caller's responsibility — the
        skipped cycles are charged as one span with the same category a
        cycle-by-cycle loop would have charged.  ``--slow`` disables
        skipping entirely.
        """
        if self.slow or wait_until <= now:
            return now
        return self._frontend_clamp(now, wait_until, consume_ptr)

    def _frontend_clamp(self, now: int, wait_until: int,
                        consume_ptr: int) -> int:
        """The frontend-catch-up rule of :meth:`next_event_cycle`, without
        the ``--slow`` gate (for skips that predate the slow mode and are
        golden-pinned as spans, like the in-order WAW skip)."""
        frontend = self.frontend
        limit = min(len(self.trace), consume_ptr + self.buffer_size)
        if frontend.fetched_until < limit:
            # Fetch still has entries to bring in: it either works every
            # cycle (no skip) or is itself stalled on an I-miss until
            # ``stall_until`` (skip at most to that point).
            if frontend.stall_until > now:
                return min(wait_until, frontend.stall_until)
            return now
        return wait_until

    def check_cycle_budget(self, now: int, max_cycles: int) -> None:
        """Uniform divergence check used by every core's run loop."""
        if now > max_cycles:
            raise SimulationDiverged(
                f"{self.model_name} exceeded max_cycles={max_cycles} "
                f"(at cycle {now}) on {self.trace.program.name}"
            )

    # -- retirement ----------------------------------------------------------

    def commit_entry(self, entry: TraceEntry, now: int = -1) -> None:
        """Hook called by every core at the moment an entry retires.

        Under ``check=True`` the entry is validated against independent
        functional re-execution (exactly-once, in-order, on the
        architectural path); under tracing a ``COMMIT`` event is
        emitted; otherwise this is a no-op.
        """
        if self.tracer.enabled:
            self.tracer.commit(now, entry.seq, entry.inst.index)
        if self.replay is not None:
            self.replay.commit(entry)

    # -- wrap-up -------------------------------------------------------------

    def finalize(self) -> SimStats:
        self.stats.memory = self.hierarchy.stats()
        self.stats.branch_accuracy = self.predictor.accuracy
        self.stats.counters["front_end_redirects"] = self.frontend.redirects
        if self.replay is not None:
            self.replay.finish()
        if self.tracer.enabled:
            self.tracer.finish(self.stats.cycles)
        return self.stats
