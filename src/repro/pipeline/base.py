"""Shared machinery for all timing cores.

Every core replays a golden :class:`~repro.isa.trace.Trace` against its own
memory hierarchy, branch predictor and front end, and produces a
:class:`~repro.pipeline.stats.SimStats` with the Figure 6 cycle taxonomy.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..branch.gshare import GsharePredictor
from ..isa.opcodes import FUClass
from ..isa.trace import Trace, TraceEntry
from ..machine import MachineConfig
from ..telemetry.events import NULL_TRACER
from .frontend import FrontEnd
from .stats import SimStats, StallCategory


class SimulationDiverged(Exception):
    """A core exceeded its cycle budget — indicates a modelling bug."""


class BaseCore:
    """Common state: scoreboard, front end, memory, stall attribution."""

    model_name = "base"

    def __init__(self, trace: Trace, config: MachineConfig,
                 buffer_size: int, check: bool = False, tracer=None):
        self.trace = trace
        self.config = config
        self.buffer_size = buffer_size
        self.hierarchy = config.hierarchy.build()
        self.predictor = GsharePredictor(config.branch_predictor_entries)
        # Telemetry: a live Tracer, or the shared do-nothing NULL_TRACER
        # whose ``enabled`` attribute is the only cost when tracing is
        # off (stats are bit-identical either way — golden tests pin it).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.frontend = FrontEnd(trace, self.hierarchy, self.predictor,
                                 config, buffer_size, tracer=self.tracer)
        self.stats = SimStats(model=self.model_name,
                              workload=trace.program.name)
        # Architectural scoreboard: absolute ready cycle per register.
        self.reg_ready: Dict[int, int] = {}
        # Registers whose in-flight producer is a load that missed the L1
        # (consumers stalled on these are charged to the *load* category,
        # and the multipass core suppresses rather than waits for them).
        self.load_miss_pending: Dict[int, int] = {}
        # Runtime invariant checking (the --check flag): every commit is
        # cross-checked against independent re-execution.
        self.check = check
        self.replay = None
        if check:
            from ..analysis.invariants import ArchReplay
            self.replay = ArchReplay(trace, model=self.model_name)

    # -- operand checking ----------------------------------------------------

    def unready_sources(self, entry: TraceEntry, now: int):
        """Source registers of ``entry`` that are not ready at ``now``."""
        ready = self.reg_ready
        return [s for s in entry.srcs if ready.get(s, 0) > now]

    def classify_wait(self, unready, now: int
                      ) -> Tuple[StallCategory, int]:
        """Stall category + cycle when all ``unready`` regs become ready."""
        wait_until = max(self.reg_ready.get(s, 0) for s in unready)
        pending = self.load_miss_pending
        is_load_wait = any(
            s in pending and pending[s] > now for s in unready
        )
        category = StallCategory.LOAD if is_load_wait else StallCategory.OTHER
        return category, wait_until

    # -- execution helpers -----------------------------------------------------

    def issue_fu(self, entry: TraceEntry) -> FUClass:
        """Functional-unit class the entry occupies (nullified -> none)."""
        return entry.inst.spec.fu if entry.executed else FUClass.NONE

    def execute_memory(self, entry: TraceEntry, now: int) -> int:
        """Perform the cache access of a load/store; returns load latency."""
        kind = "store" if entry.is_store else "load"
        result = self.hierarchy.access(entry.addr, now, kind=kind)
        if entry.is_load:
            self.stats.counters["loads_issued"] += 1
            if result.l1_miss:
                self.stats.counters["l1d_load_misses"] += 1
            return result.latency
        return 0

    def writeback(self, entry: TraceEntry, now: int, latency: int,
                  l1_miss: bool) -> None:
        """Update the scoreboard for the entry's destinations."""
        ready = now + latency
        for dest in entry.dests:
            self.reg_ready[dest] = ready
            if l1_miss:
                self.load_miss_pending[dest] = ready
            else:
                self.load_miss_pending.pop(dest, None)

    # -- retirement ----------------------------------------------------------

    def commit_entry(self, entry: TraceEntry, now: int = -1) -> None:
        """Hook called by every core at the moment an entry retires.

        Under ``check=True`` the entry is validated against independent
        functional re-execution (exactly-once, in-order, on the
        architectural path); under tracing a ``COMMIT`` event is
        emitted; otherwise this is a no-op.
        """
        if self.tracer.enabled:
            self.tracer.commit(now, entry.seq, entry.inst.index)
        if self.replay is not None:
            self.replay.commit(entry)

    # -- wrap-up -------------------------------------------------------------

    def finalize(self) -> SimStats:
        self.stats.memory = self.hierarchy.stats()
        self.stats.branch_accuracy = self.predictor.accuracy
        self.stats.counters["front_end_redirects"] = self.frontend.redirects
        if self.replay is not None:
            self.replay.finish()
        if self.tracer.enabled:
            self.tracer.finish(self.stats.cycles)
        return self.stats
