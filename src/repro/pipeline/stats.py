"""Simulation statistics and the paper's stall taxonomy.

Figure 6 attributes every cycle to one of four categories:

* **execution** — at least one instruction issued without delay;
* **front-end** — branch-misprediction flushes and I-cache misses;
* **other** — stalls on multiplies/divides/floating point and other
  non-unit-latency instructions, and resource conflicts;
* **load** — stalls on consumption of unready load results.

Multipass advance-mode cycles in which no *new* execution occurs (only
merges or deferrals) are charged to the latency that initiated advance
mode, i.e. the load category.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..memory.hierarchy import HierarchyStats


class StallCategory(enum.Enum):
    """The four Figure 6 cycle categories."""

    EXECUTION = "execution"
    FRONT_END = "front-end"
    OTHER = "other"
    LOAD = "load"


@dataclass
class SimStats:
    """Results of one timing-model run over one trace."""

    model: str
    workload: str
    cycles: int = 0
    instructions: int = 0
    cycle_breakdown: Dict[StallCategory, int] = field(
        default_factory=lambda: {c: 0 for c in StallCategory}
    )
    counters: Counter = field(default_factory=Counter)
    memory: Optional[HierarchyStats] = None
    branch_accuracy: float = 1.0

    def charge(self, category: StallCategory, cycles: int = 1) -> None:
        self.cycle_breakdown[category] += cycles
        self.cycles += cycles

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def stall_cycles(self) -> int:
        """All non-execution cycles."""
        return self.cycles - self.cycle_breakdown[StallCategory.EXECUTION]

    @property
    def load_stall_cycles(self) -> int:
        return self.cycle_breakdown[StallCategory.LOAD]

    def normalized_breakdown(self, baseline_cycles: int
                             ) -> Dict[StallCategory, float]:
        """Per-category cycles normalized to a baseline machine's total."""
        if baseline_cycles <= 0:
            raise ValueError("baseline cycle count must be positive")
        return {
            category: count / baseline_cycles
            for category, count in self.cycle_breakdown.items()
        }

    def speedup_over(self, baseline: "SimStats") -> float:
        """Cycle-count speedup of this run relative to ``baseline``."""
        if self.cycles == 0:
            raise ValueError("run has zero cycles")
        return baseline.cycles / self.cycles

    def to_dict(self) -> dict:
        """JSON-safe view of the run (``repro simulate --json``)."""
        out = {
            "model": self.model,
            "workload": self.workload,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "ipc": self.ipc,
            "cycle_breakdown": {
                category.value: count
                for category, count in self.cycle_breakdown.items()
            },
            "counters": dict(sorted(self.counters.items())),
            "branch_accuracy": self.branch_accuracy,
        }
        if self.memory is not None:
            out["memory"] = {
                "accesses": dict(sorted(self.memory.accesses.items())),
                "misses": dict(sorted(self.memory.misses.items())),
                "memory_accesses": self.memory.memory_accesses,
                "mshr_merges": self.memory.mshr_merges,
                "mshr_full_stall_cycles":
                    self.memory.mshr_full_stall_cycles,
            }
        return out

    @classmethod
    def from_dict(cls, doc: dict) -> "SimStats":
        """Inverse of :meth:`to_dict`: rebuild a bit-identical run.

        The sweep service ships stats over the wire as ``to_dict``
        JSON; clients reconstruct real :class:`SimStats` so dataclass
        equality against a locally simulated run keeps meaning
        bit-for-bit identity.  Values are taken as-is (JSON round-trips
        ints and floats exactly); the derived ``ipc`` field is ignored.
        """
        breakdown = {category: doc["cycle_breakdown"][category.value]
                     for category in StallCategory}
        memory = None
        raw = doc.get("memory")
        if raw is not None:
            memory = HierarchyStats(
                accesses=dict(raw["accesses"]),
                misses=dict(raw["misses"]),
                memory_accesses=raw["memory_accesses"],
                mshr_merges=raw["mshr_merges"],
                mshr_full_stall_cycles=raw.get(
                    "mshr_full_stall_cycles", 0))
        return cls(model=doc["model"], workload=doc["workload"],
                   cycles=doc["cycles"],
                   instructions=doc["instructions"],
                   cycle_breakdown=breakdown,
                   counters=Counter(doc.get("counters", {})),
                   memory=memory,
                   branch_accuracy=doc["branch_accuracy"])

    def summary(self) -> str:
        parts = [f"{self.model}/{self.workload}: {self.cycles} cycles,"
                 f" IPC {self.ipc:.2f}"]
        for category in StallCategory:
            share = (self.cycle_breakdown[category] / self.cycles
                     if self.cycles else 0.0)
            parts.append(f"  {category.value:>10}: "
                         f"{self.cycle_breakdown[category]:>9} "
                         f"({share:5.1%})")
        return "\n".join(parts)
