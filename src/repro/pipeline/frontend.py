"""Front-end model shared by all cores: fetch, I-cache and redirects.

Trace-driven: fetch walks the (architecturally correct) trace in order,
probing the L1I per instruction-cache line.  A mispredicted branch,
discovered when the consuming core resolves it, rolls fetch back to just
past the branch and stalls it for the pipeline-refill penalty — the
standard trace-driven misprediction model.
"""

from __future__ import annotations

from ..branch.gshare import GsharePredictor
from ..isa.columns import columns_of
from ..isa.trace import Trace, TraceEntry
from ..machine import MachineConfig
from ..memory.hierarchy import MemoryHierarchy
from ..telemetry.events import NULL_TRACER


class FrontEnd:
    """Fetches trace entries into the core's instruction buffer."""

    def __init__(self, trace: Trace, hierarchy: MemoryHierarchy,
                 predictor: GsharePredictor, config: MachineConfig,
                 buffer_size: int, tracer=None):
        self.trace = trace
        self.hierarchy = hierarchy
        self.predictor = predictor
        self.config = config
        self.buffer_size = buffer_size
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.fetched_until = 0        # exclusive trace index available
        self.stall_until = 0          # fetch blocked before this cycle
        self._line_size = hierarchy.config.l1i.line_size
        self._last_line = -1
        self._n = len(trace)
        self._fetch_width = config.fetch_width
        self._inst_bytes = config.instruction_bytes
        self._l1i_latency = hierarchy.config.l1i.latency
        dec = trace.decoded
        self._pcs = dec.pc
        self._lines = columns_of(dec).fetch_lines(
            self._inst_bytes, self._line_size)
        self.icache_stall_cycles = 0
        self.redirects = 0
        if config.prewarm_icache:
            self._prewarm()

    def _prewarm(self) -> None:
        """Install the static code footprint in the instruction caches.

        Kernels stand in for long SPEC runs in which the loop code is
        resident; without pre-warming, compulsory I-misses at main-memory
        latency would dominate the short simulated windows.
        """
        lines = {
            inst.index * self.config.instruction_bytes // self._line_size
            for inst in self.trace.program
        }
        for line in lines:
            addr = line * self._line_size
            self.hierarchy.l1i.fill(addr)
            self.hierarchy.l2.fill(addr)
            if self.hierarchy.l3 is not None:
                self.hierarchy.l3.fill(addr)

    def buffer_occupancy(self, consume_ptr: int) -> int:
        return self.fetched_until - consume_ptr

    def tick(self, now: int, consume_ptr: int) -> None:
        """Fetch up to ``fetch_width`` entries this cycle.

        Args:
            now: current cycle.
            consume_ptr: the oldest un-issued trace index — fetch never
                runs more than ``buffer_size`` entries ahead of it.
        """
        limit = consume_ptr + self.buffer_size
        if limit > self._n:
            limit = self._n
        fu = self.fetched_until
        # Hot early-out: the buffer is full (or the trace exhausted) on
        # the vast majority of ticks once fetch has caught up.
        if fu >= limit or now < self.stall_until:
            return
        stop = fu + self._fetch_width
        if stop > limit:
            stop = limit
        tracer = self.tracer if self.tracer.enabled else None
        pcs = self._pcs
        lines = self._lines
        last = self._last_line
        while fu < stop:
            line = lines[fu]
            if line != last:
                result = self.hierarchy.access(
                    pcs[fu] * self._inst_bytes, now, kind="ifetch")
                last = line
                if result.latency > self._l1i_latency:
                    self._last_line = last
                    self.fetched_until = fu
                    self.stall_until = result.ready
                    self.icache_stall_cycles += result.latency
                    return
            if tracer is not None:
                tracer.fetch(now, fu, pcs[fu])
            fu += 1
        self._last_line = last
        self.fetched_until = fu

    def resolve_branch(self, entry: TraceEntry, now: int,
                       already_resolved: bool = False) -> bool:
        """Resolve a branch at execute; returns True on a mispredict.

        Args:
            entry: the branch trace entry.
            now: current cycle (redirect penalty charged from here).
            already_resolved: the branch was validly pre-executed earlier
                (multipass advance mode) so the front end has already been
                redirected — no flush and no predictor update now.

        A predicate-nullified branch still trains the predictor (fetch
        predicts before the qualifying predicate is known): its outcome is
        not-taken.
        """
        if already_resolved:
            return False
        correct = self.predictor.update(entry.inst.index, entry.taken)
        if not correct:
            self.redirect(entry.seq + 1, now)
        return not correct

    def redirect(self, resume_index: int, now: int) -> None:
        """Squash fetched-but-wrong-path entries and refill the pipe."""
        self.redirects += 1
        self.fetched_until = min(self.fetched_until, resume_index)
        self.stall_until = max(self.stall_until,
                               now + self.config.mispredict_penalty)
        self._last_line = -1
