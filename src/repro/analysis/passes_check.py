"""Checked compilation: verify the pass pipeline stage by stage.

:func:`checked_compile` mirrors :func:`repro.compiler.passes.compile_program`
but runs the program verifier after every stage and diffs the def-use
chains across each semantics-preserving stage, so a scheduler or
RESTART-insertion bug surfaces at the stage that introduced it rather than
as a wrong simulation result three layers later.

Stage contracts:

* ``if_convert`` rewrites control flow into predication, so it may change
  the def-use graph arbitrarily; it is only required to leave a verifiable
  program behind (and, under ``execute_check``, an observationally
  equivalent one).
* ``list_schedule`` reorders instructions within basic blocks; the def-use
  edge *multiset* (keyed by instruction signature) must be preserved
  exactly.
* ``insert_restarts`` may only *add* edges from loads to the RESTART
  directives consuming their destinations; every pre-existing edge must
  survive untouched.
* ``form_issue_groups`` only annotates stop bits and group ordinals; the
  def-use graph must be identical, and the result must additionally pass
  issue-group legality checks (:func:`repro.analysis.verifier
  .verify_compiled`).

Optionally (``execute_check=True``) each stage's output is executed
functionally and its final architectural state compared against the
input program's — the strongest stage-level equivalence oracle we have.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..compiler.dataflow import build_dataflow_graph
from ..compiler.ifconvert import if_convert
from ..compiler.passes import CompileOptions
from ..compiler.restart import insert_restarts
from ..compiler.scheduling import form_issue_groups, list_schedule
from ..isa.opcodes import Opcode
from ..isa.program import Program
from .diagnostics import Diagnostic, VerifierError, errors
from .verifier import VerifyOptions, verify_compiled, verify_program

#: Stable identity for an instruction across reordering passes.  Index and
#: stop/group annotations are excluded on purpose: scheduling moves
#: instructions and grouping annotates them, but neither may change what
#: an instruction *is*.
Signature = Tuple[str, Tuple[int, ...], Tuple[int, ...], Optional[int],
                  int, Optional[str]]


class PassCheckError(VerifierError):
    """A compiler stage broke a verification contract."""

    def __init__(self, stage: str, program_name: str, diagnostics):
        self.stage = stage
        super().__init__(f"{program_name} (after {stage})", diagnostics)


@dataclass
class StageReport:
    """Verification outcome for one pass-pipeline stage."""

    stage: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    new_edges: int = 0

    @property
    def ok(self) -> bool:
        return not errors(self.diagnostics)


def _signature(inst) -> Signature:
    return (inst.opcode.name, inst.dests, inst.srcs, inst.imm, inst.pred,
            inst.target)


def defuse_edges(program: Program) -> Counter:
    """The def-use edge multiset, keyed by (producer, consumer) signature.

    Signatures identify instructions structurally, so two programs with the
    same instructions in a different order (the list-scheduler contract)
    compare equal.
    """
    graph = build_dataflow_graph(program)
    edges: Counter = Counter()
    for producer, consumers in graph.succs.items():
        psig = _signature(program[producer])
        for consumer in consumers:
            edges[(psig, _signature(program[consumer]))] += 1
    return edges


def _diff_edges(before: Counter, after: Counter):
    """(lost, gained) def-use edges between two stages."""
    lost = before - after
    gained = after - before
    return lost, gained


def _render_edge(edge) -> str:
    (p_op, p_dests, _ps, _pi, _pp, _pt), (c_op, _cd, c_srcs, *_rest) = edge
    return f"{p_op}{list(p_dests)} -> {c_op}{list(c_srcs)}"


def _is_restart_edge(edge) -> bool:
    producer, consumer = edge
    return (consumer[0] == Opcode.RESTART.name
            and producer[0] in (Opcode.LD.name, Opcode.FLD.name))


def _final_state(program: Program, max_instructions: int):
    from ..isa.functional import FunctionalSimulator
    sim = FunctionalSimulator(program, max_instructions=max_instructions)
    trace = sim.run(truncate_ok=True)
    return trace.final_registers, trace.final_memory, trace.truncated


def checked_compile(
    program: Program,
    options: CompileOptions = CompileOptions(),
    execute_check: bool = False,
    max_instructions: int = 200_000,
) -> Tuple[Program, List[StageReport]]:
    """Run the pass pipeline with per-stage verification.

    Returns the compiled program and one :class:`StageReport` per stage
    run.  Raises :class:`PassCheckError` as soon as any stage emits an
    ERROR diagnostic or violates its def-use contract.
    """
    verify_opts = VerifyOptions(ports=options.ports,
                                dominance_ratio=options.dominance_ratio)
    reports: List[StageReport] = []

    def check_stage(stage: str, prog: Program, *, compiled: bool,
                    extra: Optional[List[Diagnostic]] = None) -> None:
        verify = verify_compiled if compiled else verify_program
        diags = list(verify(prog, verify_opts))
        if extra:
            diags.extend(extra)
        report = StageReport(stage, diags)
        reports.append(report)
        if not report.ok:
            raise PassCheckError(stage, program.name, errors(diags))

    def contract_violations(stage: str, before: Counter, after: Counter,
                            allow_restart_edges: bool) -> List[Diagnostic]:
        lost, gained = _diff_edges(before, after)
        extra: List[Diagnostic] = []
        for edge, n in lost.items():
            extra.append(Diagnostic(
                "PCH001",
                f"{stage} dropped def-use edge "
                f"{_render_edge(edge)} (x{n})"))
        for edge, n in gained.items():
            if allow_restart_edges and _is_restart_edge(edge):
                continue
            extra.append(Diagnostic(
                "PCH001",
                f"{stage} introduced def-use edge "
                f"{_render_edge(edge)} (x{n})"))
        return extra

    def state_violation(stage: str, prog: Program,
                        allow_new_regs: bool = False) -> List[Diagnostic]:
        if not execute_check:
            return []
        regs, mem, trunc = _final_state(prog, max_instructions)
        if trunc or base_truncated:
            return []  # truncated runs are not comparable
        extra: List[Diagnostic] = []
        if allow_new_regs:
            # if-conversion introduces fresh predicate registers; every
            # register the source program defines must still match.
            regs_ok = all(regs.get(k) == v for k, v in base_regs.items())
        else:
            regs_ok = regs == base_regs
        if not regs_ok:
            extra.append(Diagnostic(
                "PCH002", f"{stage} changed final register state"))
        if mem != base_mem:
            extra.append(Diagnostic(
                "PCH002", f"{stage} changed final memory state"))
        return extra

    base_regs = base_mem = None
    base_truncated = False
    if execute_check:
        base_regs, base_mem, base_truncated = _final_state(
            program, max_instructions)

    check_stage("input", program, compiled=False)
    result = program

    if options.if_conversion:
        result = if_convert(result)
        # if-conversion restructures dataflow: no edge diff, but the
        # result must still verify (and preserve observable state modulo
        # the fresh predicate registers it introduces).
        check_stage("if_convert", result, compiled=False,
                    extra=state_violation("if_convert", result,
                                          allow_new_regs=True))
        if execute_check:
            # Later stages must preserve the if-converted state, which
            # includes the new predicate registers.
            base_regs, base_mem, base_truncated = _final_state(
                result, max_instructions)

    if options.reorder:
        before = defuse_edges(result)
        result = list_schedule(result, options.ports)
        extra = contract_violations(
            "list_schedule", before, defuse_edges(result),
            allow_restart_edges=False)
        extra += state_violation("list_schedule", result)
        check_stage("list_schedule", result, compiled=False, extra=extra)

    if options.restarts:
        before = defuse_edges(result)
        result = insert_restarts(result, options.dominance_ratio)
        after = defuse_edges(result)
        extra = contract_violations(
            "insert_restarts", before, after, allow_restart_edges=True)
        restart_edges = sum(n for e, n in (after - before).items()
                            if _is_restart_edge(e))
        extra += state_violation("insert_restarts", result)
        check_stage("insert_restarts", result, compiled=False, extra=extra)
        reports[-1].new_edges = restart_edges

    before = defuse_edges(result)
    result = form_issue_groups(result, options.ports)
    extra = contract_violations(
        "form_issue_groups", before, defuse_edges(result),
        allow_restart_edges=False)
    extra += state_violation("form_issue_groups", result)
    check_stage("form_issue_groups", result, compiled=True, extra=extra)

    return result, reports
