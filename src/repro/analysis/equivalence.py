"""Differential equivalence checking across simulators.

The correctness contract of the whole reproduction is that every timing
model retires *the same computation*: compilation must preserve the
source program's architectural semantics, and each core — in-order,
multipass, runahead, two-pass, out-of-order — must commit exactly the
golden trace, once, in order.  :func:`check_workload` tests that contract
end to end for one workload:

1. the source program and the compiled program are functionally executed
   and their final architectural states compared (registers, memory, and
   retired-instruction count net of RESTART directives, which are
   architectural no-ops the compiler adds);
2. every requested timing model runs with runtime checking enabled
   (:class:`~repro.analysis.invariants.ArchReplay`), which re-executes its
   commit stream on an independent functional simulator; the replay's
   final state is then compared against the golden trace.

Any divergence is reported minimized: the first few differing registers
or memory words, not a dump of the whole state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Models exercised by default: the paper's main comparison set.
DEFAULT_MODELS: Tuple[str, ...] = ("inorder", "multipass", "runahead",
                                   "ooo", "ooo-realistic")


@dataclass
class StateSnapshot:
    """Final architectural state of one execution."""

    source: str                      # "functional", "compiled", model name
    registers: Dict[int, object]
    memory: Dict[int, object]
    retired: int                     # architectural (non-RESTART) retires


@dataclass
class Divergence:
    """One mismatch between two executions of the same workload."""

    left: str
    right: str
    kind: str                        # "registers" | "memory" | "retired"
    detail: str

    def render(self) -> str:
        return f"{self.left} vs {self.right}: {self.kind} diverge: " \
               f"{self.detail}"


@dataclass
class EquivalenceReport:
    """Outcome of one differential run over a workload."""

    workload: str
    scale: float
    snapshots: List[StateSnapshot] = field(default_factory=list)
    divergences: List[Divergence] = field(default_factory=list)
    invariant_failures: List[str] = field(default_factory=list)
    #: Static cycle lower bound of the compiled trace, and the models
    #: that simulated fewer cycles than it (always a bug when nonempty).
    cycle_bound: int = 0
    bound_violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (not self.divergences and not self.invariant_failures
                and not self.bound_violations)

    def render(self) -> str:
        lines = [f"{self.workload} (scale={self.scale}): "
                 f"{'EQUIVALENT' if self.ok else 'DIVERGED'} across "
                 f"{len(self.snapshots)} executions "
                 f"(cycle bound {self.cycle_bound})"]
        for snap in self.snapshots:
            lines.append(f"  {snap.source}: retired={snap.retired}, "
                         f"{len(snap.registers)} regs, "
                         f"{len(snap.memory)} mem words")
        for div in self.divergences:
            lines.append("  DIVERGENCE " + div.render())
        for failure in self.invariant_failures:
            lines.append("  INVARIANT " + failure)
        for violation in self.bound_violations:
            lines.append("  AUDIT " + violation)
        return "\n".join(lines)


def _arch_retired(entries) -> int:
    """Dynamic instruction count net of RESTART directives."""
    return sum(1 for e in entries if not e.is_restart)


def _minimize(got: Dict, want: Dict, limit: int = 5) -> str:
    from .invariants import _dict_diff
    return _dict_diff(got, want, limit=limit)


def _compare(report: EquivalenceReport, ref: StateSnapshot,
             other: StateSnapshot) -> None:
    if other.registers != ref.registers:
        report.divergences.append(Divergence(
            ref.source, other.source, "registers",
            _minimize(other.registers, ref.registers)))
    if other.memory != ref.memory:
        report.divergences.append(Divergence(
            ref.source, other.source, "memory",
            _minimize(other.memory, ref.memory)))
    if other.retired != ref.retired:
        report.divergences.append(Divergence(
            ref.source, other.source, "retired",
            f"got {other.retired}, want {ref.retired}"))


def check_workload(workload: str,
                   models: Sequence[str] = DEFAULT_MODELS,
                   scale: float = 0.05,
                   config=None,
                   max_instructions: int = 5_000_000) -> EquivalenceReport:
    """Differentially execute one workload across all simulators."""
    # Imported lazily: the analysis package must stay importable without
    # dragging in the whole harness/pipeline stack.
    from ..compiler.passes import CompileOptions, compile_program
    from ..harness.experiment import make_model
    from ..isa.functional import FunctionalSimulator
    from ..machine import MachineConfig
    from ..workloads import build_workload
    from .audit import AuditViolation, check_bound
    from .bounds import cycle_lower_bound
    from .diagnostics import InvariantError
    from .verifier import assert_valid

    report = EquivalenceReport(workload=workload, scale=scale)

    source = build_workload(workload, scale)
    assert_valid(source)
    compiled = compile_program(source, CompileOptions())
    assert_valid(compiled, compiled=True)

    src_trace = FunctionalSimulator(
        source, max_instructions=max_instructions).run()
    ref = StateSnapshot("functional", dict(src_trace.final_registers),
                        dict(src_trace.final_memory),
                        _arch_retired(src_trace.entries))
    report.snapshots.append(ref)

    comp_trace = FunctionalSimulator(
        compiled, max_instructions=max_instructions).run()
    comp = StateSnapshot("compiled", dict(comp_trace.final_registers),
                         dict(comp_trace.final_memory),
                         _arch_retired(comp_trace.entries))
    report.snapshots.append(comp)
    _compare(report, ref, comp)

    report.cycle_bound = cycle_lower_bound(comp_trace).bound

    config = config or MachineConfig()
    for model in models:
        core = make_model(model, comp_trace, config, check=True)
        try:
            stats = core.run()
        except InvariantError as exc:
            report.invariant_failures.append(f"{model}: {exc}")
            continue
        try:
            check_bound(stats, comp_trace, model, workload)
        except AuditViolation as exc:
            report.bound_violations.append(str(exc))
        replay = core.replay
        snap = StateSnapshot(model, dict(replay.sim.registers),
                             dict(replay.sim.memory),
                             _arch_retired(comp_trace.entries[:replay.retired]))
        report.snapshots.append(snap)
        _compare(report, ref, snap)
    return report


def check_workloads(workloads: Sequence[str],
                    models: Sequence[str] = DEFAULT_MODELS,
                    scale: float = 0.05,
                    config=None) -> List[EquivalenceReport]:
    """Run :func:`check_workload` over several workloads."""
    return [check_workload(w, models=models, scale=scale, config=config)
            for w in workloads]
