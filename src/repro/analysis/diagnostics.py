"""Diagnostic records emitted by the static-analysis layer.

Every lint rule owns a stable *diagnostic code* (e.g. ``UBD001``) so tests
and tooling can assert on the specific rule that fired rather than on
message text.  The full catalogue is documented in
``docs/architecture.md`` ("Analysis & verification").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..isa.program import ProgramError


class Severity(enum.Enum):
    """How bad a diagnostic is.

    ``ERROR`` diagnostics make :func:`repro.analysis.verifier.assert_valid`
    raise; ``WARNING`` diagnostics are reported but never fatal.
    """

    ERROR = "error"
    WARNING = "warning"


# -- diagnostic codes -------------------------------------------------------
#: Use of a register that no definition reaches on some path.
UBD001 = "UBD001"
#: Register written and then overwritten before any use on every path.
DWR001 = "DWR001"
#: Instruction unreachable from the program entry.
UNR001 = "UNR001"
#: Branch targets a label that is not defined.
LBL001 = "LBL001"
#: Branch targets a label that points past the end of the program.
LBL002 = "LBL002"
#: Label index outside ``[0, len(program)]``.
LBL003 = "LBL003"
#: Memory-image address not word aligned.
MEM001 = "MEM001"
#: Orphan RESTART: a reaching definition of its operand is not a load.
RST001 = "RST001"
#: RESTART with the wrong operand shape (needs 1 source, 0 destinations).
RST002 = "RST002"
#: RESTART whose producing load is not in a critical SCC.
RST003 = "RST003"
#: Issue group exceeds the port model's per-cycle capacity.
GRP001 = "GRP001"
#: Intra-group dependence violation (RAW/WAW or load-after-store).
GRP002 = "GRP002"
#: Stop-bit / group-ordinal / branch-boundary inconsistency.
GRP003 = "GRP003"
#: Compiler stage changed the def-use edge multiset beyond its contract.
PCH001 = "PCH001"
#: Compiler stage changed observable final architectural state.
PCH002 = "PCH002"

#: code -> default severity.
SEVERITY_OF = {
    UBD001: Severity.ERROR,
    DWR001: Severity.WARNING,
    UNR001: Severity.WARNING,
    LBL001: Severity.ERROR,
    LBL002: Severity.ERROR,
    LBL003: Severity.ERROR,
    MEM001: Severity.ERROR,
    RST001: Severity.ERROR,
    RST002: Severity.ERROR,
    RST003: Severity.ERROR,
    GRP001: Severity.ERROR,
    GRP002: Severity.ERROR,
    GRP003: Severity.ERROR,
    PCH001: Severity.ERROR,
    PCH002: Severity.ERROR,
}


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, anchored to an instruction when possible."""

    code: str
    message: str
    index: Optional[int] = None   # instruction index, None = program level
    severity: Optional[Severity] = None

    def __post_init__(self):
        if self.severity is None:
            object.__setattr__(self, "severity",
                               SEVERITY_OF.get(self.code, Severity.ERROR))

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def render(self, program_name: str = "<program>") -> str:
        where = f":{self.index}" if self.index is not None else ""
        return (f"{program_name}{where}: {self.severity.value}"
                f"[{self.code}] {self.message}")


class VerifierError(ProgramError):
    """Raised when a program fails verification with ERROR diagnostics."""

    def __init__(self, program_name: str,
                 diagnostics: Iterable[Diagnostic]):
        self.program_name = program_name
        self.diagnostics: List[Diagnostic] = list(diagnostics)
        lines = [d.render(program_name) for d in self.diagnostics]
        super().__init__(
            f"{program_name}: verification failed with "
            f"{len(self.diagnostics)} diagnostic(s)\n" + "\n".join(lines)
        )


class InvariantError(RuntimeError):
    """A runtime pipeline invariant was violated (modelling bug)."""


def errors(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Only the ERROR-severity diagnostics."""
    return [d for d in diagnostics if d.is_error]


def render_all(diagnostics: Iterable[Diagnostic],
               program_name: str = "<program>") -> str:
    """Render a diagnostic list one finding per line."""
    return "\n".join(d.render(program_name) for d in diagnostics)
