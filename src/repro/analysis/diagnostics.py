"""Diagnostic records emitted by the static-analysis layer.

Every lint/audit rule owns a stable *diagnostic code* (e.g. ``UBD001``)
so tests and tooling can assert on the specific rule that fired rather
than on message text.  Codes live in a registry that pins, per code, the
default severity and a one-line description; once published a code is
never renumbered, and codes for retired rules move to
:data:`RETIRED_CODES` rather than being reused.

The catalogue in ``docs/diagnostics.md`` is generated from the registry
(``python -m repro.analysis.diagnostics``); the registry test suite
(``tests/analysis/test_diagnostics_registry.py``) keeps the two in sync
and enforces the stability rules.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..isa.program import ProgramError


class Severity(enum.Enum):
    """How bad a diagnostic is.

    ``ERROR`` diagnostics make :func:`repro.analysis.verifier.assert_valid`
    raise; ``WARNING`` diagnostics are reported but never fatal.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class DiagnosticSpec:
    """Registry entry for one diagnostic code."""

    code: str
    severity: Severity
    summary: str


#: Shape every code must have: a three-letter rule family + 3 digits.
CODE_PATTERN = re.compile(r"^[A-Z]{3}\d{3}$")

#: Codes of retired rules.  A retired code is never reused for a new
#: rule — tooling that keyed on it must keep getting "retired", not a
#: different finding.  (Empty so far; append, never remove.)
RETIRED_CODES: frozenset = frozenset()

_REGISTRY: Dict[str, DiagnosticSpec] = {}


def _register(code: str, severity: Severity, summary: str) -> str:
    """Add one code to the registry, enforcing the stability rules."""
    if not CODE_PATTERN.match(code):
        raise ValueError(f"malformed diagnostic code {code!r}")
    if code in _REGISTRY:
        raise ValueError(f"duplicate diagnostic code {code!r}")
    if code in RETIRED_CODES:
        raise ValueError(f"diagnostic code {code!r} is retired and must "
                         f"not be reused")
    if not summary or not summary.strip():
        raise ValueError(f"diagnostic code {code!r} needs a description")
    _REGISTRY[code] = DiagnosticSpec(code, severity, summary.strip())
    return code


def registry() -> Dict[str, DiagnosticSpec]:
    """A copy of the full code registry."""
    return dict(_REGISTRY)


def describe(code: str) -> str:
    """The registered one-line description of ``code``."""
    return _REGISTRY[code].summary


# -- diagnostic codes -------------------------------------------------------
# Dataflow lints (verifier).
UBD001 = _register(
    "UBD001", Severity.ERROR,
    "Use of a register that no definition reaches on some path.")
DWR001 = _register(
    "DWR001", Severity.WARNING,
    "Register written and then overwritten before any use on every "
    "path.")
UNR001 = _register(
    "UNR001", Severity.WARNING,
    "Instruction unreachable from the program entry.")
CFG001 = _register(
    "CFG001", Severity.WARNING,
    "Loop with no exit path: once entered, no CFG path reaches HALT or "
    "leaves the cycle.")
# Structural lints.
LBL001 = _register(
    "LBL001", Severity.ERROR,
    "Branch targets a label that is not defined.")
LBL002 = _register(
    "LBL002", Severity.ERROR,
    "Branch targets a label that points past the end of the program.")
LBL003 = _register(
    "LBL003", Severity.ERROR,
    "Label index outside [0, len(program)].")
MEM001 = _register(
    "MEM001", Severity.ERROR,
    "Memory-image address not word aligned.")
# RESTART legality (paper Section 3.3).
RST001 = _register(
    "RST001", Severity.ERROR,
    "Orphan RESTART: a reaching definition of its operand is not a "
    "load.")
RST002 = _register(
    "RST002", Severity.ERROR,
    "RESTART with the wrong operand shape (needs 1 source, 0 "
    "destinations).")
RST003 = _register(
    "RST003", Severity.ERROR,
    "RESTART whose producing load is not in a critical SCC.")
RST004 = _register(
    "RST004", Severity.WARNING,
    "Redundant RESTART: the consumed load's destination already feeds "
    "an earlier RESTART slot.")
# Issue-group legality.
GRP001 = _register(
    "GRP001", Severity.ERROR,
    "Issue group exceeds the port model's per-cycle capacity.")
GRP002 = _register(
    "GRP002", Severity.ERROR,
    "Intra-group dependence violation (RAW/WAW or load-after-store).")
GRP003 = _register(
    "GRP003", Severity.ERROR,
    "Stop-bit / group-ordinal / branch-boundary inconsistency.")
# Compiler pass contracts.
PCH001 = _register(
    "PCH001", Severity.ERROR,
    "Compiler stage changed the def-use edge multiset beyond its "
    "contract.")
PCH002 = _register(
    "PCH002", Severity.ERROR,
    "Compiler stage changed observable final architectural state.")
# Cycle-bound audit (static oracle).
AUD001 = _register(
    "AUD001", Severity.ERROR,
    "Timing model simulated fewer cycles than the static "
    "dependence-height lower bound (sub-physical result).")

#: code -> default severity (derived view of the registry).
SEVERITY_OF: Dict[str, Severity] = {
    code: spec.severity for code, spec in _REGISTRY.items()
}


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, anchored to an instruction when possible."""

    code: str
    message: str
    index: Optional[int] = None   # instruction index, None = program level
    severity: Optional[Severity] = None

    def __post_init__(self):
        if self.severity is None:
            object.__setattr__(self, "severity",
                               SEVERITY_OF.get(self.code, Severity.ERROR))

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def render(self, program_name: str = "<program>") -> str:
        where = f":{self.index}" if self.index is not None else ""
        return (f"{program_name}{where}: {self.severity.value}"
                f"[{self.code}] {self.message}")

    def to_dict(self) -> dict:
        """JSON-safe view (``repro lint --json``)."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "index": self.index,
            "message": self.message,
        }


class VerifierError(ProgramError):
    """Raised when a program fails verification with ERROR diagnostics."""

    def __init__(self, program_name: str,
                 diagnostics: Iterable[Diagnostic]):
        self.program_name = program_name
        self.diagnostics: List[Diagnostic] = list(diagnostics)
        lines = [d.render(program_name) for d in self.diagnostics]
        super().__init__(
            f"{program_name}: verification failed with "
            f"{len(self.diagnostics)} diagnostic(s)\n" + "\n".join(lines)
        )


class InvariantError(RuntimeError):
    """A runtime pipeline invariant was violated (modelling bug)."""


def errors(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Only the ERROR-severity diagnostics."""
    return [d for d in diagnostics if d.is_error]


def warnings(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Only the WARNING-severity diagnostics."""
    return [d for d in diagnostics if not d.is_error]


def render_all(diagnostics: Iterable[Diagnostic],
               program_name: str = "<program>") -> str:
    """Render a diagnostic list one finding per line."""
    return "\n".join(d.render(program_name) for d in diagnostics)


def render_catalogue() -> str:
    """The ``docs/diagnostics.md`` markdown table, from the registry."""
    lines = [
        "# Diagnostic codes",
        "",
        "<!-- Generated by `python -m repro.analysis.diagnostics`; do "
        "not edit by hand. -->",
        "",
        "Stable codes emitted by the static-analysis layer (`repro "
        "lint`, `repro audit`, seal-time workload verification and the "
        "compiler pass checker).  A code is never renumbered or "
        "reused; retired codes are listed at the bottom.",
        "",
        "| Code | Severity | Description |",
        "| --- | --- | --- |",
    ]
    for code in sorted(_REGISTRY):
        spec = _REGISTRY[code]
        lines.append(f"| `{code}` | {spec.severity.value} | "
                     f"{spec.summary} |")
    lines.append("")
    lines.append(f"Retired codes (never to be reused): "
                 f"{', '.join(sorted(RETIRED_CODES)) or 'none'}.")
    lines.append("")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - doc generator
    print(render_catalogue(), end="")
