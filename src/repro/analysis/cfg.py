"""Control-flow analyses over sealed programs.

The basic-block partition itself lives in :mod:`repro.compiler.cfg`
(one :class:`~repro.compiler.cfg.CFG` implementation serves the
compiler passes and the analysis stack); this module re-exports it and
adds the graph-level analyses the lint rules and the cycle-bound
oracle need:

* :func:`loops` — the strongly connected components of the block
  graph, each annotated with its entry blocks and exit edges;
* :func:`no_exit_loops` — loops from which no path leaves, the static
  signature of a program that cannot terminate once the loop is
  entered (lint code ``CFG001``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..compiler.cfg import CFG, BasicBlock, build_cfg
from ..compiler.scc import nontrivial_sccs

__all__ = [
    "BasicBlock", "CFG", "Loop", "build_cfg", "loops", "no_exit_loops",
]


@dataclass
class Loop:
    """One cycle in the block graph (a nontrivial CFG SCC).

    Attributes:
        blocks: member block ids, sorted.
        headers: member blocks with a predecessor outside the loop —
            the blocks through which the loop is entered.
        exits: ``(from_block, to_block)`` edges leaving the loop.
    """

    blocks: List[int]
    headers: List[int]
    exits: List[Tuple[int, int]]

    @property
    def has_exit(self) -> bool:
        return bool(self.exits)


def loops(cfg: CFG) -> List[Loop]:
    """All cycles of the block graph, innermost-first (Tarjan order)."""
    adjacency = {block.bid: block.succs for block in cfg}
    found: List[Loop] = []
    for component in nontrivial_sccs(adjacency):
        members: Set[int] = set(component)
        headers = sorted(
            bid for bid in members
            if bid == 0 or any(p not in members
                               for p in cfg.blocks[bid].preds))
        exits = sorted(
            (bid, succ) for bid in members
            for succ in cfg.blocks[bid].succs if succ not in members)
        found.append(Loop(blocks=sorted(members), headers=headers,
                          exits=exits))
    return found


def no_exit_loops(cfg: CFG,
                  reachable: Optional[Set[int]] = None) -> List[Loop]:
    """Loops with no exit edge: entering one means never halting.

    ``reachable`` restricts the report to loops the entry can actually
    reach (pass block ids from :meth:`CFG.reachable_blocks`); loops in
    unreachable code are already flagged instruction-by-instruction by
    the ``UNR001`` rule.
    """
    if reachable is None:
        reachable = set(cfg.reachable_blocks())
    return [loop for loop in loops(cfg)
            if not loop.has_exit
            and any(bid in reachable for bid in loop.blocks)]
