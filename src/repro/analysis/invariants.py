"""Runtime invariant checking for the timing cores.

The timing models are trace driven: they replay a golden
:class:`~repro.isa.trace.Trace` and never compute values themselves, so a
modelling bug cannot corrupt *data* — but it can silently commit the wrong
*stream* (skip an entry, commit one twice, commit out of order, or merge a
stale result-store value after a restart).  :class:`ArchReplay` catches
exactly that class of bug: it re-executes the committed instruction stream
on an independent :class:`~repro.isa.functional.FunctionalSimulator` and
cross-checks every commit against the golden trace entry the core claims
to be retiring.

Cores construct an ``ArchReplay`` when built with ``check=True`` (the
``--check`` CLI flag) and feed it through ``BaseCore.commit_entry``.  Any
violation raises :class:`~repro.analysis.diagnostics.InvariantError`
immediately, pointing at the first bad commit rather than a corrupted
end-of-run statistic.
"""

from __future__ import annotations

from typing import Optional

from ..isa.functional import FunctionalSimulator
from ..isa.trace import Trace, TraceEntry
from .diagnostics import InvariantError


class ArchReplay:
    """Cross-checks a core's commit stream against independent re-execution.

    Invariants enforced per commit:

    * **Exactly-once, in-order retirement** — the committed entry's ``seq``
      must equal the number of instructions retired so far.
    * **Control-flow integrity** — the committed instruction must sit at
      the replay simulator's current pc (the architectural path cannot
      diverge from sequential semantics).
    * **Dataflow integrity** — the replayed instruction must produce the
      same effective address, memory value, branch outcome, nullification
      and destination set that the golden trace recorded.

    After the core finishes, :meth:`finish` checks that *every* trace entry
    was committed and that the replay's final registers and memory match
    the golden trace's final architectural state.
    """

    def __init__(self, trace: Trace, model: str = "core"):
        self.trace = trace
        self.model = model
        self.sim = FunctionalSimulator(
            trace.program, max_instructions=len(trace) + 1)
        self.retired = 0

    def _fail(self, message: str, entry: Optional[TraceEntry] = None) -> None:
        where = f" at #{entry.seq} {entry.inst.render()}" if entry else ""
        raise InvariantError(
            f"[{self.model}/{self.trace.program.name}]{where}: {message}")

    def commit(self, entry: TraceEntry) -> None:
        """Validate one committed trace entry and replay it."""
        if entry.seq != self.retired:
            self._fail(
                f"out-of-order commit: expected seq {self.retired}, "
                f"core committed seq {entry.seq}", entry)
        if self.sim.pc != entry.inst.index:
            self._fail(
                f"control-flow divergence: architectural pc is "
                f"{self.sim.pc}, core committed instruction at "
                f"{entry.inst.index}", entry)
        replayed = self.sim.step(entry.seq)
        if replayed.executed != entry.executed:
            self._fail(
                f"nullification mismatch: replay executed="
                f"{replayed.executed}, trace executed={entry.executed}",
                entry)
        if replayed.dests != entry.dests:
            self._fail(
                f"destination mismatch: replay wrote {replayed.dests}, "
                f"trace recorded {entry.dests}", entry)
        if replayed.addr != entry.addr:
            self._fail(
                f"address mismatch: replay addr={replayed.addr}, "
                f"trace addr={entry.addr}", entry)
        if replayed.value != entry.value:
            self._fail(
                f"value mismatch: replay value={replayed.value!r}, "
                f"trace value={entry.value!r}", entry)
        if replayed.taken != entry.taken:
            self._fail(
                f"branch-outcome mismatch: replay taken={replayed.taken}, "
                f"trace taken={entry.taken}", entry)
        self.retired += 1

    def finish(self) -> None:
        """Validate completeness and final architectural state."""
        if self.retired != len(self.trace):
            self._fail(
                f"incomplete retirement: core committed {self.retired} of "
                f"{len(self.trace)} trace entries")
        if self.sim.registers != self.trace.final_registers:
            diff = _dict_diff(self.sim.registers,
                              self.trace.final_registers)
            self._fail(f"final register state diverges: {diff}")
        if self.sim.memory != self.trace.final_memory:
            diff = _dict_diff(self.sim.memory, self.trace.final_memory)
            self._fail(f"final memory state diverges: {diff}")


def _dict_diff(got, want, limit: int = 5) -> str:
    """Render the first few key-level differences between two dicts."""
    keys = sorted(set(got) | set(want))
    diffs = []
    for k in keys:
        g, w = got.get(k), want.get(k)
        if g != w:
            diffs.append(f"{k}: got {g!r}, want {w!r}")
            if len(diffs) >= limit:
                diffs.append("...")
                break
    return "; ".join(diffs) if diffs else "<no key-level difference>"
