"""The static cycle-bound oracle: ``repro audit``.

No timing model may simulate fewer cycles than the dependence-height
lower bound of :mod:`repro.analysis.bounds` — a simulated count below
the bound is physically impossible and means a timing fast path dropped
work (diagnostic ``AUD001``).  This module turns that invariant into an
executable oracle:

* :func:`check_bound` — one cell: assert ``bound <= stats.cycles`` and
  return the audited cell record (raises :class:`AuditViolation` on
  failure);
* :func:`audit_matrix` — sweep every model x workload cell, collect an
  :class:`AuditReport`, and optionally attach the per-instruction
  slack/ineffectuality profile.

The sweep engine runs :func:`check_bound` per cell behind ``--audit``,
``repro diffcheck`` audits every model it replays, and check.sh runs
``repro audit --smoke`` — so a sub-physical result is caught in CI the
moment it appears.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..isa.trace import Trace
from ..pipeline.stats import SimStats
from . import diagnostics as dc
from .bounds import CycleBound, SlackReport, cycle_lower_bound, slack_report
from .diagnostics import Diagnostic


class AuditViolation(RuntimeError):
    """A timing model simulated fewer cycles than the static bound."""

    def __init__(self, model: str, workload: str, bound: CycleBound,
                 cycles: int):
        self.model = model
        self.workload = workload
        self.bound = bound
        self.cycles = cycles
        self.diagnostic = Diagnostic(
            dc.AUD001,
            f"model {model!r} simulated {cycles} cycles on "
            f"{workload!r}, below the static lower bound "
            f"{bound.bound} (binding: {bound.binding})")
        super().__init__(self.diagnostic.render(workload))


@dataclass(frozen=True)
class AuditCell:
    """One audited model x workload cell."""

    workload: str
    model: str
    cycles: int
    bound: CycleBound
    error: Optional[str] = None   # simulation failure -> cell unverified

    @property
    def ok(self) -> bool:
        return self.error is None and self.bound.bound <= self.cycles

    @property
    def verified(self) -> bool:
        return self.error is None

    @property
    def margin(self) -> float:
        """Simulated cycles per bound cycle (>= 1.0 when sound)."""
        return self.cycles / self.bound.bound if self.bound.bound else 1.0

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "model": self.model,
            "cycles": self.cycles,
            "bound": self.bound.to_dict(),
            "ok": self.ok,
            "error": self.error,
            "margin": round(self.margin, 3) if self.verified else None,
        }


@dataclass
class AuditReport:
    """Result of auditing a models x workloads grid."""

    scale: float
    cells: List[AuditCell] = field(default_factory=list)
    slack: Dict[str, SlackReport] = field(default_factory=dict)

    @property
    def violations(self) -> List[AuditCell]:
        return [c for c in self.cells if c.verified and not c.ok]

    @property
    def unverified(self) -> List[AuditCell]:
        return [c for c in self.cells if not c.verified]

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "scale": self.scale,
            "ok": self.ok,
            "cells": [c.to_dict() for c in self.cells],
            "violations": [c.to_dict() for c in self.violations],
            "unverified": [c.to_dict() for c in self.unverified],
            "slack": {w: r.to_dict() for w, r in self.slack.items()},
        }

    def render(self) -> str:
        lines = [f"audit @ scale {self.scale}: {len(self.cells)} cells"]
        by_workload: Dict[str, List[AuditCell]] = {}
        for cell in self.cells:
            by_workload.setdefault(cell.workload, []).append(cell)
        for workload in sorted(by_workload):
            cells = by_workload[workload]
            bound = cells[0].bound
            verified = [c for c in cells if c.verified]
            margins = (f"margin {min(c.margin for c in verified):.2f}x-"
                       f"{max(c.margin for c in verified):.2f}x"
                       if verified else "no verified cells")
            lines.append(
                f"  {workload:16s} bound={bound.bound:>8d} "
                f"({bound.binding:10s}) {len(verified)}/{len(cells)} "
                f"verified, {margins}")
        for cell in self.violations:
            lines.append(
                f"  VIOLATION [{dc.AUD001}] {cell.workload} x "
                f"{cell.model}: {cell.cycles} cycles < bound "
                f"{cell.bound.bound}")
        for cell in self.unverified:
            lines.append(f"  unverified {cell.workload} x {cell.model}: "
                         f"{cell.error}")
        for workload, report in self.slack.items():
            lines.append(f"-- slack profile: {workload} --")
            lines.append(report.render())
        lines.append("audit " + ("PASSED" if self.ok else "FAILED"))
        return "\n".join(lines)


def check_bound(stats: SimStats, trace: Trace, model: str,
                workload: str) -> AuditCell:
    """Assert the oracle for one simulated cell.

    Returns the audited cell on success; raises :class:`AuditViolation`
    when the model went sub-physical.
    """
    bound = cycle_lower_bound(trace)
    if stats.cycles < bound.bound:
        raise AuditViolation(model, workload, bound, stats.cycles)
    return AuditCell(workload=workload, model=model, cycles=stats.cycles,
                     bound=bound)


def audit_matrix(models: Optional[Iterable[str]] = None,
                 workloads: Optional[Iterable[str]] = None,
                 scale: float = 0.1,
                 parallel=None,
                 results_cache=None,
                 slack_workloads: Iterable[str] = ()) -> AuditReport:
    """Audit every model x workload cell of the grid.

    Simulation failures are recorded as unverified cells rather than
    raised, so one broken model does not mask violations elsewhere.
    ``slack_workloads`` selects workloads whose per-instruction
    slack/ineffectuality profile is attached to the report.
    """
    # Imported lazily: the harness imports this package for seal-time
    # verification, so a module-level import would be circular.
    from ..harness.experiment import (ABLATION_FACTORIES, MODEL_FACTORIES,
                                      TraceCache, run_model)
    from ..workloads import ALL_WORKLOADS

    known = {**MODEL_FACTORIES, **ABLATION_FACTORIES}
    models = list(models) if models else sorted(MODEL_FACTORIES)
    workloads = list(workloads) if workloads else list(ALL_WORKLOADS)
    for model in models:
        if model not in known:
            raise KeyError(f"unknown model {model!r}; "
                           f"available: {sorted(known)}")

    cache = TraceCache(scale)
    report = AuditReport(scale=scale)
    if parallel or results_cache:
        # The bound is computed here from the trace, so cached stats are
        # as auditable as fresh ones — cache reads stay enabled.
        from ..harness.parallel import sweep
        sweep_report = sweep(models, workloads, scale=scale,
                             jobs=parallel, results_cache=results_cache)
        cycles_of = {cell: stats.cycles for cell, stats
                     in sweep_report.matrix.results.items()}
        errors_of = {(f.workload, f.model): f.error
                     for f in sweep_report.failures}
    else:
        cycles_of, errors_of = {}, {}

    for workload in workloads:
        trace = cache.trace(workload)
        bound = cycle_lower_bound(trace)
        for model in models:
            key = (workload, model)
            if key in cycles_of:
                cycles = cycles_of[key]
            elif key in errors_of:
                report.cells.append(AuditCell(
                    workload=workload, model=model, cycles=0,
                    bound=bound, error=errors_of[key]))
                continue
            else:
                try:
                    cycles = run_model(model, trace).cycles
                except Exception as exc:
                    report.cells.append(AuditCell(
                        workload=workload, model=model, cycles=0,
                        bound=bound,
                        error=f"{type(exc).__name__}: {exc}"))
                    continue
            report.cells.append(AuditCell(
                workload=workload, model=model, cycles=cycles,
                bound=bound))
    for workload in slack_workloads:
        report.slack[workload] = slack_report(cache.trace(workload))
    return report
