"""Static-analysis and verification layer.

The layer is built around a shared CFG (:mod:`~repro.analysis.cfg`) and
a generic worklist dataflow solver (:mod:`~repro.analysis.dataflow`)
whose instances — reaching definitions, liveness, must-defined — power
both the compiler's def-use graph and the lint rules.  On top of it,
four tools guard the reproduction's correctness contracts:

* :mod:`~repro.analysis.verifier` — dataflow lint over sealed programs
  (use-before-def, dead writes, unreachable code, no-exit loops,
  label/branch integrity, memory-image alignment, RESTART legality and
  redundancy, issue-group legality);
* :mod:`~repro.analysis.passes_check` — per-stage verification of the
  compiler pass pipeline with def-use-chain diffing;
* :mod:`~repro.analysis.equivalence` — differential execution of every
  simulator with runtime invariant checking
  (:mod:`~repro.analysis.invariants`);
* :mod:`~repro.analysis.bounds` / :mod:`~repro.analysis.audit` — the
  static critical-path estimator and the cycle-bound oracle asserting
  ``static_lower_bound <= simulated_cycles`` for every model x workload
  cell.

CLI entry points: ``python -m repro lint``, ``python -m repro
diffcheck`` and ``python -m repro audit``.
"""

from .audit import (AuditCell, AuditReport, AuditViolation, audit_matrix,
                    check_bound)
from .bounds import (CycleBound, SlackReport, cycle_lower_bound,
                     slack_report)
from .cfg import CFG, BasicBlock, Loop, build_cfg, loops, no_exit_loops
from .dataflow import (DataflowProblem, DataflowSolution, DefUseChains,
                       LiveVariables, MustDefined, ReachingDefinitions,
                       solve)
from .diagnostics import (Diagnostic, DiagnosticSpec, InvariantError,
                          Severity, VerifierError, errors, registry,
                          render_all, warnings)
from .invariants import ArchReplay
from .verifier import (VerifyOptions, assert_valid, verify_compiled,
                       verify_program)

__all__ = [
    "ArchReplay",
    "AuditCell",
    "AuditReport",
    "AuditViolation",
    "BasicBlock",
    "CFG",
    "CycleBound",
    "DataflowProblem",
    "DataflowSolution",
    "DefUseChains",
    "Diagnostic",
    "DiagnosticSpec",
    "InvariantError",
    "LiveVariables",
    "Loop",
    "MustDefined",
    "ReachingDefinitions",
    "Severity",
    "SlackReport",
    "VerifierError",
    "VerifyOptions",
    "assert_valid",
    "audit_matrix",
    "build_cfg",
    "check_bound",
    "cycle_lower_bound",
    "errors",
    "loops",
    "no_exit_loops",
    "registry",
    "render_all",
    "slack_report",
    "solve",
    "verify_compiled",
    "verify_program",
    "warnings",
]
