"""Static-analysis and verification layer.

Three tools guard the reproduction's correctness contracts:

* :mod:`~repro.analysis.verifier` — dataflow lint over sealed programs
  (use-before-def, dead writes, unreachable code, label/branch integrity,
  memory-image alignment, RESTART legality, issue-group legality);
* :mod:`~repro.analysis.passes_check` — per-stage verification of the
  compiler pass pipeline with def-use-chain diffing;
* :mod:`~repro.analysis.equivalence` — differential execution of every
  simulator with runtime invariant checking
  (:mod:`~repro.analysis.invariants`).

CLI entry points: ``python -m repro lint`` and ``python -m repro
diffcheck``.
"""

from .diagnostics import (Diagnostic, InvariantError, Severity,
                          VerifierError, errors, render_all)
from .invariants import ArchReplay
from .verifier import (VerifyOptions, assert_valid, verify_compiled,
                       verify_program)

__all__ = [
    "ArchReplay",
    "Diagnostic",
    "InvariantError",
    "Severity",
    "VerifierError",
    "VerifyOptions",
    "assert_valid",
    "errors",
    "render_all",
    "verify_compiled",
    "verify_program",
]
