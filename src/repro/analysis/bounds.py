"""Static critical-path estimator: cycle lower bounds and slack.

Every timing model in the repository replays the same golden trace, and
all of them respect two physical facts:

* **value availability** — a consumer cannot begin computing before each
  producer's value exists, and a producer's value exists no earlier than
  its own start plus its minimum (speculative) latency.  Loads use the
  L1-hit floor of 1 cycle; real latencies from the cache hierarchy can
  only be larger.
* **issue bandwidth** — at most ``width`` trace entries occupy issue
  slots per cycle, and each port class has its own per-cycle cap.

The maximum over both gives a *sound lower bound* on simulated cycles
for every model, from the stall-on-use in-order core to the ideal
out-of-order machine: the dependence height tracks first-computation
times (which multipass advance passes and runahead pre-execution also
obey — they too must read operands that exist), and the width/port
bounds count occupied slots.  ``repro audit`` asserts
``bound <= simulated_cycles`` per model x workload cell; a violation
(``AUD001``) means a timing fast path went sub-physical.

The same forward pass, run together with a backward late-start pass and
an effectuality closure, yields the per-instruction slack /
ineffectuality report of :func:`slack_report` — the static counterpart
of the dynamic stall profiler, and the quantity the paper's advance
pass mines (ready operands, effectual results; PAPER.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa.registers import HARDWIRED
from ..isa.trace import Trace
from ..resources import PortModel

_DEFAULT_PORTS = PortModel()


def _ceil_div(num: int, den: int) -> int:
    return -(-num // den) if den > 0 else 0


@dataclass(frozen=True)
class CycleBound:
    """Static lower bound on simulated cycles for one trace.

    ``bound`` is the max of the dependence-height bound and the
    bandwidth bounds; the components are kept separate so reports can
    say *which* resource is binding.
    """

    entries: int            # dynamic trace length (slots occupied)
    dep_height: int         # critical-path bound (value availability)
    width_bound: int        # ceil(entries / issue width)
    mem_bound: int          # executed memory ops / M ports
    int_bound: int          # ALU + memory ops / (I + M) ports
    fp_bound: int           # FP + MULDIV ops / F ports
    br_bound: int           # branches / B ports

    @property
    def bound(self) -> int:
        return max(self.dep_height, self.width_bound, self.mem_bound,
                   self.int_bound, self.fp_bound, self.br_bound)

    @property
    def binding(self) -> str:
        """Name of the component that determines the bound."""
        components = [
            ("dep_height", self.dep_height),
            ("width", self.width_bound),
            ("mem_ports", self.mem_bound),
            ("int_ports", self.int_bound),
            ("fp_ports", self.fp_bound),
            ("br_ports", self.br_bound),
        ]
        return max(components, key=lambda item: item[1])[0]

    def to_dict(self) -> dict:
        return {
            "entries": self.entries,
            "dep_height": self.dep_height,
            "width_bound": self.width_bound,
            "mem_bound": self.mem_bound,
            "int_bound": self.int_bound,
            "fp_bound": self.fp_bound,
            "br_bound": self.br_bound,
            "bound": self.bound,
            "binding": self.binding,
        }


def _dep_start_times(trace: Trace) -> List[int]:
    """Earliest possible start cycle of each trace entry.

    The recurrence of the module docstring: an executed entry starts no
    earlier than every source value exists.  Nullified entries and
    RESTART hints conservatively start at 0 (models may issue them
    without a readiness check), and never publish destinations.
    """
    dec = trace.decoded
    ready: Dict[int, int] = {}
    starts = [0] * dec.n
    for i in range(dec.n):
        if not dec.executed[i] or dec.is_restart[i]:
            continue
        start = 0
        for reg in dec.srcs[i]:
            avail = ready.get(reg, 0)
            if avail > start:
                start = avail
        starts[i] = start
        done = start + dec.latency[i]
        for reg in dec.dests[i]:
            if reg not in HARDWIRED:
                ready[reg] = done
    return starts


def cycle_lower_bound(trace: Trace,
                      ports: Optional[PortModel] = None) -> CycleBound:
    """Compute (and cache on the trace) the static cycle lower bound."""
    if ports is None and getattr(trace, "_cycle_bound", None) is not None:
        return trace._cycle_bound
    ports = ports or _DEFAULT_PORTS

    dec = trace.decoded
    n = dec.n
    dep_height = 0
    if n:
        starts = _dep_start_times(trace)
        # Every entry occupies an issue slot in some cycle >= its start,
        # and the simulation runs at least one cycle past that issue.
        dep_height = max(starts) + 1

    n_mem = n_alu = n_fp = n_br = 0
    for i in range(n):
        if not dec.executed[i]:
            continue  # nullified entries occupy only a slot
        if dec.is_load[i] or dec.is_store[i]:
            n_mem += 1
        elif dec.is_branch[i]:
            n_br += 1
        else:
            name = dec.fu[i].name
            if name in ("FP", "MULDIV"):
                n_fp += 1
            elif name == "ALU":
                n_alu += 1

    bound = CycleBound(
        entries=n,
        dep_height=dep_height,
        width_bound=_ceil_div(n, ports.width),
        mem_bound=_ceil_div(n_mem, ports.m_ports),
        int_bound=_ceil_div(n_alu + n_mem,
                            ports.i_ports + ports.m_ports),
        fp_bound=_ceil_div(n_fp, ports.f_ports),
        br_bound=_ceil_div(n_br, ports.b_ports),
    )
    if ports is _DEFAULT_PORTS:
        trace._cycle_bound = bound
    return bound


# ---------------------------------------------------------------------------
# per-instruction slack / ineffectuality
# ---------------------------------------------------------------------------

@dataclass
class SlackRow:
    """Aggregate slack/effectuality for one static instruction."""

    pc: int
    text: str
    count: int = 0              # dynamic occurrences
    executed: int = 0           # non-nullified occurrences
    ineffectual: int = 0        # executed but feeding no effectual sink
    critical: int = 0           # executed occurrences with zero slack
    min_slack: Optional[int] = None
    total_slack: int = 0

    @property
    def avg_slack(self) -> float:
        return self.total_slack / self.executed if self.executed else 0.0

    @property
    def ineffectual_frac(self) -> float:
        return self.ineffectual / self.executed if self.executed else 0.0

    def to_dict(self) -> dict:
        return {
            "pc": self.pc,
            "text": self.text,
            "count": self.count,
            "executed": self.executed,
            "ineffectual": self.ineffectual,
            "critical": self.critical,
            "min_slack": self.min_slack,
            "avg_slack": round(self.avg_slack, 2),
            "ineffectual_frac": round(self.ineffectual_frac, 4),
        }


@dataclass
class SlackReport:
    """Static slack / ineffectuality profile of one trace."""

    bound: CycleBound
    rows: List[SlackRow] = field(default_factory=list)

    @property
    def ineffectual_total(self) -> int:
        return sum(row.ineffectual for row in self.rows)

    @property
    def executed_total(self) -> int:
        return sum(row.executed for row in self.rows)

    def to_dict(self) -> dict:
        return {
            "bound": self.bound.to_dict(),
            "executed": self.executed_total,
            "ineffectual": self.ineffectual_total,
            "rows": [row.to_dict() for row in self.rows],
        }

    def render(self, limit: int = 20) -> str:
        lines = [
            f"dependence-height bound: {self.bound.bound} cycles "
            f"(binding: {self.bound.binding})",
            f"executed entries: {self.executed_total}, ineffectual: "
            f"{self.ineffectual_total}",
            f"{'pc':>5} {'count':>7} {'ineff%':>7} {'min':>5} "
            f"{'avg':>7}  instruction",
        ]
        shown = sorted(self.rows, key=lambda r: (-r.critical, r.pc))
        for row in shown[:limit]:
            min_slack = "-" if row.min_slack is None else row.min_slack
            lines.append(
                f"{row.pc:>5} {row.count:>7} "
                f"{100 * row.ineffectual_frac:>6.1f}% {min_slack:>5} "
                f"{row.avg_slack:>7.1f}  {row.text}")
        if len(shown) > limit:
            lines.append(f"... ({len(shown) - limit} more static "
                         f"instructions)")
        return "\n".join(lines)


def slack_report(trace: Trace,
                 ports: Optional[PortModel] = None) -> SlackReport:
    """Per-static-instruction slack and ineffectuality for one trace.

    *Slack* of a dynamic entry is how many cycles its start could be
    delayed without stretching the dependence-height critical path —
    zero-slack entries are the path the advance pass must not starve.
    An executed entry is *ineffectual* when no chain of dynamic def-use
    edges connects it to an effectual sink (a store, a branch, HALT, or
    the last writer of a final architectural register): its result can
    be dropped without changing the observable outcome (per the
    ineffectuality analysis of PAPERS.md).
    """
    bound = cycle_lower_bound(trace, ports)
    dec = trace.decoded
    n = dec.n
    starts = _dep_start_times(trace)

    # Dynamic def-use edges via last-writer tracking.  Nullified entries
    # read only their qualifying predicate; the edge is kept because the
    # nullification decision is an observable effect of that predicate.
    producers: List[Tuple[int, ...]] = [()] * n
    consumers: List[List[int]] = [[] for _ in range(n)]
    last_writer: Dict[int, int] = {}
    for i in range(n):
        feeds = []
        for reg in dec.srcs[i]:
            writer = last_writer.get(reg)
            if writer is not None:
                feeds.append(writer)
                consumers[writer].append(i)
        producers[i] = tuple(feeds)
        if not dec.executed[i]:
            continue
        for reg in dec.dests[i]:
            if reg not in HARDWIRED:
                last_writer[reg] = i
    # Backward closure from effectual sinks.  A nullified entry is a
    # sink: it has no dests, but its predicate chain decided what the
    # machine did, so that chain is never reported droppable.
    effectual = [False] * n
    stack: List[int] = []
    for i in range(n):
        if dec.is_restart[i]:
            continue  # RESTART is a hint, not an observable effect
        if (not dec.executed[i] or dec.is_store[i] or dec.is_branch[i]
                or dec.fu[i].name == "NONE"):
            stack.append(i)
    for reg in trace.final_registers:
        writer = last_writer.get(reg)
        if writer is not None:
            stack.append(writer)
    while stack:
        i = stack.pop()
        if effectual[i]:
            continue
        effectual[i] = True
        for producer in producers[i]:
            if not effectual[producer]:
                stack.append(producer)

    # Backward late-start pass anchored at the critical-path makespan.
    makespan = max(starts) if n else 0
    late = [makespan] * n
    for i in range(n - 1, -1, -1):
        if not dec.executed[i] or dec.is_restart[i]:
            continue
        if consumers[i]:
            latest = min(late[c] for c in consumers[i]) - dec.latency[i]
            late[i] = max(0, latest)

    rows: Dict[int, SlackRow] = {}
    program = trace.program
    for i in range(n):
        pc = dec.pc[i]
        row = rows.get(pc)
        if row is None:
            row = rows[pc] = SlackRow(pc=pc, text=program[pc].render())
        row.count += 1
        if not dec.executed[i] or dec.is_restart[i]:
            continue
        row.executed += 1
        slack = late[i] - starts[i]
        row.total_slack += slack
        if row.min_slack is None or slack < row.min_slack:
            row.min_slack = slack
        if slack == 0:
            row.critical += 1
        produces_value = bool(dec.dests[i]) and not dec.is_store[i]
        if produces_value and not effectual[i]:
            row.ineffectual += 1
    return SlackReport(bound=bound,
                       rows=[rows[pc] for pc in sorted(rows)])
