"""Generic worklist dataflow solver and its standard instances.

One iterative solver (:func:`solve`) drives every register dataflow
analysis in the repository.  A :class:`DataflowProblem` packages the
direction, the meet operator, the boundary/initial values and the
per-block transfer function; the solver iterates blocks in reverse
postorder (forward problems) or its reverse (backward problems) until a
fixpoint and returns per-block IN/OUT values.

Three instances cover the static checks the simulators rely on:

* :class:`ReachingDefinitions` — which definition sites may reach each
  block (forward, may).  :meth:`ReachingDefinitions.def_use_chains`
  materializes the def-use graph that powers the compiler's
  advance-restart heuristic (:mod:`repro.compiler.dataflow` delegates
  here) and the verifier's RESTART legality checks.
* :class:`LiveVariables` — which registers may still be read (backward,
  may).  Drives the dead-write lint (``DWR001``).
* :class:`MustDefined` — which registers are definitely written on
  every path from the entry (forward, must).  Drives the
  use-before-def lint (``UBD001``).

All instances exclude the hardwired registers (``r0``/``p0``), whose
values are architectural constants.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..compiler.cfg import CFG, build_cfg
from ..isa.program import Program
from ..isa.registers import HARDWIRED, NUM_REGS

#: A definition site: (instruction index, register id).
Definition = Tuple[int, int]

#: All non-hardwired register ids, the universe of the register lattices.
ALL_REGS: FrozenSet[int] = frozenset(range(NUM_REGS)) - HARDWIRED


def defs_and_uses(program: Program
                  ) -> Tuple[List[Tuple[int, ...]], List[Tuple[int, ...]]]:
    """Per-instruction written and read register tuples, hardwired excluded.

    Reads include the qualifying predicate of predicated instructions
    (nullification requires the predicate's value).
    """
    defs: List[Tuple[int, ...]] = []
    uses: List[Tuple[int, ...]] = []
    for inst in program:
        defs.append(tuple(d for d in inst.dests if d not in HARDWIRED))
        uses.append(tuple(s for s in inst.read_regs()
                          if s not in HARDWIRED))
    return defs, uses


class DataflowProblem:
    """One dataflow analysis: direction, lattice and transfer function.

    Values are frozensets; subclasses define what the elements mean.
    ``direction`` is ``"forward"`` (IN from predecessors' OUT) or
    ``"backward"`` (OUT from successors' IN).
    """

    direction = "forward"

    def boundary(self) -> FrozenSet:
        """Value at the entry (forward) / at exit blocks (backward)."""
        return frozenset()

    def initial(self) -> FrozenSet:
        """Optimistic starting value for every non-boundary block."""
        return frozenset()

    def meet(self, values: List[FrozenSet]) -> FrozenSet:
        """Combine flow values at a join point (default: may/union)."""
        out: Set = set()
        for value in values:
            out |= value
        return frozenset(out)

    def transfer(self, bid: int, value: FrozenSet) -> FrozenSet:
        """Flow ``value`` through block ``bid``."""
        raise NotImplementedError


@dataclass
class DataflowSolution:
    """Fixpoint of one problem: per-block IN and OUT values.

    For forward problems IN is the meet over predecessors and OUT the
    transferred value; for backward problems OUT is the meet over
    successors and IN the transferred value.
    """

    cfg: CFG
    in_of: List[FrozenSet]
    out_of: List[FrozenSet]


def solve(cfg: CFG, problem: DataflowProblem) -> DataflowSolution:
    """Run the worklist algorithm to a fixpoint and return the solution.

    Blocks are seeded in reverse postorder (forward) or its reverse
    (backward) so acyclic regions converge in one sweep; only blocks
    whose inputs changed are revisited.
    """
    n = len(cfg)
    in_of: List[FrozenSet] = [problem.initial() for _ in range(n)]
    out_of: List[FrozenSet] = [problem.initial() for _ in range(n)]
    if n == 0:
        return DataflowSolution(cfg, in_of, out_of)

    forward = problem.direction == "forward"
    order = cfg.reverse_postorder()
    if not forward:
        order = list(reversed(order))
    # Unreachable blocks never appear in the RPO; give them one
    # deterministic visit at the end so their values are still defined.
    order += [b.bid for b in cfg if b.bid not in set(order)]

    def inputs_of(bid: int) -> List[int]:
        block = cfg.blocks[bid]
        return block.preds if forward else block.succs

    def outputs_of(bid: int) -> List[int]:
        block = cfg.blocks[bid]
        return block.succs if forward else block.preds

    def is_boundary(bid: int) -> bool:
        return bid == 0 if forward else not cfg.blocks[bid].succs

    pending = deque(order)
    queued = set(order)
    while pending:
        bid = pending.popleft()
        queued.discard(bid)
        if is_boundary(bid):
            incoming = problem.boundary()
        else:
            feeds = inputs_of(bid)
            if feeds:
                incoming = problem.meet(
                    [(out_of if forward else in_of)[f] for f in feeds])
            else:
                # Unreachable non-entry block: keep the optimistic value
                # (nothing is asserted about paths that cannot happen).
                incoming = (in_of if forward else out_of)[bid]
        outgoing = problem.transfer(bid, incoming)
        if forward:
            in_of[bid], previous = incoming, out_of[bid]
            out_of[bid] = outgoing
        else:
            out_of[bid], previous = incoming, in_of[bid]
            in_of[bid] = outgoing
        if outgoing != previous:
            for succ in outputs_of(bid):
                if succ not in queued:
                    queued.add(succ)
                    pending.append(succ)
    return DataflowSolution(cfg, in_of, out_of)


# ---------------------------------------------------------------------------
# reaching definitions and def-use chains
# ---------------------------------------------------------------------------

@dataclass
class DefUseChains:
    """The def-use graph over static instructions.

    ``uses_of[i]`` holds the instruction indices that may consume a
    value produced by instruction ``i`` along some CFG path (including
    loop-carried paths); ``defs_of[i]`` is the reverse relation.
    """

    program: Program
    uses_of: Dict[int, Set[int]]
    defs_of: Dict[int, Set[int]]


class ReachingDefinitions(DataflowProblem):
    """Forward may-analysis over definition sites ``(index, register)``."""

    direction = "forward"

    def __init__(self, program: Program, cfg: Optional[CFG] = None):
        self.program = program
        self.cfg = cfg or build_cfg(program)
        self.defs, self.uses = defs_and_uses(program)

        all_defs_of_reg: Dict[int, Set[Definition]] = {}
        for idx, dest_regs in enumerate(self.defs):
            for reg in dest_regs:
                all_defs_of_reg.setdefault(reg, set()).add((idx, reg))

        self._gen: List[FrozenSet[Definition]] = []
        self._kill: List[FrozenSet[Definition]] = []
        for block in self.cfg:
            last_def: Dict[int, Definition] = {}
            killed: Set[Definition] = set()
            for idx in block.indices():
                for reg in self.defs[idx]:
                    killed |= all_defs_of_reg[reg]
                    last_def[reg] = (idx, reg)
            gen = frozenset(last_def.values())
            self._gen.append(gen)
            self._kill.append(frozenset(killed - gen))

    def transfer(self, bid: int, value: FrozenSet) -> FrozenSet:
        return (value - self._kill[bid]) | self._gen[bid]

    def solve(self) -> DataflowSolution:
        return solve(self.cfg, self)

    def def_use_chains(self, solution: Optional[DataflowSolution] = None
                       ) -> DefUseChains:
        """Connect reaching definitions to the uses they may feed."""
        solution = solution or self.solve()
        n = len(self.program)
        uses_of: Dict[int, Set[int]] = {i: set() for i in range(n)}
        defs_of: Dict[int, Set[int]] = {i: set() for i in range(n)}
        for block in self.cfg:
            live: Dict[int, Set[int]] = {}
            for def_idx, reg in solution.in_of[block.bid]:
                live.setdefault(reg, set()).add(def_idx)
            for idx in block.indices():
                for reg in self.uses[idx]:
                    for def_idx in live.get(reg, ()):
                        uses_of[def_idx].add(idx)
                        defs_of[idx].add(def_idx)
                for reg in self.defs[idx]:
                    live[reg] = {idx}
        return DefUseChains(self.program, uses_of, defs_of)


# ---------------------------------------------------------------------------
# live variables
# ---------------------------------------------------------------------------

class LiveVariables(DataflowProblem):
    """Backward may-analysis over register liveness.

    Every register is observable in the final architectural state, so
    exit blocks treat all registers as live-out (the ``exit_live``
    boundary).  Predicated writes never kill liveness — they may not
    execute — which matches the verifier's dead-write rule.
    """

    direction = "backward"

    def __init__(self, program: Program, cfg: Optional[CFG] = None,
                 exit_live: FrozenSet[int] = ALL_REGS):
        self.program = program
        self.cfg = cfg or build_cfg(program)
        self._exit_live = frozenset(exit_live)
        self._use: List[FrozenSet[int]] = []
        self._kill: List[FrozenSet[int]] = []
        for block in self.cfg:
            used: Set[int] = set()
            killed: Set[int] = set()
            for idx in block.indices():
                inst = program[idx]
                for reg in inst.read_regs():
                    if reg not in HARDWIRED and reg not in killed:
                        used.add(reg)
                if not inst.is_predicated:
                    killed.update(d for d in inst.dests
                                  if d not in HARDWIRED)
            self._use.append(frozenset(used))
            self._kill.append(frozenset(killed))

    def boundary(self) -> FrozenSet:
        return self._exit_live

    def transfer(self, bid: int, value: FrozenSet) -> FrozenSet:
        return self._use[bid] | (value - self._kill[bid])

    def solve(self) -> DataflowSolution:
        return solve(self.cfg, self)


# ---------------------------------------------------------------------------
# must-defined registers
# ---------------------------------------------------------------------------

class MustDefined(DataflowProblem):
    """Forward must-analysis: registers written on *every* path.

    A predicated definition counts as a definition (the compiler
    guarantees a same-guard producer on the nullified path or the value
    is dead there).  The meet is intersection; the optimistic initial
    value is the full register set, so unreachable blocks assert
    everything and emit nothing.
    """

    direction = "forward"

    def __init__(self, program: Program, cfg: Optional[CFG] = None):
        self.program = program
        self.cfg = cfg or build_cfg(program)
        self._defs: List[FrozenSet[int]] = []
        for block in self.cfg:
            defined: Set[int] = set()
            for idx in block.indices():
                defined.update(d for d in program[idx].dests
                               if d not in HARDWIRED)
            self._defs.append(frozenset(defined))

    def initial(self) -> FrozenSet:
        return ALL_REGS

    def meet(self, values: List[FrozenSet]) -> FrozenSet:
        out: FrozenSet = values[0]
        for value in values[1:]:
            out &= value
        return out

    def transfer(self, bid: int, value: FrozenSet) -> FrozenSet:
        return value | self._defs[bid]

    def solve(self) -> DataflowSolution:
        return solve(self.cfg, self)
