"""Program verifier: dataflow lint over sealed :class:`Program` objects.

Checks the two static contracts the simulators rely on (PAPER.md §3.3):

* the program is a *legal EPIC program* — labels resolve, branch targets
  are in range and land on issue-group leaders, issue groups respect the
  :class:`~repro.resources.PortModel` and contain no intra-group
  dependences, the memory image is word aligned, every register use has a
  reaching definition and no value is overwritten before use;
* RESTART directives are *legal* — each consumes the destination of a
  load belonging to a critical SCC of the dataflow graph, exactly as
  :func:`repro.compiler.restart.insert_restarts` promises to place them.

The verifier is pure analysis: it never mutates the program.  Use
:func:`verify_program` to collect diagnostics or :func:`assert_valid` to
fail fast (raising :class:`VerifierError`) on the first bad program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..compiler.criticality import find_critical_sccs
from ..compiler.dataflow import build_dataflow_graph
from ..isa.opcodes import Opcode
from ..isa.program import WORD_SIZE, Program
from ..isa.registers import HARDWIRED
from ..resources import PortModel
from . import diagnostics as dc
from .cfg import CFG, build_cfg, no_exit_loops
from .dataflow import LiveVariables, MustDefined
from .diagnostics import Diagnostic, VerifierError


@dataclass(frozen=True)
class VerifyOptions:
    """Knobs for the verifier.

    Attributes:
        ports: issue-port model groups are checked against (must match the
            model the program was scheduled for).
        dominance_ratio: criticality threshold used to re-derive the
            critical SCCs for RESTART legality; must match the compile
            option.
        check_groups: force issue-group checking on/off; ``None`` enables
            it automatically when the program carries group ordinals.
        check_liveness: run the use-before-def / dead-write dataflow.
    """

    ports: PortModel = field(default_factory=PortModel)
    dominance_ratio: float = 2.0
    check_groups: Optional[bool] = None
    check_liveness: bool = True


def verify_program(program: Program,
                   options: Optional[VerifyOptions] = None
                   ) -> List[Diagnostic]:
    """Run every lint rule over ``program`` and return the findings."""
    options = options or VerifyOptions()
    out: List[Diagnostic] = []

    _check_labels(program, out)
    _check_memory_image(program, out)
    if dc.errors(out):
        # Broken labels make the CFG unbuildable; stop at structural lints.
        return out

    cfg = build_cfg(program)
    reachable = _reachable_indices(program, cfg, out)
    _check_loops(cfg, out)
    if options.check_liveness:
        _check_use_before_def(program, cfg, reachable, out)
        _check_dead_writes(program, cfg, out)
    _check_restarts(program, options, out)

    grouped = any(inst.group >= 0 for inst in program)
    check_groups = (grouped if options.check_groups is None
                    else options.check_groups)
    if check_groups:
        _check_issue_groups(program, options.ports, out)
    return out


def assert_valid(program: Program,
                 options: Optional[VerifyOptions] = None,
                 compiled: bool = False) -> None:
    """Raise :class:`VerifierError` if ``program`` has ERROR diagnostics.

    ``compiled=True`` additionally forces issue-group legality checks
    (use it for post-compilation programs).
    """
    verify = verify_compiled if compiled else verify_program
    found = dc.errors(verify(program, options))
    if found:
        raise VerifierError(program.name, found)


# ---------------------------------------------------------------------------
# structural checks
# ---------------------------------------------------------------------------

def _check_labels(program: Program, out: List[Diagnostic]) -> None:
    n = len(program)
    for label, idx in program.labels.items():
        if not isinstance(idx, int) or not 0 <= idx <= n:
            out.append(Diagnostic(
                dc.LBL003, f"label {label!r} index {idx!r} outside "
                f"[0, {n}]"))
    for inst in program:
        if not inst.is_branch:
            continue
        target = inst.target
        if target is None or target not in program.labels:
            out.append(Diagnostic(
                dc.LBL001, f"branch targets unknown label {target!r}",
                inst.index))
        elif program.labels[target] >= n:
            out.append(Diagnostic(
                dc.LBL002, f"branch targets label {target!r} which points "
                f"past the end of the program "
                f"(index {program.labels[target]} of {n})", inst.index))


def _check_memory_image(program: Program, out: List[Diagnostic]) -> None:
    for addr in sorted(program.memory_image):
        if addr % WORD_SIZE != 0:
            out.append(Diagnostic(
                dc.MEM001,
                f"memory-image address {addr:#x} is not {WORD_SIZE}-byte "
                f"aligned"))


def _reachable_indices(program: Program, cfg: CFG,
                       out: List[Diagnostic]) -> Set[int]:
    """CFG reachability from the entry; unreachable code is linted."""
    if not len(cfg):
        return set()
    reachable: Set[int] = set()
    for bid in cfg.reachable_blocks():
        reachable.update(cfg.blocks[bid].indices())
    for inst in program:
        if inst.index not in reachable:
            out.append(Diagnostic(
                dc.UNR001, "instruction is unreachable from the entry",
                inst.index))
    return reachable


def _check_loops(cfg: CFG, out: List[Diagnostic]) -> None:
    """Flag reachable loops with no exit path (``CFG001``)."""
    for loop in no_exit_loops(cfg):
        anchor = cfg.blocks[min(loop.headers or loop.blocks)].start
        members = ", ".join(str(b) for b in loop.blocks)
        out.append(Diagnostic(
            dc.CFG001,
            f"loop over block(s) {{{members}}} has no exit path: once "
            f"entered the program can never halt", anchor))


# ---------------------------------------------------------------------------
# register liveness
# ---------------------------------------------------------------------------

def _check_use_before_def(program: Program, cfg: CFG, reachable: Set[int],
                          out: List[Diagnostic]) -> None:
    """Must-define forward dataflow: every use needs a reaching def.

    A predicated definition counts as a definition (the compiler
    guarantees a same-guard producer on the nullified path or the value
    is dead there); hardwired registers are always defined.  Unreachable
    blocks keep the optimistic "everything defined" value and emit
    nothing (``UNR001`` already covers them).
    """
    if not len(cfg):
        return
    solution = MustDefined(program, cfg).solve()
    for block in cfg:
        defined = set(solution.in_of[block.bid])
        for idx in block.indices():
            if idx not in reachable:
                continue
            inst = program[idx]
            for reg in dict.fromkeys(inst.read_regs()):
                if reg in HARDWIRED or reg in defined:
                    continue
                out.append(Diagnostic(
                    dc.UBD001,
                    f"register {reg} may be read before any definition "
                    f"reaches it", idx))
            defined.update(d for d in inst.dests if d not in HARDWIRED)


def _check_dead_writes(program: Program, cfg: CFG,
                       out: List[Diagnostic]) -> None:
    """Backward liveness: flag writes overwritten before use on all paths.

    Every register is observable in the final architectural state, so
    blocks without successors treat all registers as live-out; only a
    write that is *redefined* before any use on every path is dead.
    Predicated writes never kill liveness (they may not execute).
    """
    if not len(cfg):
        return
    solution = LiveVariables(program, cfg).solve()
    for block in cfg:
        live = set(solution.out_of[block.bid])
        for idx in reversed(block.indices()):
            inst = program[idx]
            for dest in inst.dests:
                if dest in HARDWIRED:
                    continue
                if dest not in live:
                    out.append(Diagnostic(
                        dc.DWR001,
                        f"value written to register {dest} is overwritten "
                        f"before any use", idx))
            if not inst.is_predicated:
                live.difference_update(
                    d for d in inst.dests if d not in HARDWIRED)
            live.update(r for r in inst.read_regs() if r not in HARDWIRED)


# ---------------------------------------------------------------------------
# RESTART legality (paper Section 3.3)
# ---------------------------------------------------------------------------

def _check_restarts(program: Program, options: VerifyOptions,
                    out: List[Diagnostic]) -> None:
    restarts = [inst for inst in program
                if inst.opcode is Opcode.RESTART]
    if not restarts:
        return
    graph = build_dataflow_graph(program)
    critical_loads: Set[int] = set()
    for scc in find_critical_sccs(program, graph,
                                  dominance_ratio=options.dominance_ratio):
        critical_loads.update(scc.loads)

    for inst in restarts:
        if len(inst.srcs) != 1 or inst.dests:
            out.append(Diagnostic(
                dc.RST002,
                f"RESTART must consume exactly one register and write "
                f"none (has {len(inst.srcs)} sources, "
                f"{len(inst.dests)} destinations)", inst.index))
            continue
        producers = graph.preds.get(inst.index, set())
        if not producers:
            out.append(Diagnostic(
                dc.RST001,
                f"orphan RESTART: no definition of register "
                f"{inst.srcs[0]} reaches it", inst.index))
            continue
        non_loads = sorted(p for p in producers if not program[p].is_load)
        if non_loads:
            out.append(Diagnostic(
                dc.RST001,
                f"orphan RESTART: operand register {inst.srcs[0]} is "
                f"produced by non-load instruction(s) at {non_loads}",
                inst.index))
            continue
        uncritical = sorted(p for p in producers
                            if p not in critical_loads)
        if uncritical:
            out.append(Diagnostic(
                dc.RST003,
                f"RESTART consumes load(s) at {uncritical} outside any "
                f"critical SCC (dominance ratio "
                f"{options.dominance_ratio})", inst.index))

    # Redundant slots: insert_restarts() promises at most one RESTART
    # per covered load, so a load destination feeding a second RESTART
    # wastes an issue slot without adding coverage.
    consumers_of_load: Dict[int, List[int]] = {}
    for inst in restarts:
        for producer in sorted(graph.preds.get(inst.index, set())):
            if program[producer].is_load:
                consumers_of_load.setdefault(producer, []).append(
                    inst.index)
    redundant_for: Dict[int, Set[int]] = {}
    for load_idx, consumer_list in consumers_of_load.items():
        for extra in sorted(consumer_list)[1:]:
            redundant_for.setdefault(extra, set()).add(load_idx)
    for inst in restarts:
        producers = {p for p in graph.preds.get(inst.index, set())
                     if program[p].is_load}
        if producers and producers <= redundant_for.get(inst.index,
                                                        set()):
            covered = sorted(producers)
            out.append(Diagnostic(
                dc.RST004,
                f"redundant RESTART: load(s) at {covered} already feed "
                f"an earlier RESTART slot", inst.index))


# ---------------------------------------------------------------------------
# issue-group legality (Itanium-style dispersal rules)
# ---------------------------------------------------------------------------

def _check_issue_groups(program: Program, ports: PortModel,
                        out: List[Diagnostic]) -> None:
    n = len(program)
    if n == 0:
        return

    prev_group = -1
    for inst in program:
        if inst.group < 0:
            out.append(Diagnostic(
                dc.GRP003, "instruction has no issue-group ordinal in a "
                "grouped program", inst.index))
            return
        if inst.group < prev_group:
            out.append(Diagnostic(
                dc.GRP003,
                f"issue-group ordinals decrease ({prev_group} -> "
                f"{inst.group})", inst.index))
            return
        prev_group = inst.group

    # Stop bits must mark exactly the group boundaries.
    for i, inst in enumerate(program):
        boundary = (i == n - 1) or (program[i + 1].group != inst.group)
        if inst.stop != boundary:
            what = ("missing stop bit at group boundary" if boundary
                    else "stop bit inside an issue group")
            out.append(Diagnostic(dc.GRP003, what, i))

    # Branches and HALT close their group; branch targets lead a group.
    for inst in program:
        if (inst.is_branch or inst.opcode is Opcode.HALT) and not inst.stop:
            out.append(Diagnostic(
                dc.GRP003, "branch/HALT does not end its issue group",
                inst.index))
        if inst.is_branch and inst.target in program.labels:
            target = program.labels[inst.target]
            if 0 < target < n and not program[target - 1].stop:
                out.append(Diagnostic(
                    dc.GRP003,
                    f"branch target index {target} is not an issue-group "
                    f"leader", inst.index))

    # Per-group port capacity and intra-group dependences.
    tracker = ports.new_tracker()
    written: Set[int] = set()
    store_seen = False
    group = program[0].group
    for inst in program:
        if inst.group != group:
            tracker.reset()
            written = set()
            store_seen = False
            group = inst.group
        if not tracker.can_issue(inst.spec.fu):
            out.append(Diagnostic(
                dc.GRP001,
                f"group {group} exceeds port capacity at a "
                f"{inst.spec.fu.value} instruction", inst.index))
            tracker.reset()  # keep scanning from a fresh cycle
        tracker.issue(inst.spec.fu)
        reads = {r for r in inst.read_regs() if r not in HARDWIRED}
        writes = {d for d in inst.dests if d not in HARDWIRED}
        raw = reads & written
        waw = writes & written
        if raw or waw:
            kind = "RAW" if raw else "WAW"
            regs = sorted(raw or waw)
            out.append(Diagnostic(
                dc.GRP002,
                f"intra-group {kind} dependence on register(s) {regs} "
                f"in group {group}", inst.index))
        if inst.is_load and store_seen:
            out.append(Diagnostic(
                dc.GRP002,
                f"load follows a store inside group {group} "
                f"(conservative aliasing)", inst.index))
        written |= writes
        store_seen = store_seen or inst.is_store


def verify_compiled(program: Program,
                    options: Optional[VerifyOptions] = None
                    ) -> List[Diagnostic]:
    """Verify a post-compilation program, forcing issue-group checks."""
    options = options or VerifyOptions()
    return verify_program(
        program, VerifyOptions(ports=options.ports,
                               dominance_ratio=options.dominance_ratio,
                               check_groups=True,
                               check_liveness=options.check_liveness))
