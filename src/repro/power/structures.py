"""The Table 1 structure pairs: out-of-order vs multipass hardware.

Parameters are taken verbatim from the paper (Section 4 / Table 1):
32-bit data plus a NaT bit (33-bit results), 41-bit decoded instructions,
6-wide issue, 12 read / 8 write register ports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .wattch import (ArrayStructure, CacheStructure, CamStructure,
                     MatrixStructure, TechParams)

DATA_BITS = 33          # 32-bit value + NaT bit
INSTR_BITS = 41         # decoded instruction
ISSUE_WIDTH = 6
ADDR_BITS = 32


@dataclass
class StructureGroup:
    """One Table 1 row: a set of OOO structures vs a set of MP structures."""

    name: str
    ooo: List[object]
    multipass: List[object]

    def peak_ratio(self) -> float:
        """Peak (max-switching) power of OOO over multipass structures."""
        ooo_power = sum(s.peak_power() for s in self.ooo)
        mp_power = sum(s.peak_power() for s in self.multipass)
        return ooo_power / mp_power


def register_group(tech: TechParams = TechParams()) -> StructureGroup:
    """Row 1: register storage and renaming vs ARF+SRF and result store."""
    ooo = [
        ArrayStructure("ooo.regfile", entries=512, bits=DATA_BITS,
                       read_ports=12, write_ports=8, tech=tech),
        ArrayStructure("ooo.rat", entries=256, bits=9,
                       read_ports=12, write_ports=6, tech=tech),
    ]
    multipass = [
        ArrayStructure("mp.arf", entries=256, bits=DATA_BITS,
                       read_ports=12, write_ports=8, tech=tech),
        ArrayStructure("mp.srf", entries=256, bits=DATA_BITS,
                       read_ports=12, write_ports=8, tech=tech),
        ArrayStructure("mp.result_store", entries=256, bits=DATA_BITS,
                       read_ports=0, write_ports=2,
                       wide_read_ports=1, wide_write_ports=1,
                       wide_factor=ISSUE_WIDTH, banks=2, tech=tech),
    ]
    return StructureGroup("registers", ooo, multipass)


def scheduling_group(tech: TechParams = TechParams()) -> StructureGroup:
    """Row 2: wakeup matrix + issue table vs the multipass IQ."""
    ooo = [
        # Wired-OR resource dependence matrix, 128 entries x 329 bits: one
        # column drive per completing resource, one row write per dispatch.
        MatrixStructure("ooo.wakeup", entries=128, bits=329,
                        evaluate_ports=ISSUE_WIDTH,
                        update_ports=ISSUE_WIDTH, tech=tech),
        ArrayStructure("ooo.issue", entries=128, bits=19,
                       read_ports=6, write_ports=6, tech=tech),
    ]
    multipass = [
        ArrayStructure("mp.iq", entries=256, bits=INSTR_BITS,
                       read_ports=0, write_ports=0,
                       wide_read_ports=1, wide_write_ports=1,
                       wide_factor=ISSUE_WIDTH, banks=2, tech=tech),
    ]
    return StructureGroup("scheduling", ooo, multipass)


def memory_group(tech: TechParams = TechParams()) -> StructureGroup:
    """Row 3: load/store-buffer CAMs vs SMAQ + advance store cache."""
    ooo = [
        CamStructure("ooo.load_buffer", entries=48, tag_bits=ADDR_BITS,
                     search_ports=2, write_ports=2, tech=tech),
        CamStructure("ooo.store_buffer", entries=32, tag_bits=ADDR_BITS,
                     data_bits=DATA_BITS, search_ports=2, write_ports=2,
                     tech=tech),
    ]
    multipass = [
        ArrayStructure("mp.smaq", entries=128, bits=ADDR_BITS,
                       read_ports=2, write_ports=2, banks=2, tech=tech),
        CacheStructure("mp.asc", entries=64, assoc=2, data_bits=DATA_BITS,
                       read_ports=2, write_ports=2, tech=tech),
    ]
    return StructureGroup("memory-ordering", ooo, multipass)


def table1_groups(tech: TechParams = TechParams()) -> Dict[str, StructureGroup]:
    """All three Table 1 rows."""
    return {
        group.name: group
        for group in (register_group(tech), scheduling_group(tech),
                      memory_group(tech))
    }


#: Peak power ratios reported in Table 1 of the paper, for reference.
PAPER_PEAK_RATIOS = {
    "registers": 0.99,
    "scheduling": 10.28,
    "memory-ordering": 3.21,
}

#: Average (simulated, clock-gated) power ratios reported in Table 1.
PAPER_AVERAGE_RATIOS = {
    "registers": 1.20,
    "scheduling": 7.15,
    "memory-ordering": 9.79,
}
