"""Wattch-style microarchitectural energy models (paper Section 4).

Re-implementation of the component models the paper adapted from Wattch
[Brooks et al., ISCA 2000]: indexed array structures (decoders, wordlines,
bitlines, senseamps), content-addressable memories (taglines and matchlines
swept across every entry), and set-associative cache structures.  The
technology point mirrors the paper's: a 100 nm process at Vdd = 1.2 V and
2 GHz.

Two properties of the real models are preserved because Table 1's ratios
rest on them:

* power scales ~linearly with port count, plus a quadratic cell-growth
  term (extra wordlines/bitlines enlarge each cell in both dimensions);
* CAMs read out and match their entire contents on every access, costing
  far more than an indexed read of one row.

Absolute numbers are order-of-magnitude estimates only — exactly like
Wattch, the model's value is in *relative* comparisons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class TechParams:
    """Technology point (defaults: the paper's 100 nm / 1.2 V / 2 GHz)."""

    vdd: float = 1.2                 # volts
    frequency: float = 2.0e9         # hertz
    # Effective switched capacitances, loosely scaled from Wattch's
    # CACTI-derived 0.8um constants to 100nm (all in farads).
    c_wordline_per_cell: float = 1.8e-15
    c_bitline_per_cell: float = 2.2e-15
    c_cell_static: float = 0.8e-15   # sense/precharge per column
    c_decoder_per_addrbit: float = 4.0e-15
    c_tagline_per_cell: float = 2.0e-15
    c_matchline_per_bit: float = 1.6e-15
    c_comparator_per_bit: float = 3.0e-15
    #: Full-swing match/readout penalty of CAM cells relative to sensed
    #: array bitlines (CAM cells are ~2x larger and their matchlines and
    #: taglines swing rail to rail on every search).
    cam_swing_factor: float = 5.0
    #: Fraction of a structure's cell dimensions added per extra port.
    port_growth: float = 0.10
    #: Idle fraction of Wattch's linear clock-gating model ("cc3" style):
    #: a gated structure still burns this share of peak.
    clock_gate_floor: float = 0.10

    def energy(self, capacitance: float) -> float:
        """Dynamic energy (J) of switching ``capacitance`` at Vdd."""
        return 0.5 * capacitance * self.vdd * self.vdd

    def power(self, energy_per_cycle: float) -> float:
        """Average power (W) given energy consumed per cycle."""
        return energy_per_cycle * self.frequency


def _port_scale(tech: TechParams, ports: int) -> float:
    """Cell-area growth factor for a multi-ported structure.

    Each additional port adds a wordline and a bitline pair, growing the
    cell in both dimensions; wire capacitance grows with wire length, so
    per-access energy grows roughly quadratically in port count.
    """
    growth = 1.0 + tech.port_growth * max(0, ports - 1)
    return growth * growth


class ArrayStructure:
    """An indexed RAM array: register files, RATs, queues, result stores.

    ``wide_read_ports``/``wide_write_ports`` touch ``wide_factor`` entries
    per access (e.g. the multipass result store's issue-width-wide read);
    bitlines are shared across the banked sub-arrays, per Section 4.2.
    """

    def __init__(self, name: str, entries: int, bits: int,
                 read_ports: int = 1, write_ports: int = 1,
                 wide_read_ports: int = 0, wide_write_ports: int = 0,
                 wide_factor: int = 6, banks: int = 1,
                 tech: TechParams = TechParams()):
        if entries < 1 or bits < 1:
            raise ValueError(f"{name}: entries and bits must be positive")
        self.name = name
        self.entries = entries
        self.bits = bits
        self.read_ports = read_ports
        self.write_ports = write_ports
        self.wide_read_ports = wide_read_ports
        self.wide_write_ports = wide_write_ports
        self.wide_factor = wide_factor
        self.banks = banks
        self.tech = tech

    @property
    def total_ports(self) -> int:
        return (self.read_ports + self.write_ports
                + self.wide_read_ports + self.wide_write_ports)

    def _row_energy(self, rows_touched: int) -> float:
        """Energy of one port's access touching ``rows_touched`` rows."""
        tech = self.tech
        scale = _port_scale(tech, self.total_ports)
        rows_per_bank = max(1, self.entries // self.banks)
        addr_bits = max(1, math.ceil(math.log2(max(2, rows_per_bank))))
        wordline = tech.c_wordline_per_cell * self.bits * rows_touched
        bitline = (tech.c_bitline_per_cell * rows_per_bank
                   * self.bits * min(1, rows_touched))
        decoder = tech.c_decoder_per_addrbit * addr_bits
        sense = tech.c_cell_static * self.bits
        return tech.energy(scale * (wordline + bitline + decoder + sense))

    def energy_per_access(self, wide: bool = False) -> float:
        """Dynamic energy (J) of one read or write access."""
        return self._row_energy(self.wide_factor if wide else 1)

    def peak_energy_per_cycle(self) -> float:
        """All ports firing in one cycle (maximum switching activity)."""
        narrow = (self.read_ports + self.write_ports) \
            * self.energy_per_access(wide=False)
        wide = (self.wide_read_ports + self.wide_write_ports) \
            * self.energy_per_access(wide=True)
        return narrow + wide

    def peak_power(self) -> float:
        return self.tech.power(self.peak_energy_per_cycle())


class CamStructure:
    """A content-addressable memory: wakeup logic, load/store queues.

    Every search drives the tag across *all* entries and evaluates every
    matchline, which is what makes CAM-based structures so much more
    expensive than arrays of similar capacity.
    """

    def __init__(self, name: str, entries: int, tag_bits: int,
                 data_bits: int = 0, search_ports: int = 1,
                 write_ports: int = 1, tech: TechParams = TechParams()):
        if entries < 1 or tag_bits < 1:
            raise ValueError(f"{name}: entries and tag bits must be positive")
        self.name = name
        self.entries = entries
        self.tag_bits = tag_bits
        self.data_bits = data_bits
        self.search_ports = search_ports
        self.write_ports = write_ports
        self.tech = tech

    @property
    def total_ports(self) -> int:
        return self.search_ports + self.write_ports

    def search_energy(self) -> float:
        """One associative search across the full array.

        Every entry's tagline and matchline switch, and the matching
        entry's full contents are read out; the whole path swings
        rail-to-rail (``cam_swing_factor``) rather than being sensed.
        """
        tech = self.tech
        scale = _port_scale(tech, self.total_ports)
        taglines = tech.c_tagline_per_cell * self.entries * self.tag_bits
        matchlines = tech.c_matchline_per_bit * self.entries * self.tag_bits
        readout = tech.c_bitline_per_cell * self.entries * \
            (self.tag_bits + self.data_bits)
        return tech.energy(scale * tech.cam_swing_factor
                           * (taglines + matchlines + readout))

    def write_energy(self) -> float:
        tech = self.tech
        scale = _port_scale(tech, self.total_ports)
        bits = self.tag_bits + self.data_bits
        return tech.energy(scale * tech.c_wordline_per_cell * bits
                           + scale * tech.c_bitline_per_cell
                           * self.entries * bits * 0.1)

    def peak_energy_per_cycle(self) -> float:
        return (self.search_ports * self.search_energy()
                + self.write_ports * self.write_energy())

    def peak_power(self) -> float:
        return self.tech.power(self.peak_energy_per_cycle())


class MatrixStructure:
    """A wired-OR dependence matrix (Palacharla-style wakeup).

    Each completing resource drives one column across all entries; each
    entry's readiness is the wired OR of its row.  Writes update one
    ``bits``-wide row at dispatch.  Far cheaper per event than a CAM —
    which is precisely why the paper's out-of-order configuration uses it
    — but the companion issue table still dominates the comparison with
    the multipass instruction queue.
    """

    def __init__(self, name: str, entries: int, bits: int,
                 evaluate_ports: int = 6, update_ports: int = 6,
                 tech: TechParams = TechParams()):
        self.name = name
        self.entries = entries
        self.bits = bits
        self.evaluate_ports = evaluate_ports
        self.update_ports = update_ports
        self.tech = tech

    def evaluate_energy(self) -> float:
        """One wakeup event: drive a column and settle the row ORs."""
        tech = self.tech
        column = tech.c_tagline_per_cell * self.entries
        wired_or = tech.c_matchline_per_bit * self.entries
        return tech.energy(column + wired_or)

    def update_energy(self) -> float:
        """Dispatch writes one entry's resource row."""
        return self.tech.energy(self.tech.c_wordline_per_cell * self.bits)

    def peak_energy_per_cycle(self) -> float:
        return (self.evaluate_ports * self.evaluate_energy()
                + self.update_ports * self.update_energy())

    def peak_power(self) -> float:
        return self.tech.power(self.peak_energy_per_cycle())


class CacheStructure:
    """A low-associativity SRAM cache (the multipass ASC).

    Modelled as an indexed array plus per-way tag comparators — the very
    property that makes it cheaper than a fully associative store queue.
    """

    def __init__(self, name: str, entries: int, assoc: int, data_bits: int,
                 tag_bits: int = 26, read_ports: int = 1,
                 write_ports: int = 1, tech: TechParams = TechParams()):
        self.name = name
        self.assoc = assoc
        self.tech = tech
        self.tag_bits = tag_bits
        self._array = ArrayStructure(
            name + ".data", entries, data_bits + tag_bits,
            read_ports=read_ports, write_ports=write_ports, tech=tech)

    def energy_per_access(self) -> float:
        compare = self.tech.energy(
            self.assoc * self.tag_bits * self.tech.c_comparator_per_bit)
        return self._array.energy_per_access() * self.assoc / 2 + compare

    def peak_energy_per_cycle(self) -> float:
        ports = self._array.read_ports + self._array.write_ports
        return ports * self.energy_per_access()

    def peak_power(self) -> float:
        return self.tech.power(self.peak_energy_per_cycle())
