"""Execution-energy accounting: who executes each instruction how often.

The paper's Section 2 identifies re-execution as a core inefficiency of
runahead ("each instruction can consume execution energy multiple
times"), and Section 3.1.2 claims the corresponding multipass benefit
("the pipeline does not have to spend the energy to execute an
instruction whose results are available from prior advance-mode
execution").  This module quantifies both: it counts functional-unit
activations per model and converts them to energy with simple per-class
event costs.

Event accounting per model:

* in-order / OOO — every dynamic instruction executes exactly once
  (squashed wrong-path work is not modelled as executed in the
  trace-driven cores, so this is a slight under-count for OOO).
* multipass — architectural executions *plus* advance executions, minus
  the rally merges (preexecuted instructions whose rally pass reads the
  result store instead of a functional unit); data-speculative loads
  re-access the memory port at verification.
* runahead — architectural executions plus advance executions; nothing
  merges, so all advance work is pure re-execution overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..isa.opcodes import FUClass
from ..isa.trace import Trace
from ..pipeline.stats import SimStats
from .wattch import TechParams

#: Per-event energies in joules, loose 100 nm estimates.  As with the
#: rest of the Wattch-style modelling, ratios are meaningful, absolute
#: values are order-of-magnitude.
DEFAULT_EVENT_ENERGY: Dict[FUClass, float] = {
    FUClass.ALU: 8e-12,
    FUClass.MULDIV: 40e-12,
    FUClass.FP: 35e-12,
    FUClass.MEM: 25e-12,    # address generation + L1 port
    FUClass.BR: 6e-12,
    FUClass.NONE: 1e-12,
}


@dataclass
class ExecutionEnergy:
    """Execution-energy result for one model/workload run."""

    model: str
    workload: str
    fu_events: float
    energy_joules: float
    #: fu_events / dynamic instructions — 1.0 means execute-exactly-once.
    redundancy: float
    by_class: Dict[FUClass, float] = field(default_factory=dict)

    @property
    def energy_nj(self) -> float:
        return self.energy_joules * 1e9


def _class_mix(trace: Trace) -> Dict[FUClass, float]:
    """Fraction of dynamic instructions per FU class."""
    counts: Dict[FUClass, int] = {cls: 0 for cls in FUClass}
    for entry in trace.entries:
        counts[entry.fu if entry.executed else FUClass.NONE] += 1
    total = max(1, len(trace.entries))
    return {cls: n / total for cls, n in counts.items()}


def _extra_events(stats: SimStats) -> float:
    """Model-specific FU activations beyond execute-once."""
    counters = stats.counters
    advance = counters.get("advance_executions", 0)
    merges = counters.get("rally_merges", 0)
    verifications = counters.get("sbit_verifications", 0)
    # Advance executions spend energy; each merge avoids one architectural
    # re-execution; each verification re-touches the memory port.
    return advance - merges + verifications


def execution_energy(stats: SimStats, trace: Trace,
                     event_energy: Dict[FUClass, float] = None,
                     tech: TechParams = TechParams()) -> ExecutionEnergy:
    """Count FU activations for a run and price them.

    The per-class split of the model-specific extra events is
    approximated with the trace's overall class mix (advance execution
    covers the same instruction stream).
    """
    del tech  # reserved for voltage/frequency scaling extensions
    event_energy = event_energy or DEFAULT_EVENT_ENERGY
    mix = _class_mix(trace)
    n = len(trace.entries)
    extra = _extra_events(stats)

    by_class: Dict[FUClass, float] = {}
    total_events = 0.0
    total_energy = 0.0
    for cls, fraction in mix.items():
        events = fraction * (n + extra)
        by_class[cls] = events
        total_events += events
        total_energy += events * event_energy[cls]
    return ExecutionEnergy(
        model=stats.model,
        workload=stats.workload,
        fu_events=total_events,
        energy_joules=total_energy,
        redundancy=total_events / max(1, n),
        by_class=by_class,
    )


def energy_comparison(runs: Dict[str, SimStats], trace: Trace,
                      baseline: str = "inorder") -> Dict[str, float]:
    """Execution-energy overhead of each model relative to ``baseline``.

    Returns model -> energy ratio (1.0 = executes each instruction once,
    like the in-order machine).
    """
    base = execution_energy(runs[baseline], trace).energy_joules
    return {
        model: execution_energy(stats, trace).energy_joules / base
        for model, stats in runs.items()
    }
