"""Activity-based average power (the Table 1 "Average Power Ratio" column).

The paper measured average power "by incorporating the relevant Wattch
component models into the cycle-by-cycle simulator" with Wattch's linear
clock-gating model.  We do the same: each structure's average power is its
dynamic energy (accesses x energy/access over the run) plus a clock-gating
floor charged only while the structure is active — multipass-specific
structures are gated off entirely in architectural mode (Section 3.1.1),
whereas the out-of-order structures are part of every instruction's path
and are never idle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..isa.trace import Trace
from ..pipeline.stats import SimStats
from .structures import (memory_group, register_group, scheduling_group)
from .wattch import TechParams


@dataclass
class PowerBreakdown:
    """Average power per structure group for one model/workload run."""

    model: str
    workload: str
    watts: Dict[str, float]

    def total(self) -> float:
        return sum(self.watts.values())


def _operand_counts(trace: Trace):
    """Total architectural source reads and destination writes."""
    reads = sum(len(e.srcs) for e in trace.entries)
    writes = sum(len(e.dests) for e in trace.entries)
    return reads, writes


def _avg_power(tech: TechParams, peak: float, dynamic_energy: float,
               cycles: int, active_cycles: Optional[int] = None) -> float:
    """Clock-gated average power for one structure."""
    active = cycles if active_cycles is None else min(active_cycles, cycles)
    floor = tech.clock_gate_floor * peak * (active / max(1, cycles))
    return floor + tech.power(dynamic_energy / max(1, cycles))


def ooo_power(stats: SimStats, trace: Trace,
              tech: TechParams = TechParams()) -> PowerBreakdown:
    """Average power of the Table 1 out-of-order structures."""
    cycles = stats.cycles
    reads, writes = _operand_counts(trace)
    n = stats.instructions
    loads = stats.counters.get("loads_issued", 0)
    counts = trace.dynamic_counts()
    stores = counts["stores"]

    regfile, rat = register_group(tech).ooo
    wakeup, issue = scheduling_group(tech).ooo
    load_buffer, store_buffer = memory_group(tech).ooo

    watts = {
        "regfile": _avg_power(
            tech, regfile.peak_power(),
            (reads + writes) * regfile.energy_per_access(), cycles),
        "rat": _avg_power(
            tech, rat.peak_power(),
            (reads + writes) * rat.energy_per_access(), cycles),
        "wakeup": _avg_power(
            tech, wakeup.peak_power(),
            n * (wakeup.evaluate_energy() + wakeup.update_energy()),
            cycles),
        "issue": _avg_power(
            tech, issue.peak_power(),
            2 * n * issue.energy_per_access(), cycles),
        # Loads search the store buffer; stores search the load buffer.
        "load_buffer": _avg_power(
            tech, load_buffer.peak_power(),
            stores * load_buffer.search_energy()
            + loads * load_buffer.write_energy(), cycles),
        "store_buffer": _avg_power(
            tech, store_buffer.peak_power(),
            loads * store_buffer.search_energy()
            + stores * store_buffer.write_energy(), cycles),
    }
    return PowerBreakdown(stats.model, stats.workload, watts)


def multipass_power(stats: SimStats, trace: Trace,
                    tech: TechParams = TechParams()) -> PowerBreakdown:
    """Average power of the Table 1 multipass structures."""
    cycles = stats.cycles
    reads, writes = _operand_counts(trace)
    counters = stats.counters
    merges = counters.get("rally_merges", 0)
    advance_execs = counters.get("advance_executions", 0)
    merge_frac = merges / max(1, stats.instructions)
    advance_cycles = counters.get("advance_cycles", 0)
    rally_cycles = counters.get("rally_cycles", 0)
    active = advance_cycles + rally_cycles
    avg_ops = (reads + writes) / max(1, len(trace))

    arf, srf, result_store = register_group(tech).multipass
    (iq,) = scheduling_group(tech).multipass
    smaq, asc = memory_group(tech).multipass

    width = result_store.wide_factor
    watts = {
        # Merged instructions read the RS instead of the ARF, but all
        # results are still written architecturally.
        "arf": _avg_power(
            tech, arf.peak_power(),
            (reads * (1 - merge_frac) + writes)
            * arf.energy_per_access(), cycles),
        "srf": _avg_power(
            tech, srf.peak_power(),
            advance_execs * avg_ops * srf.energy_per_access(), cycles,
            active_cycles=active),
        "result_store": _avg_power(
            tech, result_store.peak_power(),
            counters.get("rs_writes", 0)
            * result_store.energy_per_access()
            + (merges / width) * result_store.energy_per_access(wide=True),
            cycles, active_cycles=active),
        "iq": _avg_power(
            tech, iq.peak_power(),
            (stats.instructions / width) * iq.energy_per_access(wide=True)
            + ((counters.get("iq_dequeues", 0)
                + counters.get("iq_peeks", 0)) / width)
            * iq.energy_per_access(wide=True), cycles),
        "smaq": _avg_power(
            tech, smaq.peak_power(),
            (counters.get("advance_loads", 0)
             + counters.get("advance_stores", 0)
             + counters.get("smaq_reads", 0))
            * smaq.energy_per_access(), cycles, active_cycles=active),
        "asc": _avg_power(
            tech, asc.peak_power(),
            (counters.get("asc_reads", 0) + counters.get("asc_writes", 0))
            * asc.energy_per_access(), cycles, active_cycles=active),
    }
    return PowerBreakdown(stats.model, stats.workload, watts)


#: Structure-name membership of each Table 1 row, for ratio reporting.
GROUP_MEMBERS = {
    "registers": {"ooo": ("regfile", "rat"),
                  "multipass": ("arf", "srf", "result_store")},
    "scheduling": {"ooo": ("wakeup", "issue"), "multipass": ("iq",)},
    "memory-ordering": {"ooo": ("load_buffer", "store_buffer"),
                        "multipass": ("smaq", "asc")},
}


def average_ratios(ooo_breakdown: PowerBreakdown,
                   mp_breakdown: PowerBreakdown) -> Dict[str, float]:
    """Per-row average-power ratios (OOO / multipass), as in Table 1."""
    ratios = {}
    for row, members in GROUP_MEMBERS.items():
        ooo_watts = sum(ooo_breakdown.watts[m] for m in members["ooo"])
        mp_watts = sum(mp_breakdown.watts[m] for m in members["multipass"])
        ratios[row] = ooo_watts / mp_watts
    return ratios
