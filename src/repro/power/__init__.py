"""Wattch-style power models and the Table 1 structure comparison."""

from .accounting import (GROUP_MEMBERS, PowerBreakdown, average_ratios,
                         multipass_power, ooo_power)
from .energy import (DEFAULT_EVENT_ENERGY, ExecutionEnergy,
                     energy_comparison, execution_energy)
from .structures import (PAPER_AVERAGE_RATIOS, PAPER_PEAK_RATIOS,
                         StructureGroup, memory_group, register_group,
                         scheduling_group, table1_groups)
from .wattch import (ArrayStructure, CacheStructure, CamStructure,
                     MatrixStructure, TechParams)

__all__ = [
    "ArrayStructure", "CacheStructure", "CamStructure", "GROUP_MEMBERS",
    "MatrixStructure", "PAPER_AVERAGE_RATIOS", "PAPER_PEAK_RATIOS",
    "PowerBreakdown", "StructureGroup", "TechParams", "average_ratios",
    "memory_group", "multipass_power", "ooo_power", "register_group",
    "scheduling_group", "table1_groups", "DEFAULT_EVENT_ENERGY",
    "ExecutionEnergy", "energy_comparison", "execution_energy",
]
