"""Result store (RS) and speculative memory address queue (SMAQ).

The result store preserves valid advance-execution results across advance
passes and into rally mode (paper Section 3.1.2).  Entries correspond 1:1
with instruction-queue slots; here they are keyed by dynamic trace sequence
number, with the owning core enforcing the queue-capacity window.  An entry
is *done* (its E-bit set) once its ``ready`` cycle has passed — loads that
miss the L1 write their RS entry when the fill returns, so a later pass or
rally can consume the value even though no speculative-register-file write
occurred (the Section 3.5 WAW rule).

Memory instructions record their effective address, standing in for their
SMAQ entry: rally-mode reprocessing uses it to re-perform the access
without re-reading address operands.  Data-speculative loads additionally
carry the value observed during advance execution (S-bit set) for
value-based verification (Section 3.6).
"""

from __future__ import annotations

from typing import Dict, Optional


class RSEntry:
    """One preserved result."""

    __slots__ = ("seq", "ready", "sbit", "value", "addr", "is_store",
                 "resolved_branch")

    def __init__(self, seq: int, ready: int, sbit: bool = False,
                 value: object = None, addr: Optional[int] = None,
                 is_store: bool = False, resolved_branch: bool = False):
        self.seq = seq
        self.ready = ready
        self.sbit = sbit
        self.value = value
        self.addr = addr
        self.is_store = is_store
        self.resolved_branch = resolved_branch

    def done(self, now: int) -> bool:
        """E-bit view: the preserved result is available at ``now``."""
        return self.ready <= now


class ResultStore:
    """Sequence-indexed store of preserved advance results.

    Under ``checked=True`` (the ``--check`` flag) structural invariants
    are enforced on every write: entries are keyed by their own sequence
    number and the store never exceeds its instruction-queue capacity.
    """

    def __init__(self, capacity: int = 256, checked: bool = False):
        self.capacity = capacity
        self.checked = checked
        self._entries: Dict[int, RSEntry] = {}
        self.writes = 0
        self.reads = 0
        self.merges = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, seq: int) -> bool:
        return seq in self._entries

    def put(self, entry: RSEntry) -> None:
        """Record a preserved result (overwrites a previous pass's entry)."""
        self.writes += 1
        self._entries[entry.seq] = entry
        if self.checked and len(self._entries) > self.capacity:
            from ..analysis.diagnostics import InvariantError
            raise InvariantError(
                f"result store overflowed its capacity of {self.capacity} "
                f"entries (seq {entry.seq})")

    def get(self, seq: int) -> Optional[RSEntry]:
        entry = self._entries.get(seq)
        if entry is not None:
            self.reads += 1
        return entry

    def peek(self, seq: int) -> Optional[RSEntry]:
        """Like :meth:`get` without counting a read (for bookkeeping)."""
        return self._entries.get(seq)

    def pop(self, seq: int) -> Optional[RSEntry]:
        """Consume an entry as its instruction commits in rally mode."""
        entry = self._entries.pop(seq, None)
        if entry is not None:
            self.merges += 1
        return entry

    def discard(self, seq: int) -> None:
        self._entries.pop(seq, None)

    def clear_from(self, seq: int) -> int:
        """Invalidate all entries at or beyond ``seq`` (flush); count them."""
        stale = [s for s in self._entries if s >= seq]
        for s in stale:
            del self._entries[s]
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()

    def max_seq(self) -> int:
        """Highest preserved sequence number, or -1 when empty."""
        return max(self._entries, default=-1)
