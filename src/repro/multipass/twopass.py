"""Flea-flicker *two-pass* pipelining — the MICRO-36 (2003) predecessor.

The paper situates multipass against its own earlier design:

    "A previous approach, flea-flicker two-pass pipelining [2], also
    reused preexecution results, but required replication of the
    execution pipelines and did not support the restart of advance
    execution."

Behaviourally, two-pass is multipass with result persistence and
regrouping but with exactly one advance pass per stall (no advance
restart, neither compiler- nor hardware-initiated).  The replicated
B-pipeline is a complexity/power property rather than a timing one at
this model's fidelity, so the timing model is the restart-less multipass
core; its cost shows up in the power comparison instead (a second set of
execution resources, not modelled as cheaper).
"""

from __future__ import annotations

from typing import Optional

from ..isa.trace import Trace
from ..machine import MachineConfig
from ..pipeline.stats import SimStats
from .core import MultipassCore


class TwoPassCore(MultipassCore):
    """Persistent preexecution without advance restart."""

    model_name = "twopass"

    def __init__(self, trace: Trace,
                 config: Optional[MachineConfig] = None,
                 check: bool = False, tracer=None, slow: bool = False):
        super().__init__(trace, config, enable_regroup=True,
                         enable_restart=False, persist_results=True,
                         hardware_restart=False, check=check,
                         tracer=tracer, slow=slow)


def simulate_twopass(trace: Trace,
                     config: Optional[MachineConfig] = None) -> SimStats:
    """Run the two-pass (MICRO-36) flea-flicker model over ``trace``."""
    return TwoPassCore(trace, config).run()
