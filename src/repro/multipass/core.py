"""The multipass pipeline (paper Sections 3.1–3.6).

One physical in-order pipeline operating in three modes:

* **architectural** — conventional in-order issue; multipass structures
  are clock gated.
* **advance** — triggered when an architectural instruction stalls on an
  unready load result.  Subsequent instructions are released speculatively
  via the PEEK pointer: instructions with valid operands execute (their
  results preserved in the result store and speculative register file),
  instructions with invalid operands are suppressed and poison their
  consumers, loads prefetch and — when they miss the L1 — defer their
  consumers to a later pass (the Section 3.5 WAW rule).  A compiler-placed
  ``RESTART`` whose operand is unready rewinds the pass to the trigger.
* **rally** — entered when the triggering operand arrives: the
  architectural stream re-issues, merging preserved results (issue
  regrouping packs them densely), re-performing data-speculative loads
  with value-based verification, and falling back to advance mode when it
  stalls on another unready load.  When the DEQ pointer catches the
  farthest PEEK point the pipeline returns to architectural mode.

Ablation flags reproduce Figure 8 (``enable_regroup``/``enable_restart``),
and disabling result persistence (``persist_results=False``) with both
ablations yields the Dundas–Mudge runahead model of Figure 1(b).
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Set

from ..isa.opcodes import FUClass, Opcode
from ..isa.trace import Trace, TraceEntry
from ..machine import MachineConfig
from ..pipeline.base import BaseCore, SimulationDiverged
from ..pipeline.stats import SimStats, StallCategory
from .asc import (HIT, HIT_INVALID, INVALID, MISS_SPECULATIVE,
                  AdvanceStoreCache)
from .result_store import ResultStore, RSEntry


class Mode(enum.Enum):
    ARCHITECTURAL = "architectural"
    ADVANCE = "advance"
    RALLY = "rally"


class MultipassCore(BaseCore):
    """Cycle-level model of the multipass pipeline."""

    model_name = "multipass"

    def __init__(self, trace: Trace, config: Optional[MachineConfig] = None,
                 enable_regroup: bool = True, enable_restart: bool = True,
                 persist_results: bool = True,
                 l1_miss_writes_srf: bool = False,
                 hardware_restart: bool = False,
                 hw_restart_window: int = 16,
                 hw_restart_fraction: float = 0.125,
                 record_modes: bool = False,
                 check: bool = False, tracer=None):
        config = config or MachineConfig()
        super().__init__(trace, config, config.multipass_queue_size,
                         check=check, tracer=tracer)
        self.enable_regroup = enable_regroup
        self.enable_restart = enable_restart
        self.persist_results = persist_results
        #: Section 3.5 ablation: the paper's design suppresses the SRF
        #: write-back of advance loads that miss the L1 (avoiding WAW
        #: hazards entirely); setting this models the more complex
        #: alternative that writes the SRF and lets in-flight consumers
        #: wait for the fill instead of deferring to a later pass.
        self.l1_miss_writes_srf = l1_miss_writes_srf
        #: Paper footnote 1: "A hardware mechanism could also have been
        #: used to detect these situations."  When enabled, a pass that
        #: has processed at least ``hw_restart_window`` non-merge slots
        #: with fewer than ``hw_restart_fraction`` of them executing —
        #: and that has an in-flight fill to wait for — restarts itself,
        #: scheduled for the earliest arriving operand.
        self.hardware_restart = hardware_restart
        self.hw_restart_window = hw_restart_window
        self.hw_restart_fraction = hw_restart_fraction
        self._pass_execs = 0
        self._pass_defers = 0
        #: Optional per-cycle mode log [(cycle, Mode, arch_ptr, adv_ptr)]
        #: for visualization (see examples/pipeline_viewer.py); off by
        #: default to keep the simulation loop lean.
        self.record_modes = record_modes
        self.mode_log = []

        self.rs = ResultStore(config.multipass_queue_size, checked=check)
        self.asc = AdvanceStoreCache(config.asc_entries, config.asc_assoc)
        # Committed memory image, used to observe the (possibly stale)
        # value a data-speculative advance load would actually read.
        self.mem_vals: Dict[int, object] = dict(trace.program.memory_image)

        self.mode = Mode.ARCHITECTURAL
        self.arch_ptr = 0            # DEQ pointer (trace sequence index)
        self.adv_ptr = 0             # PEEK pointer
        self.max_peek = 0            # farthest advance point reached
        self.trigger_seq = -1
        self.trigger_ready = 0

        # Per-pass advance state (the SRF + A/I bits and friends).
        self.adv_reg: Dict[int, int] = {}   # A-bit set -> SRF ready cycle
        self.poison: Set[int] = set()       # I-bit poisoned registers
        # Known return times for poisoned values (in-flight fills): used
        # to schedule advance restarts so the restarted instruction meets
        # its input at the REG stage (paper footnote 2).
        self.poison_ready: Dict[int, int] = {}
        self.unknown_store = False          # a deferred store's address
        self.pass_dead = False              # advance went down a wrong path
        self.adv_stall_until = 0
        self.arch_stall_until = 0

    # ------------------------------------------------------------------
    # runtime invariants (the --check flag)
    # ------------------------------------------------------------------

    def _invariant(self, cond: bool, message: str,
                   entry: Optional[TraceEntry] = None) -> None:
        """Raise ``InvariantError`` when a checked invariant fails."""
        if cond:
            return
        from ..analysis.diagnostics import InvariantError
        where = (f" at #{entry.seq} {entry.inst.render()}"
                 if entry is not None else "")
        raise InvariantError(
            f"[{self.model_name}/{self.trace.program.name}]{where}: "
            f"{message}")

    def _check_merge(self, entry: TraceEntry, rs_entry: RSEntry,
                     now: int) -> None:
        """Rally merges must consume exactly the preserved valid result."""
        self._invariant(
            rs_entry.seq == entry.seq,
            f"RS entry seq {rs_entry.seq} merged into committing seq "
            f"{entry.seq}", entry)
        self._invariant(
            rs_entry.done(now),
            f"merged RS entry not done until cycle {rs_entry.ready} "
            f"(now={now}): stale in-flight result served", entry)
        self._invariant(
            not rs_entry.sbit,
            "data-speculative RS entry merged without verification", entry)
        if entry.is_load:
            self._invariant(
                rs_entry.value == entry.value,
                f"merged load value {rs_entry.value!r} differs from "
                f"architectural value {entry.value!r}", entry)
        if rs_entry.is_store:
            self._invariant(
                rs_entry.addr == entry.addr,
                f"merged store address {rs_entry.addr!r} differs from "
                f"architectural address {entry.addr!r}", entry)

    # ------------------------------------------------------------------
    # mode transitions
    # ------------------------------------------------------------------

    def _enter_advance(self, trigger: TraceEntry, wait_until: int,
                       now: int) -> None:
        """Architectural stall on a load: start (or re-start) preexecution."""
        self.mode = Mode.ADVANCE
        self.trigger_seq = trigger.seq
        self.trigger_ready = wait_until
        self.adv_ptr = trigger.seq
        self.adv_stall_until = now + self.config.advance_entry_delay
        self._reset_pass_state()
        self.stats.counters["advance_entries"] += 1

    def _reset_pass_state(self) -> None:
        self._pass_execs = 0
        self._pass_defers = 0
        self.adv_reg.clear()
        self.poison.clear()
        self.poison_ready.clear()
        self.asc.clear()
        self.unknown_store = False
        self.pass_dead = False

    def _advance_restart(self, now: int,
                         operand_ready: Optional[int] = None) -> None:
        """Rewind the advance pass to the trigger (Section 3.3).

        When the unready operand's return time is known (an in-flight
        fill), the restarted pass is scheduled to arrive with it rather
        than spinning (paper footnote 2's PEEK-redirect refinement).
        """
        self._reset_pass_state()
        self.adv_ptr = self.trigger_seq
        refill = now + self.config.advance_restart_refill
        if operand_ready is not None:
            refill = max(refill, operand_ready
                         - self.config.advance_restart_refill)
        self.adv_stall_until = refill
        self.stats.counters["advance_restarts"] += 1
        if self.tracer.enabled:
            trigger = self.trace.entries[self.trigger_seq]
            self.tracer.restart(now, trigger.seq, trigger.inst.index)

    def _enter_rally(self, now: int) -> None:
        """The trigger operand arrived: resume the architectural stream.

        Multipass resumes instantly: the latched architectural-stream
        instructions are unlatched and displace the advance instructions
        in their stages (Section 3.1.3).  Runahead overrides this with a
        checkpoint-restore penalty.
        """
        self.mode = Mode.RALLY
        self._reset_pass_state()

    # ------------------------------------------------------------------
    # advance-mode operand resolution
    # ------------------------------------------------------------------

    def _advance_source_state(self, entry: TraceEntry, now: int):
        """Classify an advance instruction's operands.

        Returns ``(status, wait_until)`` where status is one of
        ``"ready"``, ``"wait"`` (a fixed-latency producer is in flight —
        the in-order advance stream waits for its bypass) or
        ``"invalid"`` (a poisoned or cache-missing producer: suppress).
        """
        wait_until = now
        for src in entry.srcs:
            adv_ready = self.adv_reg.get(src)
            if adv_ready is not None:          # A-bit: read the SRF value
                if adv_ready > now:
                    wait_until = max(wait_until, adv_ready)
                continue
            if src in self.poison:             # I-bit
                return "invalid", now
            arch_ready = self.reg_ready.get(src, 0)
            if arch_ready > now:
                if src in self.load_miss_pending and \
                        self.load_miss_pending[src] > now:
                    return "invalid", now      # missing load: defer
                wait_until = max(wait_until, arch_ready)
        if wait_until > now:
            return "wait", wait_until
        return "ready", now

    # ------------------------------------------------------------------
    # advance-mode issue
    # ------------------------------------------------------------------

    def _issue_advance_cycle(self, now: int) -> int:
        """Issue one advance-mode cycle; returns number of new executions."""
        if self.pass_dead or now < self.adv_stall_until:
            return 0
        entries = self.trace.entries
        frontend = self.frontend
        tel = self.tracer if self.tracer.enabled else None
        tracker = self.config.ports.new_tracker()
        window_end = min(len(entries), frontend.fetched_until,
                         self.arch_ptr + self.buffer_size)
        slots = 0
        new_execs = 0
        width = self.config.ports.width

        while self.adv_ptr < window_end and slots < width:
            entry = entries[self.adv_ptr]
            seq = entry.seq
            self.stats.counters["iq_peeks"] += 1

            rs_entry = self.rs.get(seq) if self.persist_results else None
            if rs_entry is not None:
                if rs_entry.ready > now:
                    # Result (typically a missing load from an earlier
                    # pass) still in flight: consumers stay deferred.
                    for dest in entry.dests:
                        self.poison.add(dest)
                        self.poison_ready[dest] = rs_entry.ready
                        self.adv_reg.pop(dest, None)
                    self.adv_ptr += 1
                    slots += 1
                    continue
                # Preserved result: no re-execution, breaks dependences.
                for dest in entry.dests:
                    self.adv_reg[dest] = now
                    self.poison.discard(dest)
                self.stats.counters["advance_merges"] += 1
                if tel is not None:
                    tel.rs_hit(now, seq, entry.inst.index, mode="advance")
                self.adv_ptr += 1
                slots += 1
                continue

            if entry.is_restart and self.enable_restart:
                status, _ = self._advance_source_state(entry, now)
                if status in ("invalid", "wait"):
                    hints = []
                    for src in entry.srcs:
                        if src in self.poison_ready:
                            hints.append(self.poison_ready[src])
                        elif src in self.load_miss_pending:
                            hints.append(self.load_miss_pending[src])
                    self._advance_restart(now, max(hints, default=None)
                                          if hints else None)
                    return new_execs
                self.adv_ptr += 1
                slots += 1
                continue

            status, wait_until = self._advance_source_state(entry, now)
            if status == "wait":
                break  # in-order advance stream waits for a bypass

            if status == "invalid":
                new_execs += self._defer_advance(entry, now)
                self._pass_defers += 1
                slots += 1
                if self.pass_dead:
                    break
                continue

            # Valid operands: execute speculatively.
            fu = self.issue_fu(entry)
            if not tracker.can_issue(fu):
                break
            tracker.issue(fu)
            executed = self._execute_advance(entry, now)
            new_execs += executed
            self._pass_execs += executed
            slots += 1
            if self.pass_dead:
                break
        if self.hardware_restart and not self.pass_dead:
            self._maybe_hardware_restart(now)
        return new_execs

    def _maybe_hardware_restart(self, now: int) -> None:
        """Footnote-1 mechanism: restart a fruitless pass on its own.

        Fires when the current pass is dominated by deferrals and a
        poisoned value has a known arrival time to rendezvous with;
        without an in-flight fill nothing would change, so the pass is
        left to keep prefetching instead.
        """
        processed = self._pass_execs + self._pass_defers
        if processed < self.hw_restart_window:
            return
        if self._pass_execs >= processed * self.hw_restart_fraction:
            return
        pending = [t for t in self.poison_ready.values() if t > now]
        if not pending:
            return
        self._advance_restart(now, min(pending))
        self.stats.counters["hardware_restarts"] += 1

    def _defer_advance(self, entry: TraceEntry, now: int) -> int:
        """Suppress an advance instruction with invalid operands."""
        self.stats.counters["advance_deferrals"] += 1
        for dest in entry.dests:
            self.poison.add(dest)
            self.adv_reg.pop(dest, None)
        inst = entry.inst
        if inst.is_branch:
            # Direction unknown: follow the prediction.  When it disagrees
            # with the actual outcome the advance stream has gone down the
            # wrong path and the rest of this pass is unproductive.
            if not self.predictor.peek_correct(inst.index, entry.taken):
                self.pass_dead = True
                self.stats.counters["advance_wrong_path"] += 1
        elif entry.is_store:
            data_reg, base_reg = inst.srcs[0], inst.srcs[1]
            if self._advance_reg_invalid(base_reg, now) or \
                    (entry.addr is None):
                self.unknown_store = True
                self.stats.counters["unknown_address_stores"] += 1
            elif self._advance_reg_invalid(data_reg, now):
                self.asc.write(entry.addr, INVALID)
        self.adv_ptr += 1
        return 0

    def _advance_reg_invalid(self, reg: int, now: int) -> bool:
        if reg in self.adv_reg:
            return False
        if reg in self.poison:
            return True
        return (self.reg_ready.get(reg, 0) > now
                and reg in self.load_miss_pending
                and self.load_miss_pending[reg] > now)

    def _execute_advance(self, entry: TraceEntry, now: int) -> int:
        """Execute one valid advance instruction; returns 1 if it counts
        as a new execution."""
        inst = entry.inst
        seq = entry.seq
        self.stats.counters["advance_executions"] += 1
        if self.tracer.enabled:
            self.tracer.issue(now, seq, inst.index, mode="advance")

        if not entry.executed:
            # Predicate-nullified: flows through, nothing to preserve.
            if self.persist_results:
                self.rs.put(RSEntry(seq, now + 1,
                                    resolved_branch=entry.is_branch))
            if entry.is_branch:
                self._resolve_advance_branch(entry, now)
            self.adv_ptr += 1
            return 1

        if inst.is_branch:
            self._resolve_advance_branch(entry, now)
            if self.persist_results:
                self.rs.put(RSEntry(seq, now + 1, resolved_branch=True))
            self.adv_ptr += 1
            return 1

        if entry.is_store:
            self.asc.write(entry.addr, entry.value)
            self.stats.counters["advance_stores"] += 1
            if self.persist_results:
                self.rs.put(RSEntry(seq, now + 1, addr=entry.addr,
                                    is_store=True))
            self.adv_ptr += 1
            return 1

        if entry.is_load:
            self._execute_advance_load(entry, now)
            self.adv_ptr += 1
            return 1

        # ALU / FP / mul-div / nop.
        latency = inst.spec.latency
        for dest in entry.dests:
            self.adv_reg[dest] = now + latency
            self.poison.discard(dest)
            self.poison_ready.pop(dest, None)
        if self.persist_results and (entry.dests or inst.opcode is
                                     Opcode.NOP):
            self.rs.put(RSEntry(seq, now + latency))
        self.adv_ptr += 1
        return 1

    def _resolve_advance_branch(self, entry: TraceEntry, now: int) -> None:
        """A branch with valid operands resolves during preexecution.

        The predictor is trained early; if it would have mispredicted, the
        *advance* stream pays the redirect penalty now and the
        architectural stream later merges the resolved branch with no
        flush — the source of multipass front-end-stall reduction.
        """
        correct = self.predictor.update(entry.inst.index,
                                        entry.taken and entry.executed)
        self.stats.counters["advance_branches"] += 1
        if not correct:
            self.adv_stall_until = max(
                self.adv_stall_until,
                now + self.config.mispredict_penalty)
            self.stats.counters["advance_redirects"] += 1

    def _execute_advance_load(self, entry: TraceEntry, now: int) -> None:
        """Advance load: ASC forwarding, prefetch, WAW rule, S-bits."""
        addr = entry.addr
        outcome, _forwarded = self.asc.read(addr)
        result = self.hierarchy.access(addr, now)   # prefetch effect
        self.stats.counters["advance_loads"] += 1
        if result.l1_miss and self.tracer.enabled:
            self.tracer.cache_miss(now, entry.seq, entry.inst.index,
                                   result.level)

        if outcome == HIT:
            for dest in entry.dests:
                self.adv_reg[dest] = now + 1
                self.poison.discard(dest)
                self.poison_ready.pop(dest, None)
            if self.persist_results:
                self.rs.put(RSEntry(entry.seq, now + 1, value=entry.value,
                                    addr=addr))
            self.stats.counters["asc_forwards"] += 1
            return
        if outcome == HIT_INVALID:
            for dest in entry.dests:
                self.poison.add(dest)
                self.adv_reg.pop(dest, None)
            return

        data_speculative = self.unknown_store or outcome == MISS_SPECULATIVE
        observed = (self.mem_vals.get(addr, 0) if data_speculative
                    else entry.value)
        l1_hit = not result.l1_miss
        if self.persist_results:
            self.rs.put(RSEntry(entry.seq, result.ready,
                                sbit=data_speculative, value=observed,
                                addr=addr))
        if data_speculative:
            self.stats.counters["sbit_loads"] += 1
        if l1_hit:
            for dest in entry.dests:
                self.adv_reg[dest] = result.ready
                self.poison.discard(dest)
                self.poison_ready.pop(dest, None)
        elif self.l1_miss_writes_srf:
            # Ablation of the Section 3.5 WAW rule: expose the fill time
            # through the SRF so in-flight consumers wait for the bypass.
            self.stats.counters["advance_load_misses"] += 1
            for dest in entry.dests:
                self.adv_reg[dest] = result.ready
                self.poison.discard(dest)
                self.poison_ready.pop(dest, None)
        else:
            # Section 3.5: L1-missing advance loads do not write the SRF;
            # consumers defer to a later pass (the RS catches the fill).
            self.stats.counters["advance_load_misses"] += 1
            for dest in entry.dests:
                self.poison.add(dest)
                self.poison_ready[dest] = result.ready
                self.adv_reg.pop(dest, None)

    # ------------------------------------------------------------------
    # architectural / rally issue
    # ------------------------------------------------------------------

    def _issue_arch_cycle(self, now: int):
        """Issue one architectural/rally cycle.

        Returns ``(issued, reason, wait_until, trigger_entry)``; a non-None
        trigger entry means the cycle ended on a load stall and advance
        mode should begin.
        """
        entries = self.trace.entries
        frontend = self.frontend
        tel = self.tracer if self.tracer.enabled else None
        tracker = self.config.ports.new_tracker()
        width = self.config.ports.width
        issued = 0
        reason = None
        wait_until = now + 1
        trigger = None
        rallying = self.arch_ptr < self.max_peek
        dynamic_groups = self.enable_regroup and rallying

        while self.arch_ptr < frontend.fetched_until and issued < width:
            entry = entries[self.arch_ptr]
            inst = entry.inst
            seq = entry.seq
            self.stats.counters["iq_dequeues"] += 1

            rs_entry = self.rs.peek(seq) if self.persist_results else None
            if rs_entry is not None and rs_entry.done(now) \
                    and not rs_entry.sbit:
                self._merge_committed(entry, rs_entry, now)
                issued += 1
                self.arch_ptr += 1
                if not dynamic_groups and inst.stop:
                    break
                continue

            if rs_entry is not None and rs_entry.done(now) and rs_entry.sbit:
                if not tracker.can_issue(FUClass.MEM):
                    reason = StallCategory.OTHER
                    break
                tracker.issue(FUClass.MEM)
                flushed = self._verify_speculative_load(entry, rs_entry,
                                                        now)
                issued += 1
                self.arch_ptr += 1
                if flushed:
                    reason = StallCategory.OTHER
                    wait_until = self.arch_stall_until
                    break
                if not dynamic_groups and inst.stop:
                    break
                continue

            if rs_entry is not None and not rs_entry.done(now):
                # Preserved result still in flight (missing load from an
                # earlier pass): the rally stream stalls on it without
                # re-executing, and the stall re-triggers advance mode so
                # preexecution continues beyond it.
                reason = StallCategory.LOAD
                wait_until = rs_entry.ready
                trigger = entry
                break

            # Normal in-order execution.
            fu = self.issue_fu(entry)
            if not tracker.can_issue(fu):
                reason = StallCategory.OTHER
                break
            unready = self.unready_sources(entry, now)
            if unready:
                reason, wait_until = self.classify_wait(unready, now)
                if reason is StallCategory.LOAD:
                    trigger = entry
                break

            latency = inst.spec.latency
            l1_miss = False
            if entry.executed and inst.is_mem:
                if entry.is_load:
                    result = self.hierarchy.access(entry.addr, now)
                    latency = result.latency
                    l1_miss = result.l1_miss
                    self.stats.counters["loads_issued"] += 1
                    if l1_miss:
                        self.stats.counters["l1d_load_misses"] += 1
                        if tel is not None:
                            tel.cache_miss(now, seq, inst.index,
                                           result.level)
                else:
                    self.hierarchy.access(entry.addr, now, kind="store")
                    self.mem_vals[entry.addr] = entry.value

            waw = [d for d in entry.dests
                   if self.reg_ready.get(d, 0) > now + latency]
            if waw:
                reason, wait_until = self.classify_wait(waw, now)
                self.stats.counters["waw_stalls"] += 1
                break

            tracker.issue(fu)
            self.writeback(entry, now, latency, l1_miss)
            self.stats.instructions += 1
            if tel is not None:
                tel.issue(now, seq, inst.index)
            self.commit_entry(entry, now)
            issued += 1
            self.arch_ptr += 1
            if entry.is_branch:
                if frontend.resolve_branch(entry, now):
                    self.stats.counters["mispredicts"] += 1
                    self.rs.clear_from(seq + 1)
                    self.max_peek = min(self.max_peek, seq + 1)
                    if self.check:
                        self._invariant(
                            self.rs.max_seq() <= seq,
                            "RS retains entries younger than a mispredict "
                            "flush", entry)
                    break
            if inst.stop and not dynamic_groups:
                break
        return issued, reason, wait_until, trigger

    def _merge_committed(self, entry: TraceEntry, rs_entry: RSEntry,
                         now: int) -> None:
        """Commit a preserved result without re-execution."""
        if self.check:
            self._check_merge(entry, rs_entry, now)
        self.rs.pop(entry.seq)
        self.stats.counters["rally_merges"] += 1
        self.stats.instructions += 1
        if self.tracer.enabled:
            self.tracer.rs_hit(now, entry.seq, entry.inst.index,
                               mode="rally")
        self.commit_entry(entry, now)
        for dest in entry.dests:
            self.reg_ready[dest] = now
            self.load_miss_pending.pop(dest, None)
        if rs_entry.is_store:
            # Pre-executed stores re-perform their access in rally mode
            # using the SMAQ address (Section 3.6).
            self.hierarchy.access(rs_entry.addr, now, kind="store")
            self.mem_vals[rs_entry.addr] = entry.value
            self.stats.counters["smaq_reads"] += 1
        if entry.is_branch:
            self.frontend.resolve_branch(entry, now, already_resolved=True)

    def _verify_speculative_load(self, entry: TraceEntry,
                                 rs_entry: RSEntry, now: int) -> bool:
        """Re-perform a data-speculative load; flush on value mismatch."""
        if self.check:
            self._invariant(
                rs_entry.sbit,
                "speculative-load verification of a non-S-bit RS entry",
                entry)
            self._invariant(
                rs_entry.seq == entry.seq,
                f"RS entry seq {rs_entry.seq} served for committing seq "
                f"{entry.seq}", entry)
        self.rs.pop(entry.seq)
        self.stats.counters["sbit_verifications"] += 1
        self.stats.counters["smaq_reads"] += 1
        result = self.hierarchy.access(rs_entry.addr, now)
        if result.l1_miss and self.tracer.enabled:
            self.tracer.cache_miss(now, entry.seq, entry.inst.index,
                                   result.level)
        if rs_entry.value == entry.value:
            self.stats.instructions += 1
            self.commit_entry(entry, now)
            self.writeback(entry, now, result.latency, result.l1_miss)
            return False
        # Mismatch: squash everything younger and re-execute it.
        self.stats.counters["value_flushes"] += 1
        self.stats.instructions += 1
        self.commit_entry(entry, now)
        self.writeback(entry, now, result.latency, result.l1_miss)
        self.rs.clear_from(entry.seq + 1)
        self.max_peek = min(self.max_peek, entry.seq + 1)
        self.arch_stall_until = now + self.config.flush_penalty
        if self.check:
            self._invariant(
                self.rs.max_seq() <= entry.seq,
                "RS retains entries younger than a value flush", entry)
        return True

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self, max_cycles: int = 500_000_000) -> SimStats:
        entries = self.trace.entries
        n = len(entries)
        frontend = self.frontend
        tel = self.tracer if self.tracer.enabled else None
        now = 0

        while self.arch_ptr < n:
            if now > max_cycles:
                raise SimulationDiverged(
                    f"multipass exceeded {max_cycles} cycles on "
                    f"{self.trace.program.name}"
                )
            frontend.tick(now, self.arch_ptr)

            if self.mode is Mode.ADVANCE and now >= self.trigger_ready:
                self._enter_rally(now)
            if self.record_modes:
                self.mode_log.append((now, self.mode, self.arch_ptr,
                                      self.adv_ptr))
            if tel is not None:
                tel.mode(now, self.mode.value)

            if self.mode is Mode.ADVANCE:
                new_execs = self._issue_advance_cycle(now)
                if self.check:
                    self._invariant(
                        self.adv_ptr >= self.arch_ptr,
                        f"advance pointer {self.adv_ptr} fell behind "
                        f"architectural pointer {self.arch_ptr}")
                self.max_peek = max(self.max_peek, self.adv_ptr)
                if new_execs:
                    self.stats.charge(StallCategory.EXECUTION)
                    if tel is not None:
                        tel.charge(now, StallCategory.EXECUTION)
                else:
                    # No new executions: the cycle belongs to the latency
                    # that initiated advance mode.
                    self.stats.charge(StallCategory.LOAD)
                    if tel is not None:
                        # Attributed to the load that triggered advance
                        # mode — the same charging rule as the stats.
                        trig = entries[self.trigger_seq]
                        tel.charge(now, StallCategory.LOAD,
                                   seq=trig.seq, pc=trig.inst.index)
                self.stats.counters["advance_cycles"] += 1
                now += 1
                continue

            if now < self.arch_stall_until:
                self.stats.charge(StallCategory.OTHER)
                if tel is not None:
                    tel.charge(now, StallCategory.OTHER)
                now += 1
                continue

            issued, reason, wait_until, trigger = self._issue_arch_cycle(now)
            if self.mode is Mode.RALLY:
                self.stats.counters["rally_cycles"] += 1
                if self.arch_ptr >= self.max_peek and \
                        self.rs.max_seq() < self.arch_ptr:
                    self.mode = Mode.ARCHITECTURAL

            if issued:
                self.stats.charge(StallCategory.EXECUTION)
                if tel is not None:
                    tel.charge(now, StallCategory.EXECUTION)
            elif self.arch_ptr >= frontend.fetched_until:
                self.stats.charge(StallCategory.FRONT_END)
                if tel is not None:
                    blocked = entries[self.arch_ptr] \
                        if self.arch_ptr < n else None
                    tel.charge(now, StallCategory.FRONT_END,
                               seq=blocked.seq if blocked else -1,
                               pc=blocked.inst.index if blocked else -1)
            else:
                self.stats.charge(reason or StallCategory.OTHER)
                if tel is not None:
                    blocked = entries[self.arch_ptr]
                    tel.charge(now, reason or StallCategory.OTHER,
                               seq=blocked.seq, pc=blocked.inst.index)
            now += 1

            if trigger is not None and wait_until > now:
                self._enter_advance(trigger, wait_until, now)

        return self.finalize()

    def finalize(self) -> SimStats:
        stats = super().finalize()
        stats.counters["rs_writes"] = self.rs.writes
        stats.counters["rs_reads"] = self.rs.reads
        stats.counters["asc_writes"] = self.asc.writes
        stats.counters["asc_reads"] = self.asc.reads
        return stats


def simulate_multipass(trace: Trace,
                       config: Optional[MachineConfig] = None,
                       enable_regroup: bool = True,
                       enable_restart: bool = True) -> SimStats:
    """Run the multipass model over ``trace``."""
    return MultipassCore(trace, config, enable_regroup=enable_regroup,
                         enable_restart=enable_restart).run()
