"""The multipass pipeline (paper Sections 3.1–3.6).

One physical in-order pipeline operating in three modes:

* **architectural** — conventional in-order issue; multipass structures
  are clock gated.
* **advance** — triggered when an architectural instruction stalls on an
  unready load result.  Subsequent instructions are released speculatively
  via the PEEK pointer: instructions with valid operands execute (their
  results preserved in the result store and speculative register file),
  instructions with invalid operands are suppressed and poison their
  consumers, loads prefetch and — when they miss the L1 — defer their
  consumers to a later pass (the Section 3.5 WAW rule).  A compiler-placed
  ``RESTART`` whose operand is unready rewinds the pass to the trigger.
* **rally** — entered when the triggering operand arrives: the
  architectural stream re-issues, merging preserved results (issue
  regrouping packs them densely), re-performing data-speculative loads
  with value-based verification, and falling back to advance mode when it
  stalls on another unready load.  When the DEQ pointer catches the
  farthest PEEK point the pipeline returns to architectural mode.

Ablation flags reproduce Figure 8 (``enable_regroup``/``enable_restart``),
and disabling result persistence (``persist_results=False``) with both
ablations yields the Dundas–Mudge runahead model of Figure 1(b).

The simulation loop has a fast path (see
:meth:`~repro.pipeline.base.BaseCore.next_event_cycle`): cycles that are
provably pure polls — nothing can change before a known wake-up cycle —
are charged as one span with the per-cycle poll counters replicated, so
stats stay bit-identical to the cycle-by-cycle loop.  ``slow=True``
disables the skips; tracing and ``record_modes`` also force the per-cycle
loop because they observe every cycle.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from ..isa.columns import columns_of
from ..isa.opcodes import Opcode
from ..isa.registers import NUM_REGS
from ..isa.trace import Trace, TraceEntry
from ..machine import MachineConfig
from ..pipeline.base import BaseCore
from ..pipeline.stats import SimStats, StallCategory
from .asc import (HIT, HIT_INVALID, INVALID, MISS_SPECULATIVE,
                  AdvanceStoreCache)
from .columnar import run_columnar
from .result_store import ResultStore, RSEntry

#: "No internal event": a fast-forward hint meaning the issue logic found
#: nothing that could change on its own — the skip is bounded only by the
#: mode deadline (``trigger_ready``) and the front end.
_INF = 1 << 62


class Mode(enum.Enum):
    ARCHITECTURAL = "architectural"
    ADVANCE = "advance"
    RALLY = "rally"


class MultipassCore(BaseCore):
    """Cycle-level model of the multipass pipeline."""

    model_name = "multipass"

    def __init__(self, trace: Trace, config: Optional[MachineConfig] = None,
                 enable_regroup: bool = True, enable_restart: bool = True,
                 persist_results: bool = True,
                 l1_miss_writes_srf: bool = False,
                 hardware_restart: bool = False,
                 hw_restart_window: int = 16,
                 hw_restart_fraction: float = 0.125,
                 record_modes: bool = False,
                 check: bool = False, tracer=None, slow: bool = False):
        config = config or MachineConfig()
        super().__init__(trace, config, config.multipass_queue_size,
                         check=check, tracer=tracer, slow=slow)
        self.enable_regroup = enable_regroup
        self.enable_restart = enable_restart
        self.persist_results = persist_results
        #: Section 3.5 ablation: the paper's design suppresses the SRF
        #: write-back of advance loads that miss the L1 (avoiding WAW
        #: hazards entirely); setting this models the more complex
        #: alternative that writes the SRF and lets in-flight consumers
        #: wait for the fill instead of deferring to a later pass.
        self.l1_miss_writes_srf = l1_miss_writes_srf
        #: Paper footnote 1: "A hardware mechanism could also have been
        #: used to detect these situations."  When enabled, a pass that
        #: has processed at least ``hw_restart_window`` non-merge slots
        #: with fewer than ``hw_restart_fraction`` of them executing —
        #: and that has an in-flight fill to wait for — restarts itself,
        #: scheduled for the earliest arriving operand.
        self.hardware_restart = hardware_restart
        self.hw_restart_window = hw_restart_window
        self.hw_restart_fraction = hw_restart_fraction
        self._pass_execs = 0
        self._pass_defers = 0
        #: Optional per-cycle mode log [(cycle, Mode, arch_ptr, adv_ptr)]
        #: for visualization (see examples/pipeline_viewer.py); off by
        #: default to keep the simulation loop lean.
        self.record_modes = record_modes
        self.mode_log = []
        #: Runahead's checkpoint-restore penalty on rally entry (paper
        #: Section 3.1.3): a column-level flag rather than a subclass
        #: hook so the columnar kernel inherits it the same way it
        #: inherits persistence/restart/regrouping.
        self.rally_exit_refill = False

        self.rs = ResultStore(config.multipass_queue_size, checked=check)
        self.asc = AdvanceStoreCache(config.asc_entries, config.asc_assoc)
        # Committed memory image, used to observe the (possibly stale)
        # value a data-speculative advance load would actually read.
        self.mem_vals: Dict[int, object] = dict(trace.program.memory_image)

        self.mode = Mode.ARCHITECTURAL
        self.arch_ptr = 0            # DEQ pointer (trace sequence index)
        self.adv_ptr = 0             # PEEK pointer
        self.max_peek = 0            # farthest advance point reached
        self.trigger_seq = -1
        self.trigger_ready = 0

        # Per-pass advance state (the SRF + A/I bits and friends), kept
        # as epoch-stamped flat columns indexed by register: a stamp
        # equal to the current epoch means "set this pass".  A pass
        # reset is then a single epoch bump instead of clearing three
        # containers, and the advance hot loop indexes preallocated
        # lists instead of hashing dict/set keys.
        self._srf_epoch = 1
        self._srf_stamp = [0] * NUM_REGS     # A-bit (SRF value present)
        self._srf_ready = [0] * NUM_REGS     # SRF value ready cycle
        self._poison_stamp = [0] * NUM_REGS  # I-bit
        # Known return times for poisoned values (in-flight fills): used
        # to schedule advance restarts so the restarted instruction meets
        # its input at the REG stage (paper footnote 2).  Deliberately a
        # separate lifetime from the I-bit: clearing the poison bit does
        # not forget the hint (the dict-based model it replaces kept
        # stale hints visible to the hardware-restart scan).
        self._pready_stamp = [0] * NUM_REGS
        self._pready_val = [0] * NUM_REGS
        self.unknown_store = False          # a deferred store's address
        self.pass_dead = False              # advance went down a wrong path
        self.adv_stall_until = 0
        self.arch_stall_until = 0
        # Decoded-trace cache handle (shared read-only with other cores
        # replaying the same trace).
        self._dec = trace.decoded
        # Small-int port class per seq for the inlined issue-port
        # counters in both issue loops (shared column, built once per
        # trace).
        self._port_code = columns_of(self._dec).port_code

    # ------------------------------------------------------------------
    # runtime invariants (the --check flag)
    # ------------------------------------------------------------------

    def _invariant(self, cond: bool, message: str,
                   entry: Optional[TraceEntry] = None) -> None:
        """Raise ``InvariantError`` when a checked invariant fails."""
        if cond:
            return
        from ..analysis.diagnostics import InvariantError
        where = (f" at #{entry.seq} {entry.inst.render()}"
                 if entry is not None else "")
        raise InvariantError(
            f"[{self.model_name}/{self.trace.program.name}]{where}: "
            f"{message}")

    def _check_merge(self, entry: TraceEntry, rs_entry: RSEntry,
                     now: int) -> None:
        """Rally merges must consume exactly the preserved valid result."""
        self._invariant(
            rs_entry.seq == entry.seq,
            f"RS entry seq {rs_entry.seq} merged into committing seq "
            f"{entry.seq}", entry)
        self._invariant(
            rs_entry.done(now),
            f"merged RS entry not done until cycle {rs_entry.ready} "
            f"(now={now}): stale in-flight result served", entry)
        self._invariant(
            not rs_entry.sbit,
            "data-speculative RS entry merged without verification", entry)
        if entry.is_load:
            self._invariant(
                rs_entry.value == entry.value,
                f"merged load value {rs_entry.value!r} differs from "
                f"architectural value {entry.value!r}", entry)
        if rs_entry.is_store:
            self._invariant(
                rs_entry.addr == entry.addr,
                f"merged store address {rs_entry.addr!r} differs from "
                f"architectural address {entry.addr!r}", entry)

    # ------------------------------------------------------------------
    # mode transitions
    # ------------------------------------------------------------------

    def _enter_advance(self, trigger: TraceEntry, wait_until: int,
                       now: int) -> None:
        """Architectural stall on a load: start (or re-start) preexecution."""
        self.mode = Mode.ADVANCE
        self.trigger_seq = trigger.seq
        self.trigger_ready = wait_until
        self.adv_ptr = trigger.seq
        self.adv_stall_until = now + self.config.advance_entry_delay
        self._reset_pass_state()
        self.stats.counters["advance_entries"] += 1

    def _reset_pass_state(self) -> None:
        self._pass_execs = 0
        self._pass_defers = 0
        # O(1) wipe of the SRF/poison columns: old stamps never match
        # the new epoch (the counter only grows).
        self._srf_epoch += 1
        self.asc.clear()
        self.unknown_store = False
        self.pass_dead = False

    def _advance_restart(self, now: int,
                         operand_ready: Optional[int] = None) -> None:
        """Rewind the advance pass to the trigger (Section 3.3).

        When the unready operand's return time is known (an in-flight
        fill), the restarted pass is scheduled to arrive with it rather
        than spinning (paper footnote 2's PEEK-redirect refinement).
        """
        self._reset_pass_state()
        self.adv_ptr = self.trigger_seq
        refill = now + self.config.advance_restart_refill
        if operand_ready is not None:
            refill = max(refill, operand_ready
                         - self.config.advance_restart_refill)
        self.adv_stall_until = refill
        self.stats.counters["advance_restarts"] += 1
        if self.tracer.enabled:
            trigger = self.trace.entries[self.trigger_seq]
            self.tracer.restart(now, trigger.seq, trigger.inst.index)

    def _enter_rally(self, now: int) -> None:
        """The trigger operand arrived: resume the architectural stream.

        Multipass resumes instantly: the latched architectural-stream
        instructions are unlatched and displace the advance instructions
        in their stages (Section 3.1.3).  Runahead instead pays a
        checkpoint-restore refill (``rally_exit_refill``): it restores
        the checkpointed state and refetches from the stalled
        instruction.
        """
        self.mode = Mode.RALLY
        self._reset_pass_state()
        if self.rally_exit_refill:
            self.arch_stall_until = max(
                self.arch_stall_until, now + self.config.mispredict_penalty)
            self.stats.counters["runahead_exit_refills"] += 1

    # ------------------------------------------------------------------
    # advance-mode operand resolution
    # ------------------------------------------------------------------

    def _advance_source_state(self, srcs, now: int):
        """Classify an advance instruction's operands.

        Returns ``(status, wait_until)`` where status is one of
        ``"ready"``, ``"wait"`` (a fixed-latency producer is in flight —
        the in-order advance stream waits for its bypass) or
        ``"invalid"`` (a poisoned or cache-missing producer: suppress).
        """
        wait_until = now
        epoch = self._srf_epoch
        srf_stamp = self._srf_stamp
        srf_ready = self._srf_ready
        poison_stamp = self._poison_stamp
        reg_ready = self.reg_ready
        pending = self.load_miss_pending
        for src in srcs:
            if srf_stamp[src] == epoch:        # A-bit: read the SRF value
                adv_ready = srf_ready[src]
                if adv_ready > wait_until:
                    wait_until = adv_ready
                continue
            if poison_stamp[src] == epoch:     # I-bit
                return "invalid", now
            arch_ready = reg_ready[src]
            if arch_ready > now:
                if pending[src] > now:
                    return "invalid", now      # missing load: defer
                if arch_ready > wait_until:
                    wait_until = arch_ready
        if wait_until > now:
            return "wait", wait_until
        return "ready", now

    # ------------------------------------------------------------------
    # advance-mode issue
    # ------------------------------------------------------------------

    def _issue_advance_cycle(self, now: int):
        """Issue one advance-mode cycle.

        Returns ``(new_execs, wake, peeks)``.  ``wake`` is the
        fast-forward hint for this cycle: ``None`` means state changed
        (not skippable); a cycle number means the cycle was a pure poll
        that repeats identically until then; ``_INF`` means there is no
        advance-internal event at all (window edge / dead pass), so the
        skip is bounded only by ``trigger_ready`` and the front end.
        ``peeks`` is the per-cycle ``iq_peeks`` poll count to replicate
        over skipped cycles.
        """
        if self.pass_dead:
            return 0, _INF, 0
        if now < self.adv_stall_until:
            return 0, self.adv_stall_until, 0
        dec = self.trace.decoded
        d_srcs = dec.srcs
        d_dests = dec.dests
        d_restart = dec.is_restart
        entries = self.trace.entries
        counters = self.stats.counters
        rs_get = self.rs.get if self.persist_results else None
        tel = self.tracer if self.tracer.enabled else None
        ports = self.config.ports
        m_ports = ports.m_ports
        i_ports = ports.i_ports
        f_ports = ports.f_ports
        b_ports = ports.b_ports
        port_code = self._port_code
        m_used = i_used = f_used = b_used = 0
        window_end = min(dec.n, self.frontend.fetched_until,
                         self.arch_ptr + self.buffer_size)
        epoch = self._srf_epoch
        srf_stamp = self._srf_stamp
        srf_ready = self._srf_ready
        poison_stamp = self._poison_stamp
        pready_stamp = self._pready_stamp
        pready_val = self._pready_val
        enable_restart = self.enable_restart
        width = self.config.ports.width
        slots = 0
        new_execs = 0
        wake = _INF
        peeks = 0

        while self.adv_ptr < window_end and slots < width:
            seq = self.adv_ptr
            wake = None
            counters["iq_peeks"] += 1

            rs_entry = rs_get(seq) if rs_get is not None else None
            if rs_entry is not None:
                if rs_entry.ready > now:
                    # Result (typically a missing load from an earlier
                    # pass) still in flight: consumers stay deferred.
                    for dest in d_dests[seq]:
                        poison_stamp[dest] = epoch
                        pready_stamp[dest] = epoch
                        pready_val[dest] = rs_entry.ready
                        srf_stamp[dest] = 0
                    self.adv_ptr = seq + 1
                    slots += 1
                    continue
                # Preserved result: no re-execution, breaks dependences.
                for dest in d_dests[seq]:
                    srf_stamp[dest] = epoch
                    srf_ready[dest] = now
                    poison_stamp[dest] = 0
                counters["advance_merges"] += 1
                if tel is not None:
                    tel.rs_hit(now, seq, entries[seq].inst.index,
                               mode="advance")
                self.adv_ptr = seq + 1
                slots += 1
                continue

            if d_restart[seq] and enable_restart:
                status, _ = self._advance_source_state(d_srcs[seq], now)
                if status != "ready":
                    pending = self.load_miss_pending
                    hints = []
                    for src in d_srcs[seq]:
                        if pready_stamp[src] == epoch:
                            hints.append(pready_val[src])
                        elif pending[src]:
                            hints.append(pending[src])
                    self._advance_restart(now, max(hints) if hints
                                          else None)
                    return new_execs, None, 0
                self.adv_ptr = seq + 1
                slots += 1
                continue

            status, wait_until = self._advance_source_state(d_srcs[seq],
                                                            now)
            if status == "wait":
                # In-order advance stream waits for a bypass.  Breaking
                # on the very first slot is a pure poll (only the peek
                # counter moved) and repeats identically every cycle
                # until the bypass arrives.
                if slots == 0:
                    wake = wait_until
                    peeks = 1
                break

            if status == "invalid":
                new_execs += self._defer_advance(entries[seq], now)
                self._pass_defers += 1
                slots += 1
                if self.pass_dead:
                    break
                continue

            # Valid operands: execute speculatively.
            code = port_code[seq]
            if code == 0:          # MEM
                if m_used >= m_ports:
                    break
                m_used += 1
            elif code == 1:        # ALU: I port with M fallback
                if i_used < i_ports:
                    i_used += 1
                elif m_used < m_ports:
                    m_used += 1
                else:
                    break
            elif code == 2:        # FP / MULDIV
                if f_used >= f_ports:
                    break
                f_used += 1
            elif code == 3:        # BR
                if b_used >= b_ports:
                    break
                b_used += 1
            executed = self._execute_advance(entries[seq], now)
            new_execs += executed
            self._pass_execs += executed
            slots += 1
            if self.pass_dead:
                break
        if self.hardware_restart and not self.pass_dead:
            if self._maybe_hardware_restart(now):
                wake = None
        return new_execs, wake, peeks

    def _maybe_hardware_restart(self, now: int) -> bool:
        """Footnote-1 mechanism: restart a fruitless pass on its own.

        Fires when the current pass is dominated by deferrals and a
        poisoned value has a known arrival time to rendezvous with;
        without an in-flight fill nothing would change, so the pass is
        left to keep prefetching instead.  Returns True when it fired.
        Every blocker is stable or monotone while the pass is idle, so a
        non-firing check stays non-firing across a fast-forward span.
        """
        processed = self._pass_execs + self._pass_defers
        if processed < self.hw_restart_window:
            return False
        if self._pass_execs >= processed * self.hw_restart_fraction:
            return False
        epoch = self._srf_epoch
        pready_stamp = self._pready_stamp
        pready_val = self._pready_val
        pending = [pready_val[r] for r in range(NUM_REGS)
                   if pready_stamp[r] == epoch and pready_val[r] > now]
        if not pending:
            return False
        self._advance_restart(now, min(pending))
        self.stats.counters["hardware_restarts"] += 1
        return True

    def _defer_advance(self, entry: TraceEntry, now: int) -> int:
        """Suppress an advance instruction with invalid operands."""
        dec = self._dec
        seq = entry.seq
        self.stats.counters["advance_deferrals"] += 1
        epoch = self._srf_epoch
        for dest in dec.dests[seq]:
            self._poison_stamp[dest] = epoch
            self._srf_stamp[dest] = 0
        if dec.is_branch[seq]:
            # Direction unknown: follow the prediction.  When it disagrees
            # with the actual outcome the advance stream has gone down the
            # wrong path and the rest of this pass is unproductive.
            if not self.predictor.peek_correct(dec.pc[seq], entry.taken):
                self.pass_dead = True
                self.stats.counters["advance_wrong_path"] += 1
        elif dec.is_store[seq]:
            inst = entry.inst
            data_reg, base_reg = inst.srcs[0], inst.srcs[1]
            if self._advance_reg_invalid(base_reg, now) or \
                    (entry.addr is None):
                self.unknown_store = True
                self.stats.counters["unknown_address_stores"] += 1
            elif self._advance_reg_invalid(data_reg, now):
                self.asc.write(entry.addr, INVALID)
        self.adv_ptr += 1
        return 0

    def _advance_reg_invalid(self, reg: int, now: int) -> bool:
        epoch = self._srf_epoch
        if self._srf_stamp[reg] == epoch:
            return False
        if self._poison_stamp[reg] == epoch:
            return True
        return (self.reg_ready[reg] > now
                and self.load_miss_pending[reg] > now)

    def _execute_advance(self, entry: TraceEntry, now: int) -> int:
        """Execute one valid advance instruction; returns 1 if it counts
        as a new execution."""
        dec = self._dec
        seq = entry.seq
        self.stats.counters["advance_executions"] += 1
        if self.tracer.enabled:
            self.tracer.issue(now, seq, dec.pc[seq], mode="advance")

        if not dec.executed[seq]:
            # Predicate-nullified: flows through, nothing to preserve.
            if self.persist_results:
                self.rs.put(RSEntry(seq, now + 1,
                                    resolved_branch=dec.is_branch[seq]))
            if dec.is_branch[seq]:
                self._resolve_advance_branch(entry, now)
            self.adv_ptr = seq + 1
            return 1

        if dec.is_branch[seq]:
            self._resolve_advance_branch(entry, now)
            if self.persist_results:
                self.rs.put(RSEntry(seq, now + 1, resolved_branch=True))
            self.adv_ptr = seq + 1
            return 1

        if dec.is_store[seq]:
            self.asc.write(entry.addr, entry.value)
            self.stats.counters["advance_stores"] += 1
            if self.persist_results:
                self.rs.put(RSEntry(seq, now + 1, addr=entry.addr,
                                    is_store=True))
            self.adv_ptr = seq + 1
            return 1

        if dec.is_load[seq]:
            self._execute_advance_load(entry, now)
            self.adv_ptr = seq + 1
            return 1

        # ALU / FP / mul-div / nop.
        latency = dec.latency[seq]
        dests = dec.dests[seq]
        epoch = self._srf_epoch
        for dest in dests:
            self._srf_stamp[dest] = epoch
            self._srf_ready[dest] = now + latency
            self._poison_stamp[dest] = 0
            self._pready_stamp[dest] = 0
        if self.persist_results and (dests or entry.inst.opcode is
                                     Opcode.NOP):
            self.rs.put(RSEntry(seq, now + latency))
        self.adv_ptr = seq + 1
        return 1

    def _resolve_advance_branch(self, entry: TraceEntry, now: int) -> None:
        """A branch with valid operands resolves during preexecution.

        The predictor is trained early; if it would have mispredicted, the
        *advance* stream pays the redirect penalty now and the
        architectural stream later merges the resolved branch with no
        flush — the source of multipass front-end-stall reduction.
        """
        correct = self.predictor.update(self._dec.pc[entry.seq],
                                        entry.taken and entry.executed)
        self.stats.counters["advance_branches"] += 1
        if not correct:
            self.adv_stall_until = max(
                self.adv_stall_until,
                now + self.config.mispredict_penalty)
            self.stats.counters["advance_redirects"] += 1

    def _execute_advance_load(self, entry: TraceEntry, now: int) -> None:
        """Advance load: ASC forwarding, prefetch, WAW rule, S-bits."""
        addr = entry.addr
        outcome, _forwarded = self.asc.read(addr)
        result = self.hierarchy.access(addr, now)   # prefetch effect
        self.stats.counters["advance_loads"] += 1
        if result.l1_miss and self.tracer.enabled:
            self.tracer.cache_miss(now, entry.seq, entry.inst.index,
                                   result.level)

        epoch = self._srf_epoch
        srf_stamp = self._srf_stamp
        srf_ready = self._srf_ready
        poison_stamp = self._poison_stamp
        pready_stamp = self._pready_stamp
        if outcome == HIT:
            for dest in entry.dests:
                srf_stamp[dest] = epoch
                srf_ready[dest] = now + 1
                poison_stamp[dest] = 0
                pready_stamp[dest] = 0
            if self.persist_results:
                self.rs.put(RSEntry(entry.seq, now + 1, value=entry.value,
                                    addr=addr))
            self.stats.counters["asc_forwards"] += 1
            return
        if outcome == HIT_INVALID:
            for dest in entry.dests:
                poison_stamp[dest] = epoch
                srf_stamp[dest] = 0
            return

        data_speculative = self.unknown_store or outcome == MISS_SPECULATIVE
        observed = (self.mem_vals.get(addr, 0) if data_speculative
                    else entry.value)
        l1_hit = not result.l1_miss
        if self.persist_results:
            self.rs.put(RSEntry(entry.seq, result.ready,
                                sbit=data_speculative, value=observed,
                                addr=addr))
        if data_speculative:
            self.stats.counters["sbit_loads"] += 1
        if l1_hit:
            for dest in entry.dests:
                srf_stamp[dest] = epoch
                srf_ready[dest] = result.ready
                poison_stamp[dest] = 0
                pready_stamp[dest] = 0
        elif self.l1_miss_writes_srf:
            # Ablation of the Section 3.5 WAW rule: expose the fill time
            # through the SRF so in-flight consumers wait for the bypass.
            self.stats.counters["advance_load_misses"] += 1
            for dest in entry.dests:
                srf_stamp[dest] = epoch
                srf_ready[dest] = result.ready
                poison_stamp[dest] = 0
                pready_stamp[dest] = 0
        else:
            # Section 3.5: L1-missing advance loads do not write the SRF;
            # consumers defer to a later pass (the RS catches the fill).
            self.stats.counters["advance_load_misses"] += 1
            for dest in entry.dests:
                poison_stamp[dest] = epoch
                pready_stamp[dest] = epoch
                self._pready_val[dest] = result.ready
                srf_stamp[dest] = 0

    # ------------------------------------------------------------------
    # architectural / rally issue
    # ------------------------------------------------------------------

    def _merge_committed(self, entry: TraceEntry, rs_entry: RSEntry,
                         now: int) -> None:
        """Commit a preserved result without re-execution."""
        if self.check:
            self._check_merge(entry, rs_entry, now)
        self.rs.pop(entry.seq)
        self.stats.counters["rally_merges"] += 1
        self.stats.instructions += 1
        if self.tracer.enabled:
            self.tracer.rs_hit(now, entry.seq, entry.inst.index,
                               mode="rally")
        self.commit_entry(entry, now)
        for dest in entry.dests:
            self.reg_ready[dest] = now
            self.load_miss_pending[dest] = 0
        if rs_entry.is_store:
            # Pre-executed stores re-perform their access in rally mode
            # using the SMAQ address (Section 3.6).
            self.hierarchy.access(rs_entry.addr, now, kind="store")
            self.mem_vals[rs_entry.addr] = entry.value
            self.stats.counters["smaq_reads"] += 1
        if self._dec.is_branch[entry.seq]:
            self.frontend.resolve_branch(entry, now, already_resolved=True)

    def _verify_speculative_load(self, entry: TraceEntry,
                                 rs_entry: RSEntry, now: int) -> bool:
        """Re-perform a data-speculative load; flush on value mismatch."""
        if self.check:
            self._invariant(
                rs_entry.sbit,
                "speculative-load verification of a non-S-bit RS entry",
                entry)
            self._invariant(
                rs_entry.seq == entry.seq,
                f"RS entry seq {rs_entry.seq} served for committing seq "
                f"{entry.seq}", entry)
        self.rs.pop(entry.seq)
        self.stats.counters["sbit_verifications"] += 1
        self.stats.counters["smaq_reads"] += 1
        result = self.hierarchy.access(rs_entry.addr, now)
        if result.l1_miss and self.tracer.enabled:
            self.tracer.cache_miss(now, entry.seq, entry.inst.index,
                                   result.level)
        if rs_entry.value == entry.value:
            self.stats.instructions += 1
            self.commit_entry(entry, now)
            self.writeback(entry, now, result.latency, result.l1_miss)
            return False
        # Mismatch: squash everything younger and re-execute it.
        self.stats.counters["value_flushes"] += 1
        self.stats.instructions += 1
        self.commit_entry(entry, now)
        self.writeback(entry, now, result.latency, result.l1_miss)
        self.rs.clear_from(entry.seq + 1)
        self.max_peek = min(self.max_peek, entry.seq + 1)
        self.arch_stall_until = now + self.config.flush_penalty
        if self.check:
            self._invariant(
                self.rs.max_seq() <= entry.seq,
                "RS retains entries younger than a value flush", entry)
        return True

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self, max_cycles: int = 500_000_000) -> SimStats:
        # The columnar kernel requires that nothing observes individual
        # cycles: tracing emits a per-cycle mode event and record_modes
        # logs one, so both (and --slow) route to the scalar reference
        # loop below (stats are bit-identical either way — the
        # differential suite pins it).  An instance-level override of
        # the advance-issue hook (how tests instrument the per-cycle
        # advance stream) is likewise a per-cycle observer.
        if (self.slow or self.tracer.enabled or self.record_modes
                or "_issue_advance_cycle" in self.__dict__):
            return self._run_scalar(max_cycles)
        return run_columnar(self, max_cycles)

    def _run_scalar(self, max_cycles: int = 500_000_000) -> SimStats:
        entries = self.trace.entries
        n = len(entries)
        frontend = self.frontend
        stats = self.stats
        counters = stats.counters
        tel = self.tracer if self.tracer.enabled else None
        record = self.record_modes
        # The fast path requires that nothing observes individual cycles:
        # tracing emits a per-cycle mode event and record_modes logs one,
        # so both force the reference loop (stats are identical either
        # way — the differential suite pins it).
        fast = not self.slow and tel is None and not record
        check = self.check
        dec = self.trace.decoded
        d_srcs = dec.srcs
        d_dests = dec.dests
        d_lat = dec.latency
        d_mem = dec.mem_exec
        d_load = dec.is_load
        d_addr = dec.addr
        d_value = dec.value
        d_branch = dec.is_branch
        d_stop = dec.stop
        reg_ready = self.reg_ready
        pending = self.load_miss_pending
        access = self.hierarchy.access
        mem_vals = self.mem_vals
        replay = self.replay
        rs = self.rs
        rs_peek = rs.peek if self.persist_results else None
        enable_regroup = self.enable_regroup
        ports = self.config.ports
        width = ports.width
        m_ports = ports.m_ports
        i_ports = ports.i_ports
        f_ports = ports.f_ports
        b_ports = ports.b_ports
        port_code = self._port_code
        ADVANCE = Mode.ADVANCE
        ARCH = Mode.ARCHITECTURAL
        RALLY = Mode.RALLY
        EXECUTION = StallCategory.EXECUTION
        FRONT_END = StallCategory.FRONT_END
        LOAD = StallCategory.LOAD
        OTHER = StallCategory.OTHER
        # Per-category cycle tallies, flushed into the stats once at the
        # end of the run — identical totals to per-cycle charge() without
        # a dict update in the hot loop.
        c_exec = c_fe = c_load = c_other = 0
        now = 0

        while self.arch_ptr < n:
            if now > max_cycles:
                self.check_cycle_budget(now, max_cycles)
            # tick() is a no-op once the whole trace is fetched (its
            # limit clamps to n); a restart rolls fetched_until back, so
            # the guard re-arms itself after redirects.
            if frontend.fetched_until < n:
                frontend.tick(now, self.arch_ptr)

            if self.mode is ADVANCE and now >= self.trigger_ready:
                self._enter_rally(now)
            if record:
                self.mode_log.append((now, self.mode, self.arch_ptr,
                                      self.adv_ptr))
            if tel is not None:
                tel.mode(now, self.mode.value)

            if self.mode is ADVANCE:
                new_execs, wake, peeks = self._issue_advance_cycle(now)
                if check:
                    self._invariant(
                        self.adv_ptr >= self.arch_ptr,
                        f"advance pointer {self.adv_ptr} fell behind "
                        f"architectural pointer {self.arch_ptr}")
                if self.adv_ptr > self.max_peek:
                    self.max_peek = self.adv_ptr
                if new_execs:
                    c_exec += 1
                    if tel is not None:
                        tel.charge(now, EXECUTION)
                else:
                    # No new executions: the cycle belongs to the latency
                    # that initiated advance mode.
                    c_load += 1
                    if tel is not None:
                        # Attributed to the load that triggered advance
                        # mode — the same charging rule as the stats.
                        trig = entries[self.trigger_seq]
                        tel.charge(now, LOAD,
                                   seq=trig.seq, pc=trig.inst.index)
                counters["advance_cycles"] += 1
                now += 1
                if fast and wake is not None and not new_execs:
                    # Nothing can change before min(wake, trigger_ready):
                    # jump there, replicating the per-cycle attribution
                    # (zero-execution advance cycles charge LOAD) and
                    # the per-cycle poll counters.
                    target = wake if wake < self.trigger_ready \
                        else self.trigger_ready
                    skip_to = self.next_event_cycle(now, target,
                                                    self.arch_ptr)
                    if skip_to > now:
                        k = skip_to - now
                        c_load += k
                        counters["advance_cycles"] += k
                        if peeks:
                            counters["iq_peeks"] += peeks * k
                        now = skip_to
                continue

            if now < self.arch_stall_until:
                c_other += 1
                if tel is not None:
                    tel.charge(now, OTHER)
                now += 1
                if fast:
                    skip_to = self.next_event_cycle(
                        now, self.arch_stall_until, self.arch_ptr)
                    if skip_to > now:
                        c_other += skip_to - now
                        now = skip_to
                continue

            # ---- architectural / rally issue (inlined hot loop) ------
            # ``wake`` is the fast-forward hint for zero-issue cycles
            # (None: state changed, not skippable; _INF: a pure front-end
            # stall; a cycle: a pure operand/WAW stall repeating
            # identically until then); ``dq``/``waw_poll`` are the
            # per-cycle iq_dequeues/waw_stalls poll counts to replicate
            # over skipped cycles.
            fetched_until = frontend.fetched_until
            m_used = i_used = f_used = b_used = 0
            issued = 0
            reason = None
            wait_until = now + 1
            trigger = None
            wake = _INF
            dq = waw_poll = 0
            aptr = self.arch_ptr
            rallying = aptr < self.max_peek
            dynamic_groups = enable_regroup and rallying

            while aptr < fetched_until and issued < width:
                seq = aptr
                wake = None
                counters["iq_dequeues"] += 1

                rs_entry = rs_peek(seq) if rs_peek is not None else None
                if rs_entry is not None:
                    if not rs_entry.done(now):
                        # Preserved result still in flight (missing load
                        # from an earlier pass): the rally stream stalls
                        # on it without re-executing, and the stall
                        # re-triggers advance mode so preexecution
                        # continues beyond it.
                        reason = LOAD
                        wait_until = rs_entry.ready
                        trigger = entries[seq]
                        break
                    if not rs_entry.sbit:
                        self.arch_ptr = aptr
                        self._merge_committed(entries[seq], rs_entry, now)
                        issued += 1
                        aptr = seq + 1
                        if not dynamic_groups and d_stop[seq]:
                            break
                        continue
                    if m_used >= m_ports:
                        reason = OTHER
                        break
                    m_used += 1
                    self.arch_ptr = aptr
                    flushed = self._verify_speculative_load(entries[seq],
                                                            rs_entry, now)
                    issued += 1
                    aptr = seq + 1
                    if flushed:
                        reason = OTHER
                        wait_until = self.arch_stall_until
                        break
                    if not dynamic_groups and d_stop[seq]:
                        break
                    continue

                # Normal in-order execution.
                code = port_code[seq]
                if code == 0:          # MEM
                    if m_used >= m_ports:
                        reason = OTHER
                        break
                elif code == 1:        # ALU: I port with M fallback
                    if i_used >= i_ports and m_used >= m_ports:
                        reason = OTHER
                        break
                elif code == 2:        # FP / MULDIV
                    if f_used >= f_ports:
                        reason = OTHER
                        break
                elif code == 3:        # BR
                    if b_used >= b_ports:
                        reason = OTHER
                        break
                stall = 0
                load_wait = False
                for s in d_srcs[seq]:
                    r = reg_ready[s]
                    if r > now:
                        if r > stall:
                            stall = r
                        if pending[s] > now:
                            load_wait = True
                if stall:
                    wait_until = stall
                    if load_wait:
                        reason = LOAD
                        trigger = entries[seq]
                    elif issued == 0:
                        # Pure operand poll: the break repeats
                        # identically every cycle until the producers
                        # complete.
                        reason = OTHER
                        wake = wait_until
                        dq = 1
                    else:
                        reason = OTHER
                    break

                latency = d_lat[seq]
                l1_miss = False
                mem = d_mem[seq]
                if mem:
                    if d_load[seq]:
                        result = access(d_addr[seq], now)
                        latency = result.latency
                        l1_miss = result.l1_miss
                        counters["loads_issued"] += 1
                        if l1_miss:
                            counters["l1d_load_misses"] += 1
                            if tel is not None:
                                tel.cache_miss(now, seq,
                                               entries[seq].inst.index,
                                               result.level)
                    else:
                        addr = d_addr[seq]
                        access(addr, now, kind="store")
                        mem_vals[addr] = d_value[seq]

                done = now + latency
                stall = 0
                load_horizon = 0
                waw_count = 0
                for d in d_dests[seq]:
                    r = reg_ready[d]
                    if r > done:
                        waw_count += 1
                        if r > stall:
                            stall = r
                        p = pending[d]
                        if p > now and p > load_horizon:
                            load_horizon = p
                if waw_count:
                    wait_until = stall
                    reason = LOAD if load_horizon else OTHER
                    counters["waw_stalls"] += 1
                    if issued == 0 and not mem and waw_count == 1:
                        # Pure WAW poll (no cache access to repeat,
                        # single conflicting register so the category is
                        # stable).  The stall ends as soon as the
                        # in-flight writer's completion no longer
                        # exceeds now + latency.
                        wake = wait_until - latency
                        if load_horizon and load_horizon < wake:
                            wake = load_horizon
                        dq = 1
                        waw_poll = 1
                    break

                if code == 0:
                    m_used += 1
                elif code == 1:
                    if i_used < i_ports:
                        i_used += 1
                    else:
                        m_used += 1
                elif code == 2:
                    f_used += 1
                elif code == 3:
                    b_used += 1
                for d in d_dests[seq]:
                    reg_ready[d] = done
                    pending[d] = done if l1_miss else 0
                stats.instructions += 1
                if tel is not None:
                    tel.issue(now, seq, entries[seq].inst.index)
                    self.commit_entry(entries[seq], now)
                elif replay is not None:
                    replay.commit(entries[seq])
                issued += 1
                aptr = seq + 1
                if d_branch[seq]:
                    if frontend.resolve_branch(entries[seq], now):
                        counters["mispredicts"] += 1
                        rs.clear_from(seq + 1)
                        if seq + 1 < self.max_peek:
                            self.max_peek = seq + 1
                        if check:
                            self._invariant(
                                rs.max_seq() <= seq,
                                "RS retains entries younger than a "
                                "mispredict flush", entries[seq])
                        break
                if d_stop[seq] and not dynamic_groups:
                    break
            self.arch_ptr = aptr
            # ---- end inlined issue loop ------------------------------

            in_rally = self.mode is RALLY
            if in_rally:
                counters["rally_cycles"] += 1
                if aptr >= self.max_peek and rs.max_seq() < aptr:
                    self.mode = ARCH
                    in_rally = False

            front_end_stall = aptr >= frontend.fetched_until
            if issued:
                c_exec += 1
                if tel is not None:
                    tel.charge(now, EXECUTION)
            elif front_end_stall:
                c_fe += 1
                if tel is not None:
                    blocked = entries[aptr] if aptr < n else None
                    tel.charge(now, FRONT_END,
                               seq=blocked.seq if blocked else -1,
                               pc=blocked.inst.index if blocked else -1)
            else:
                if reason is LOAD:
                    c_load += 1
                else:
                    c_other += 1
                if tel is not None:
                    blocked = entries[aptr]
                    tel.charge(now, reason or OTHER,
                               seq=blocked.seq, pc=blocked.inst.index)
            now += 1

            if trigger is not None and wait_until > now:
                self._enter_advance(trigger, wait_until, now)
            elif fast and not issued and wake is not None:
                # A pure stall cycle: every cycle until the wake target
                # repeats the same poll with the same attribution, so
                # jump the clock and replicate the poll counters.
                skip_to = self.next_event_cycle(now, wake, aptr)
                if now < skip_to < _INF:
                    k = skip_to - now
                    if front_end_stall:
                        c_fe += k
                    elif reason is LOAD:
                        c_load += k
                    else:
                        c_other += k
                    if in_rally:
                        counters["rally_cycles"] += k
                    if dq:
                        counters["iq_dequeues"] += k
                    if waw_poll:
                        counters["waw_stalls"] += k
                    now = skip_to

        breakdown = stats.cycle_breakdown
        breakdown[EXECUTION] += c_exec
        breakdown[FRONT_END] += c_fe
        breakdown[LOAD] += c_load
        breakdown[OTHER] += c_other
        stats.cycles += c_exec + c_fe + c_load + c_other
        return self.finalize()

    def finalize(self) -> SimStats:
        stats = super().finalize()
        stats.counters["rs_writes"] = self.rs.writes
        stats.counters["rs_reads"] = self.rs.reads
        stats.counters["asc_writes"] = self.asc.writes
        stats.counters["asc_reads"] = self.asc.reads
        return stats


def simulate_multipass(trace: Trace,
                       config: Optional[MachineConfig] = None,
                       enable_regroup: bool = True,
                       enable_restart: bool = True) -> SimStats:
    """Run the multipass model over ``trace``."""
    return MultipassCore(trace, config, enable_regroup=enable_regroup,
                         enable_restart=enable_restart).run()
