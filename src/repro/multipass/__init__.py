"""Multipass pipelining: the paper's primary contribution."""

from .asc import (HIT, HIT_INVALID, INVALID, MISS, MISS_SPECULATIVE,
                  AdvanceStoreCache)
from .core import Mode, MultipassCore, simulate_multipass
from .result_store import ResultStore, RSEntry
from .twopass import TwoPassCore, simulate_twopass

__all__ = [
    "AdvanceStoreCache", "HIT", "HIT_INVALID", "INVALID", "MISS",
    "MISS_SPECULATIVE", "Mode", "MultipassCore", "RSEntry", "ResultStore",
    "simulate_multipass", "TwoPassCore", "simulate_twopass",
]
