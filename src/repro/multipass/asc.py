"""Advance store cache (ASC) — paper Section 3.6, Figure 5(b).

A low-associativity cache that forwards advance-store data to subsequent
advance loads within one advance pass.  Stores with invalid data deposit an
explicit *invalid* marker so dependent loads are suppressed; replacement in
a set makes later loads that miss in that set *data speculative* (their
value must be verified when reprocessed in rally mode).  The ASC is cleared
at the beginning of every advance pass.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Marker deposited by advance stores whose data operand was invalid.
INVALID = object()

#: Read outcomes.
HIT = "hit"
HIT_INVALID = "hit-invalid"
MISS = "miss"
MISS_SPECULATIVE = "miss-speculative"


class AdvanceStoreCache:
    """Set-associative, word-granular forwarding cache."""

    def __init__(self, entries: int = 64, assoc: int = 2,
                 word_size: int = 4):
        if entries % assoc:
            raise ValueError("entries must be divisible by associativity")
        self.entries = entries
        self.assoc = assoc
        self.word_size = word_size
        self.num_sets = entries // assoc
        self._sets: List[Dict[int, Tuple[object, int]]] = [
            {} for _ in range(self.num_sets)
        ]
        self._replaced: List[bool] = [False] * self.num_sets
        self._clock = 0
        self.writes = 0
        self.reads = 0
        self.forwards = 0
        self.replacements = 0

    def _set_index(self, addr: int) -> int:
        return (addr // self.word_size) % self.num_sets

    def clear(self) -> None:
        """Empty the cache at the start of an advance pass."""
        for entry_set in self._sets:
            entry_set.clear()
        self._replaced = [False] * self.num_sets
        self._clock = 0

    def write(self, addr: int, value: object) -> None:
        """Deposit an advance store's data (or ``INVALID``)."""
        self.writes += 1
        self._clock += 1
        entry_set = self._sets[self._set_index(addr)]
        if addr not in entry_set and len(entry_set) >= self.assoc:
            victim = min(entry_set, key=lambda a: entry_set[a][1])
            del entry_set[victim]
            self._replaced[self._set_index(addr)] = True
            self.replacements += 1
        entry_set[addr] = (value, self._clock)

    def read(self, addr: int) -> Tuple[str, Optional[object]]:
        """Probe for a forwardable value.

        Returns one of:
            (HIT, value)            — forward this store data;
            (HIT_INVALID, None)     — the producing store's data was
                                      invalid, suppress the load;
            (MISS, None)            — no conflicting advance store seen;
            (MISS_SPECULATIVE, None)— the set has replaced entries, so an
                                      older conflicting store may have been
                                      lost: the load is data speculative.
        """
        self.reads += 1
        set_index = self._set_index(addr)
        entry_set = self._sets[set_index]
        if addr in entry_set:
            value, _ = entry_set[addr]
            if value is INVALID:
                return HIT_INVALID, None
            self.forwards += 1
            return HIT, value
        if self._replaced[set_index]:
            return MISS_SPECULATIVE, None
        return MISS, None
