"""Event-driven columnar kernel for the multipass-family cores.

Drop-in replacement for the scalar cycle loop in
:mod:`repro.multipass.core` (kept there as the ``--slow``/traced/
``record_modes`` reference): same machine, same statistics,
bit-identical cycle counts and stall attribution, but the per-cycle
*work* is restructured around preallocated flat columns, following the
PR 7 OOO kernel (:mod:`repro.ooo.columnar`):

* **The result store is a set of flat per-seq columns** (``rs_live`` /
  ``rs_ready`` / ``rs_value`` / ``rs_addr`` / ``rs_sbit`` /
  ``rs_store``) instead of a dict of ``RSEntry`` objects.  A flush
  (``clear_from``) is one ``bytearray`` slice wipe of the live bits and
  a clamp of the high-water mark ``rs_hi``; ``max_seq()`` is a lazy
  downward tightening of ``rs_hi`` past dead tops.  Counter semantics
  are preserved exactly: a *write* per put, a *read* only when the
  advance stream's probe finds a live entry, a *merge* per pop.
* **Pass resets are generation bumps.**  The SRF/poison/pready columns
  already use the core's epoch stamps (one ``epoch += 1`` per reset,
  PR 7); the advance store cache joins them here: per-set dicts carry a
  generation stamp (``asc_set_gen``) and a stale set is lazily purged
  on first touch, so ``asc.clear()`` becomes a single ``asc_gen += 1``
  that also invalidates the per-set *replaced* flags
  (``asc_rep_gen``).  The ASC clock is globally monotone instead of
  per-pass — only the relative order within a set matters for the LRU
  victim, so the choice is identical.
* **The hardware-restart rendezvous is a timing wheel + far-event
  heap.**  The footnote-1 mechanism needs ``min`` over the pready
  hints still in flight; the scalar loop scans all ``NUM_REGS`` pready
  stamps per check.  Here every pready fill *event* is pushed once —
  near fills (under :data:`WHEEL` cycles out) into a 64-slot wheel,
  far fills (memory misses) into a heap — stamped with the pass epoch,
  so a pass restart invalidates the whole calendar wholesale and stale
  entries are discarded lazily at query time (generation-stamped
  staleness, exactly the OOO kernel's squash discipline).  The
  calendar is only maintained when ``hardware_restart`` is enabled;
  the *hints* themselves stay in the epoch-stamped pready columns with
  their deliberate clear-the-poison-keep-the-hint lifetime (see
  ``MultipassCore``), which the restart-slot scan also consults.
* **Fetch, gshare and the L1s are inlined** with the same localized
  front-end scalars, batched predictor tallies and L1 hit fast paths
  as the OOO kernel (fall back to ``hierarchy.access`` whenever the
  line is absent or a fill is pending — same stats, same LRU clocks,
  same MSHR effects).

Mode-machine equivalence: the kernel replicates the scalar ``run()``
cycle-for-cycle — fetch, rally entry at ``trigger_ready``, the advance
slot loop (RS probe, RESTART, operand classification, port budgeting,
defer/execute), the architectural/rally issue loop (merge, S-bit
verification, in-order issue, branch resolve) and the two fast-forward
skips with their replicated poll counters — so every counter, the
4-way stall breakdown and the retired stream are bit-identical.  The
differential suites (``tests/property/test_columnar.py``,
``tests/property/test_fast_path.py``), the idle-skip boundary sweep
and the golden matrix pin all of this against the scalar loop; see
``docs/architecture.md`` §13.
"""

from __future__ import annotations

from heapq import heappop, heappush

from ..isa.columns import columns_of
from ..isa.opcodes import Opcode
from ..pipeline.eventq import WHEEL, EventCalendar
from ..pipeline.stats import SimStats, StallCategory
from .asc import INVALID

#: "No internal event" fast-forward hint (see ``multipass.core``).
_INF = 1 << 62


def run_columnar(core, max_cycles: int) -> SimStats:
    """Run a :class:`~repro.multipass.core.MultipassCore` to completion.

    ``core`` must be freshly constructed, un-traced, not in ``--slow``
    mode and not recording modes (the caller routes those to the scalar
    reference loop).
    """
    trace = core.trace
    entries = trace.entries
    dec = trace.decoded
    n = dec.n
    d_srcs = dec.srcs
    d_dests = dec.dests
    d_lat = dec.latency
    d_mem = dec.mem_exec
    d_load = dec.is_load
    d_store = dec.is_store
    d_branch = dec.is_branch
    d_restart = dec.is_restart
    d_executed = dec.executed
    d_stop = dec.stop
    d_addr = dec.addr
    d_value = dec.value
    d_taken = dec.taken
    d_pc = dec.pc
    port_code = core._port_code
    # Advance-dispatch class (0 ALU/other, 1 nullified, 2 branch,
    # 3 store, 4 load), trace-static and shared across models.
    d_kind = columns_of(dec).multipass_kind()

    config = core.config
    frontend = core.frontend
    stats = core.stats
    replay = core.replay
    buffer_size = core.buffer_size
    ports = config.ports
    width = ports.width
    m_ports = ports.m_ports
    i_ports = ports.i_ports
    f_ports = ports.f_ports
    b_ports = ports.b_ports
    mispredict_penalty = config.mispredict_penalty
    advance_entry_delay = config.advance_entry_delay
    advance_restart_refill = config.advance_restart_refill
    flush_penalty = config.flush_penalty

    # Column-level model flags: runahead and two-pass inherit the kernel
    # purely through these (no subclass hooks on the fast path).
    enable_regroup = core.enable_regroup
    enable_restart = core.enable_restart
    if not enable_restart:
        # Fold the model flag into the column: one falsy subscript per
        # slot instead of a flag test plus a subscript.
        d_restart = bytes(len(d_restart))
    persist = core.persist_results
    l1_miss_writes_srf = core.l1_miss_writes_srf
    hardware_restart = core.hardware_restart
    hw_window = core.hw_restart_window
    hw_fraction = core.hw_restart_fraction
    rally_refill = core.rally_exit_refill

    reg_ready = core.reg_ready
    pending = core.load_miss_pending
    epoch = core._srf_epoch
    srf_ready = core._srf_ready
    pready_stamp = core._pready_stamp
    pready_val = core._pready_val
    mem_vals = core.mem_vals
    # Fused SRF/poison state: one stamp cell per register, holding
    # ``epoch * 4 + 1`` (A-bit set, value time in ``srf_ready``) or
    # ``epoch * 4 + 2`` (I-bit set); anything below the pass's ``sA``
    # is stale, so a pass reset stays a single epoch bump.  This is
    # exactly the scalar loop's two stamp arrays folded together:
    # every I-bit write there clears the A-bit and vice versa (the
    # A-bit shadows the I-bit for readers), so one last-write-wins
    # cell per register carries the same observable state.  The
    # pready hint keeps its own stamp column — its deliberately
    # longer lifetime (cleared only by real values, surviving merges)
    # is the hint-lifetime quirk the restart paths depend on.
    sp_state = [0] * len(srf_ready)
    sA = epoch * 4 + 1
    sI = sA + 1

    # Inline L1 fast paths (same discipline as the OOO kernel): probe
    # the L1 dicts directly, fall back to ``hierarchy.access`` whenever
    # the line is absent or any fill is pending.
    hierarchy = core.hierarchy
    access = hierarchy.access
    h_pending = hierarchy._pending
    l1i_cache = hierarchy.l1i
    l1i_id = id(l1i_cache)
    l1i_sets = l1i_cache._sets
    l1i_nsets = l1i_cache._num_sets
    l1i_latency = l1i_cache.config.latency
    l1d_cache = hierarchy.l1d
    l1d_id = id(l1d_cache)
    l1d_sets = l1d_cache._sets
    l1d_line = l1d_cache._line_size
    l1d_nsets = l1d_cache._num_sets
    l1d_latency = l1d_cache.config.latency
    # L1 hit-path statistics and LRU clocks, localized.  ``access``
    # reads and advances the same counters, so every fallback call is
    # bracketed by a write-back/reload pair (and refreshes the pending
    # horizon, which only ``access`` extends).
    l1i_acc = l1i_cache.accesses
    l1i_hit = l1i_cache.hits
    l1i_clk = l1i_cache._clock
    l1d_acc = l1d_cache.accesses
    l1d_hit = l1d_cache.hits
    l1d_clk = l1d_cache._clock
    h_horizon = hierarchy._pending_horizon
    fetch_width = frontend._fetch_width
    inst_bytes = frontend._inst_bytes
    f_pcs = frontend._pcs
    f_lines = frontend._lines
    # Same-line fetch runs: ``f_run[i]`` is the first seq past ``i`` on
    # a different cache line, so a fetch group whose line is already
    # hot advances to the run end in one step instead of per-seq.
    f_run = columns_of(dec).fetch_runs(inst_bytes,
                                       frontend._line_size)
    # Front-end scalars, localized for the whole run (written back at
    # the bottom; nothing else reads them while the kernel runs).
    f_fetched = frontend.fetched_until
    f_stall = frontend.stall_until
    f_last = frontend._last_line
    fe_redirects = 0

    # Branch predictor state, inlined (two table reads and a history
    # shift per update).
    predictor = frontend.predictor
    bp_counters = predictor._counters
    bp_mask = predictor._mask
    bp_hist_mask = (1 << predictor._history_bits) - 1
    bp_history = predictor._history
    n_bp = n_bp_wrong = 0
    #: 2-bit counter transition tables (branchless saturating update).
    BP_INC = (1, 2, 3, 3)
    BP_DEC = (0, 0, 1, 2)

    # Result store, flattened into per-seq columns.  A seq's address
    # and store-ness are pure functions of the trace (``d_addr`` /
    # ``d_store``), so they are never stored; ``rs_sbit`` is only ever
    # written by load puts (a seq's kind is fixed), so non-load entries
    # read a pristine 0 and no flush has to wipe it; ``rs_value`` is
    # only read under ``rs_sbit``, so only data-speculative puts write
    # it.  Counter semantics match ``ResultStore`` exactly.
    rs_live = bytearray(n)
    rs_ready = [0] * n
    rs_value: list = [None] * n
    rs_sbit = bytearray(n)
    rs_hi = 0                      # exclusive live high-water mark
    n_rs_writes = n_rs_reads = n_rs_merges = 0

    # Advance store cache, flattened: per-set dicts with generation
    # stamps; ``clear()`` is one ``asc_gen`` bump.
    asc = core.asc
    asc_assoc = asc.assoc
    asc_nsets = asc.num_sets
    asc_word = asc.word_size
    asc_sets: list = [{} for _ in range(asc_nsets)]
    asc_set_gen = [0] * asc_nsets
    asc_rep_gen = [0] * asc_nsets
    asc_gen = 1
    asc_clock = 0
    n_asc_writes = n_asc_reads = n_asc_forwards = n_asc_repl = 0

    # pready fill calendar for the hardware-restart rendezvous query
    # (dormant unless the ablation is enabled — pushes are gated so the
    # primary models pay nothing for it).  Entries are (cycle, reg,
    # epoch) in both tiers — the rendezvous min-scans wheel slots out
    # of drain order, so wheel entries carry their time explicitly.
    # Staleness = epoch mismatch, hint cleared, or hint overwritten
    # with a different fill time (see repro.pipeline.eventq).
    cal = EventCalendar()
    wheel = cal.wheel
    heap = cal.heap

    # Mode machine state (0 = architectural, 1 = advance, 2 = rally).
    mode = 0
    arch_ptr = core.arch_ptr
    adv_ptr = core.adv_ptr
    max_peek = core.max_peek
    trigger_seq = core.trigger_seq
    trigger_ready = core.trigger_ready
    adv_stall_until = core.adv_stall_until
    arch_stall_until = core.arch_stall_until
    unknown_store = core.unknown_store
    pass_dead = core.pass_dead
    pass_execs = core._pass_execs
    pass_defers = core._pass_defers

    EXECUTION = StallCategory.EXECUTION
    FRONT_END = StallCategory.FRONT_END
    LOAD = StallCategory.LOAD
    OTHER = StallCategory.OTHER
    NOP = Opcode.NOP
    c_exec = c_fe = c_load = c_other = 0
    n_instructions = 0
    n_iq_peeks = n_iq_dequeues = n_waw_stalls = 0
    n_advance_cycles = n_rally_cycles = 0
    n_advance_entries = n_advance_restarts = n_hw_restarts = 0
    n_advance_merges = n_advance_deferrals = n_advance_wrong = 0
    n_unknown_stores = n_advance_execs = 0
    n_advance_branches = n_advance_redirects = 0
    n_advance_loads = n_sbit_loads = n_advance_load_misses = 0
    n_advance_stores = 0
    n_rally_merges = n_smaq_reads = n_sbit_verifications = 0
    n_value_flushes = n_mispredicts = 0
    n_loads = n_load_misses = 0
    n_refills = 0
    now = 0

    while arch_ptr < n:
        if now > max_cycles:
            core.check_cycle_budget(now, max_cycles)

        # ---- fetch (inlined frontend.tick) ----------------------------
        if f_fetched < n and now >= f_stall:
            limit = arch_ptr + buffer_size
            if limit > n:
                limit = n
            if f_fetched < limit:
                stop = f_fetched + fetch_width
                if stop > limit:
                    stop = limit
                fu = f_fetched
                last = f_last
                while fu < stop:
                    line = f_lines[fu]
                    if line != last:
                        cset = l1i_sets[line % l1i_nsets]
                        if cset is not None and line in cset:
                            # L1I hit: bump stats and LRU exactly like
                            # Cache.access; serve a still-in-flight
                            # fill with its remaining time, like the
                            # hierarchy's pending probe.
                            fill_wait = 0
                            if h_pending and now < h_horizon:
                                key = (l1i_id, line)
                                r = h_pending.get(key)
                                if r is not None:
                                    if r <= now:
                                        del h_pending[key]
                                    else:
                                        fill_wait = r - now
                            l1i_acc += 1
                            l1i_clk += 1
                            cset[line] = l1i_clk
                            l1i_hit += 1
                            if fill_wait > l1i_latency:
                                f_stall = now + fill_wait
                                frontend.icache_stall_cycles += fill_wait
                                f_last = line
                                f_fetched = fu
                                break
                        else:
                            l1i_cache.accesses = l1i_acc
                            l1i_cache.hits = l1i_hit
                            l1i_cache._clock = l1i_clk
                            result = access(f_pcs[fu] * inst_bytes, now,
                                            "ifetch")
                            l1i_acc = l1i_cache.accesses
                            l1i_hit = l1i_cache.hits
                            l1i_clk = l1i_cache._clock
                            h_horizon = hierarchy._pending_horizon
                            if result.latency > l1i_latency:
                                f_stall = result.ready
                                frontend.icache_stall_cycles += \
                                    result.latency
                                f_last = line
                                f_fetched = fu
                                break
                        last = line
                    # The rest of this line's run needs no new probe.
                    e = f_run[fu]
                    fu = e if e < stop else stop
                else:
                    f_last = last
                    f_fetched = fu

        if mode == 1 and now >= trigger_ready:
            # Rally entry: unlatch the architectural stream (one pass
            # reset = one generation bump on every stamped structure).
            mode = 2
            pass_execs = 0
            pass_defers = 0
            epoch += 1
            sA += 4
            sI += 4
            asc_gen += 1
            unknown_store = False
            pass_dead = False
            if rally_refill:
                # Runahead pays a checkpoint-restore refill on exit.
                t = now + mispredict_penalty
                if t > arch_stall_until:
                    arch_stall_until = t
                n_refills += 1

        elif mode == 1:
            # ---- advance-mode issue (one cycle) -----------------------
            new_execs = 0
            wake = _INF
            peeks = 0
            restarted = False
            if pass_dead:
                pass
            elif now < adv_stall_until:
                wake = adv_stall_until
            else:
                m_used = i_used = f_used = b_used = 0
                window_end = f_fetched
                if n < window_end:
                    window_end = n
                lim = arch_ptr + buffer_size
                if lim < window_end:
                    window_end = lim
                if (adv_ptr + width <= window_end and rs_live[adv_ptr]
                        and not hardware_restart
                        and (f_fetched >= n or f_fetched >= lim)):
                    # Bulk pure-merge fast path: a restarted pass
                    # re-walking preserved results merges exactly
                    # ``width`` entries per cycle with no effect beyond
                    # SRF refreshes.  With fetch quiescent (window
                    # frozen) and no restart calendar to consult, whole
                    # such cycles are replayed in one step; the first
                    # partial cycle falls through to the slot loop.
                    i = adv_ptr
                    while (i < window_end and rs_live[i]
                           and rs_ready[i] <= now):
                        i += 1
                    cycles = (i - adv_ptr) // width
                    tmax = trigger_ready - now
                    if cycles > tmax:
                        cycles = tmax
                    if cycles > 0:
                        count = cycles * width
                        n_iq_peeks += count
                        n_rs_reads += count
                        n_advance_merges += count
                        cyc = now
                        left = width
                        for seq in range(adv_ptr, adv_ptr + count):
                            for dest in d_dests[seq]:
                                sp_state[dest] = sA
                                srf_ready[dest] = cyc
                            left -= 1
                            if not left:
                                left = width
                                cyc += 1
                        adv_ptr += count
                        if adv_ptr > max_peek:
                            max_peek = adv_ptr
                        n_advance_cycles += cycles
                        c_load += cycles
                        now += cycles
                        continue
                slots = 0
                if adv_ptr < window_end and width:
                    # The scalar loop re-arms wake=None at the top of
                    # every slot; only the final iteration's value
                    # survives, so arming once before the loop (and on
                    # the explicit break paths) is equivalent.
                    wake = None
                while adv_ptr < window_end and slots < width:
                    seq = adv_ptr
                    n_iq_peeks += 1

                    # Only persistent models ever set a live bit, so the
                    # probe needs no ``persist`` guard.
                    if rs_live[seq]:
                        n_rs_reads += 1
                        r = rs_ready[seq]
                        if r > now:
                            # Result (typically a missing load from an
                            # earlier pass) still in flight: consumers
                            # stay deferred.
                            for dest in d_dests[seq]:
                                sp_state[dest] = sI
                                pready_stamp[dest] = epoch
                                pready_val[dest] = r
                                if hardware_restart:
                                    if r - now < WHEEL:
                                        slot = wheel[r & 63]
                                        if slot:
                                            slot[:] = [
                                                e for e in slot
                                                if e[2] == epoch
                                                and e[0] > now]
                                        slot.append((r, dest, epoch))
                                    else:
                                        heappush(heap, (r, dest, epoch))
                            adv_ptr = seq + 1
                            slots += 1
                            continue
                        # Preserved result: no re-execution.
                        for dest in d_dests[seq]:
                            sp_state[dest] = sA
                            srf_ready[dest] = now
                        n_advance_merges += 1
                        adv_ptr = seq + 1
                        slots += 1
                        continue

                    if d_restart[seq]:
                        # RESTART with an unready operand rewinds the
                        # pass to the trigger (Section 3.3).
                        ok = True
                        for src in d_srcs[seq]:
                            st = sp_state[src]
                            if st < sA:
                                if reg_ready[src] > now:
                                    ok = False
                                    break
                            elif st == sA:
                                if srf_ready[src] > now:
                                    ok = False
                                    break
                            else:
                                ok = False
                                break
                        if not ok:
                            hint = -1
                            for src in d_srcs[seq]:
                                if pready_stamp[src] == epoch:
                                    h = pready_val[src]
                                elif pending[src]:
                                    h = pending[src]
                                else:
                                    continue
                                if h > hint:
                                    hint = h
                            pass_execs = 0
                            pass_defers = 0
                            epoch += 1
                            sA += 4
                            sI += 4
                            asc_gen += 1
                            unknown_store = False
                            pass_dead = False
                            # Bump the lazy RS high-water before the
                            # rewind: puts earlier this cycle sit below
                            # the pre-rewind adv_ptr.
                            if persist and adv_ptr > rs_hi:
                                rs_hi = adv_ptr
                            adv_ptr = trigger_seq
                            refill = now + advance_restart_refill
                            if hint >= 0:
                                alt = hint - advance_restart_refill
                                if alt > refill:
                                    refill = alt
                            adv_stall_until = refill
                            n_advance_restarts += 1
                            wake = None
                            peeks = 0
                            restarted = True
                            break
                        adv_ptr = seq + 1
                        slots += 1
                        continue

                    # Classify operands: ready / wait / invalid (the
                    # first invalid source wins, like the scalar walk).
                    wait_until_a = now
                    invalid = False
                    for src in d_srcs[seq]:
                        st = sp_state[src]
                        if st == sA:                   # A-bit: SRF value
                            r = srf_ready[src]
                            if r > wait_until_a:
                                wait_until_a = r
                        elif st < sA:                  # stale: arch state
                            ar = reg_ready[src]
                            if ar > now:
                                if pending[src] > now:
                                    invalid = True  # missing load: defer
                                    break
                                if ar > wait_until_a:
                                    wait_until_a = ar
                        else:                          # I-bit
                            invalid = True
                            break

                    if invalid:
                        # Suppress: poison the destinations.
                        n_advance_deferrals += 1
                        for dest in d_dests[seq]:
                            sp_state[dest] = sI
                        if d_branch[seq]:
                            # Direction unknown: follow the prediction;
                            # a disagreement means the rest of the pass
                            # is down the wrong path.
                            predicted = bp_counters[
                                (d_pc[seq] ^ bp_history) & bp_mask] >= 2
                            if predicted != d_taken[seq]:
                                pass_dead = True
                                n_advance_wrong += 1
                        elif d_store[seq]:
                            inst = entries[seq].inst
                            data_reg = inst.srcs[0]
                            base_reg = inst.srcs[1]
                            st = sp_state[base_reg]
                            base_inv = (
                                st != sA
                                and (st == sI
                                     or (reg_ready[base_reg] > now
                                         and pending[base_reg] > now)))
                            if base_inv or d_addr[seq] is None:
                                unknown_store = True
                                n_unknown_stores += 1
                            else:
                                st = sp_state[data_reg]
                                data_inv = (
                                    st != sA
                                    and (st == sI
                                         or (reg_ready[data_reg] > now
                                             and pending[data_reg]
                                             > now)))
                                if data_inv:
                                    # ASC write of the INVALID marker.
                                    n_asc_writes += 1
                                    asc_clock += 1
                                    addr = d_addr[seq]
                                    si = (addr // asc_word) % asc_nsets
                                    if asc_set_gen[si] != asc_gen:
                                        asc_sets[si].clear()
                                        asc_set_gen[si] = asc_gen
                                    aset = asc_sets[si]
                                    if addr not in aset and \
                                            len(aset) >= asc_assoc:
                                        victim = min(
                                            aset,
                                            key=lambda a: aset[a][1])
                                        del aset[victim]
                                        asc_rep_gen[si] = asc_gen
                                        n_asc_repl += 1
                                    aset[addr] = (INVALID, asc_clock)
                        adv_ptr = seq + 1
                        pass_defers += 1
                        slots += 1
                        if pass_dead:
                            break
                        continue

                    if wait_until_a > now:
                        # In-order advance stream waits for a bypass.
                        if slots == 0:
                            wake = wait_until_a
                            peeks = 1
                        break

                    # Valid operands: execute speculatively.
                    code = port_code[seq]
                    if code == 0:          # MEM
                        if m_used >= m_ports:
                            break
                        m_used += 1
                    elif code == 1:        # ALU: I port with M fallback
                        if i_used < i_ports:
                            i_used += 1
                        elif m_used < m_ports:
                            m_used += 1
                        else:
                            break
                    elif code == 2:        # FP / MULDIV
                        if f_used >= f_ports:
                            break
                        f_used += 1
                    elif code == 3:        # BR
                        if b_used >= b_ports:
                            break
                        b_used += 1

                    n_advance_execs += 1
                    k = d_kind[seq]
                    if k == 1:
                        # Predicate-nullified: flows through.
                        if persist:
                            n_rs_writes += 1
                            rs_live[seq] = 1
                            rs_ready[seq] = now + 1
                        if d_branch[seq]:
                            # Early resolve + train (nullified branches
                            # train not-taken).
                            idx = (d_pc[seq] ^ bp_history) & bp_mask
                            counter = bp_counters[idx]
                            n_bp += 1
                            bp_counters[idx] = BP_DEC[counter]
                            bp_history = (bp_history << 1) & bp_hist_mask
                            n_advance_branches += 1
                            if counter >= 2:
                                n_bp_wrong += 1
                                t = now + mispredict_penalty
                                if t > adv_stall_until:
                                    adv_stall_until = t
                                n_advance_redirects += 1
                        adv_ptr = seq + 1
                    elif k == 2:
                        # Resolve during preexecution: train early; a
                        # would-be mispredict charges the *advance*
                        # stream, and rally later merges with no flush.
                        idx = (d_pc[seq] ^ bp_history) & bp_mask
                        counter = bp_counters[idx]
                        tk = d_taken[seq]
                        n_bp += 1
                        if tk:
                            bp_counters[idx] = BP_INC[counter]
                            bp_history = ((bp_history << 1) | 1) \
                                & bp_hist_mask
                            wrong = counter < 2
                        else:
                            bp_counters[idx] = BP_DEC[counter]
                            bp_history = (bp_history << 1) & bp_hist_mask
                            wrong = counter >= 2
                        n_advance_branches += 1
                        if wrong:
                            n_bp_wrong += 1
                            t = now + mispredict_penalty
                            if t > adv_stall_until:
                                adv_stall_until = t
                            n_advance_redirects += 1
                        if persist:
                            n_rs_writes += 1
                            rs_live[seq] = 1
                            rs_ready[seq] = now + 1
                        adv_ptr = seq + 1
                    elif k == 3:
                        # ASC write of the store data.
                        n_asc_writes += 1
                        asc_clock += 1
                        addr = d_addr[seq]
                        si = (addr // asc_word) % asc_nsets
                        if asc_set_gen[si] != asc_gen:
                            asc_sets[si].clear()
                            asc_set_gen[si] = asc_gen
                        aset = asc_sets[si]
                        if addr not in aset and len(aset) >= asc_assoc:
                            victim = min(aset, key=lambda a: aset[a][1])
                            del aset[victim]
                            asc_rep_gen[si] = asc_gen
                            n_asc_repl += 1
                        aset[addr] = (d_value[seq], asc_clock)
                        n_advance_stores += 1
                        if persist:
                            n_rs_writes += 1
                            rs_live[seq] = 1
                            rs_ready[seq] = now + 1
                        adv_ptr = seq + 1
                    elif k == 4:
                        # Advance load: ASC forwarding, prefetch, the
                        # Section 3.5 WAW rule and S-bits.
                        addr = d_addr[seq]
                        n_asc_reads += 1
                        si = (addr // asc_word) % asc_nsets
                        if asc_set_gen[si] == asc_gen:
                            e = asc_sets[si].get(addr)
                        else:
                            e = None
                        if e is not None:
                            outcome = 2 if e[0] is INVALID else 1
                        elif asc_rep_gen[si] == asc_gen:
                            outcome = 3        # miss-speculative
                        else:
                            outcome = 0        # miss
                        # Prefetch effect (inline L1D hit fast path).
                        line = addr // l1d_line
                        cset = l1d_sets[line % l1d_nsets]
                        if cset is not None and line in cset:
                            fill_wait = 0
                            if h_pending and now < h_horizon:
                                key = (l1d_id, line)
                                r = h_pending.get(key)
                                if r is not None:
                                    if r <= now:
                                        del h_pending[key]
                                    else:
                                        fill_wait = r - now
                            l1d_acc += 1
                            l1d_clk += 1
                            cset[line] = l1d_clk
                            l1d_hit += 1
                            if fill_wait:
                                l1_miss = True
                                lat = (fill_wait
                                       if fill_wait > l1d_latency
                                       else l1d_latency)
                            else:
                                l1_miss = False
                                lat = l1d_latency
                            res_ready = now + lat
                        else:
                            l1d_cache.accesses = l1d_acc
                            l1d_cache.hits = l1d_hit
                            l1d_cache._clock = l1d_clk
                            result = access(addr, now)
                            l1d_acc = l1d_cache.accesses
                            l1d_hit = l1d_cache.hits
                            l1d_clk = l1d_cache._clock
                            h_horizon = hierarchy._pending_horizon
                            l1_miss = result.l1_miss
                            res_ready = result.ready
                        n_advance_loads += 1
                        if outcome == 1:       # ASC hit: forward
                            for dest in d_dests[seq]:
                                sp_state[dest] = sA
                                srf_ready[dest] = now + 1
                                pready_stamp[dest] = 0
                            if persist:
                                n_rs_writes += 1
                                rs_live[seq] = 1
                                rs_ready[seq] = now + 1
                                rs_sbit[seq] = 0
                            n_asc_forwards += 1
                        elif outcome == 2:     # hit-invalid: suppress
                            for dest in d_dests[seq]:
                                sp_state[dest] = sI
                        else:
                            if unknown_store or outcome == 3:
                                data_spec = 1
                                observed = mem_vals.get(addr, 0)
                                n_sbit_loads += 1
                            else:
                                data_spec = 0
                                observed = d_value[seq]
                            if persist:
                                n_rs_writes += 1
                                rs_live[seq] = 1
                                rs_ready[seq] = res_ready
                                rs_value[seq] = observed
                                rs_sbit[seq] = data_spec
                            if not l1_miss:
                                for dest in d_dests[seq]:
                                    sp_state[dest] = sA
                                    srf_ready[dest] = res_ready
                                    pready_stamp[dest] = 0
                            elif l1_miss_writes_srf:
                                # Section 3.5 ablation: expose the fill
                                # through the SRF.
                                n_advance_load_misses += 1
                                for dest in d_dests[seq]:
                                    sp_state[dest] = sA
                                    srf_ready[dest] = res_ready
                                    pready_stamp[dest] = 0
                            else:
                                # Section 3.5: consumers defer to a
                                # later pass (the RS catches the fill).
                                n_advance_load_misses += 1
                                for dest in d_dests[seq]:
                                    sp_state[dest] = sI
                                    pready_stamp[dest] = epoch
                                    pready_val[dest] = res_ready
                                    if hardware_restart:
                                        if res_ready - now < WHEEL:
                                            slot = wheel[res_ready & 63]
                                            if slot:
                                                slot[:] = [
                                                    e for e in slot
                                                    if e[2] == epoch
                                                    and e[0] > now]
                                            slot.append(
                                                (res_ready, dest, epoch))
                                        else:
                                            heappush(heap, (res_ready,
                                                            dest, epoch))
                        adv_ptr = seq + 1
                    else:
                        # ALU / FP / mul-div / nop.
                        latency = d_lat[seq]
                        dests = d_dests[seq]
                        for dest in dests:
                            sp_state[dest] = sA
                            srf_ready[dest] = now + latency
                            pready_stamp[dest] = 0
                        if persist and (dests or entries[seq].inst.opcode
                                        is NOP):
                            n_rs_writes += 1
                            rs_live[seq] = 1
                            rs_ready[seq] = now + latency
                        adv_ptr = seq + 1
                    new_execs += 1
                    pass_execs += 1
                    slots += 1

                # RS puts above track the high-water lazily: every put
                # seq is < adv_ptr by loop end, so one bump keeps rs_hi
                # a valid upper bound (reads only tighten downward).
                if persist and adv_ptr > rs_hi:
                    rs_hi = adv_ptr

                if hardware_restart and not pass_dead and not restarted:
                    # Footnote-1 mechanism: a fruitless pass restarts
                    # itself when there is an in-flight fill to
                    # rendezvous with.  min-pending query over the
                    # epoch-stamped fill calendar (wheel slots scanned
                    # in arrival order, then the far heap).
                    processed = pass_execs + pass_defers
                    if processed >= hw_window and \
                            pass_execs < processed * hw_fraction:
                        best = _INF
                        for k in range(WHEEL):
                            slot = wheel[(now + 1 + k) & 63]
                            if not slot:
                                continue
                            found = False
                            live = []
                            for e in slot:
                                if (e[2] == epoch and e[0] > now
                                        and pready_stamp[e[1]] == epoch
                                        and pready_val[e[1]] == e[0]):
                                    live.append(e)
                                    found = True
                            slot[:] = live
                            if found:
                                # All live entries in one slot share a
                                # fill cycle (unique residue in the
                                # wheel horizon).
                                best = live[0][0]
                                break
                        while heap:
                            e = heap[0]
                            if (e[2] != epoch or e[0] <= now
                                    or pready_stamp[e[1]] != epoch
                                    or pready_val[e[1]] != e[0]):
                                heappop(heap)
                                continue
                            if e[0] < best:
                                best = e[0]
                            break
                        if best < _INF:
                            pass_execs = 0
                            pass_defers = 0
                            epoch += 1
                            sA += 4
                            sI += 4
                            asc_gen += 1
                            unknown_store = False
                            pass_dead = False
                            adv_ptr = trigger_seq
                            refill = now + advance_restart_refill
                            alt = best - advance_restart_refill
                            if alt > refill:
                                refill = alt
                            adv_stall_until = refill
                            n_advance_restarts += 1
                            n_hw_restarts += 1
                            wake = None

            if adv_ptr > max_peek:
                max_peek = adv_ptr
            if new_execs:
                c_exec += 1
            else:
                # No new executions: the cycle belongs to the latency
                # that initiated advance mode.
                c_load += 1
            n_advance_cycles += 1
            now += 1
            if wake is not None and not new_execs:
                # Nothing can change before min(wake, trigger_ready):
                # jump there, replicating the per-cycle attribution and
                # poll counters.
                target = wake if wake < trigger_ready else trigger_ready
                if target > now:
                    limit = arch_ptr + buffer_size
                    if limit > n:
                        limit = n
                    if f_fetched < limit:
                        if f_stall > now:
                            skip_to = (target if target < f_stall
                                       else f_stall)
                        else:
                            skip_to = now
                    else:
                        skip_to = target
                    if skip_to > now:
                        k = skip_to - now
                        c_load += k
                        n_advance_cycles += k
                        if peeks:
                            n_iq_peeks += peeks * k
                        now = skip_to
            continue

        if now < arch_stall_until:
            c_other += 1
            now += 1
            if arch_stall_until > now:
                limit = arch_ptr + buffer_size
                if limit > n:
                    limit = n
                if f_fetched < limit:
                    if f_stall > now:
                        skip_to = (arch_stall_until
                                   if arch_stall_until < f_stall
                                   else f_stall)
                    else:
                        skip_to = now
                else:
                    skip_to = arch_stall_until
                if skip_to > now:
                    c_other += skip_to - now
                    now = skip_to
            continue

        if (mode == 2 and enable_regroup
                and arch_ptr + width <= max_peek and rs_live[arch_ptr]):
            # Bulk rally-merge fast path: with dynamic regrouping, a
            # run of preserved non-store, non-S-bit results merges
            # exactly ``width`` per cycle (merges consume no ports) and
            # touches only ``reg_ready``/``pending``.  Replay whole
            # such cycles here — fetch still advances per cycle — and
            # stop strictly before ``max_peek`` so the rally-exit check
            # of the ordinary path below stays the one that fires.
            i = arch_ptr
            bound = max_peek - 1
            while (i < bound and rs_live[i] and not rs_sbit[i]
                   and rs_ready[i] <= now and not d_store[i]):
                i += 1
            cycles = (i - arch_ptr) // width
            if cycles > 0:
                aptr = arch_ptr
                cyc = now
                for ci in range(cycles):
                    # Inline fetch at ``cyc`` (same as the top block);
                    # the first batched cycle's fetch already ran at
                    # the top of the main loop.
                    if ci and f_fetched < n and cyc >= f_stall:
                        limit = aptr + buffer_size
                        if limit > n:
                            limit = n
                        if f_fetched < limit:
                            stop = f_fetched + fetch_width
                            if stop > limit:
                                stop = limit
                            fu = f_fetched
                            last = f_last
                            while fu < stop:
                                line = f_lines[fu]
                                if line != last:
                                    cset = l1i_sets[line % l1i_nsets]
                                    if cset is not None and line in cset:
                                        fill_wait = 0
                                        if h_pending and cyc < h_horizon:
                                            key = (l1i_id, line)
                                            r = h_pending.get(key)
                                            if r is not None:
                                                if r <= cyc:
                                                    del h_pending[key]
                                                else:
                                                    fill_wait = r - cyc
                                        l1i_acc += 1
                                        l1i_clk += 1
                                        cset[line] = l1i_clk
                                        l1i_hit += 1
                                        if fill_wait > l1i_latency:
                                            f_stall = cyc + fill_wait
                                            frontend \
                                                .icache_stall_cycles \
                                                += fill_wait
                                            f_last = line
                                            f_fetched = fu
                                            break
                                    else:
                                        l1i_cache.accesses = l1i_acc
                                        l1i_cache.hits = l1i_hit
                                        l1i_cache._clock = l1i_clk
                                        result = access(
                                            f_pcs[fu] * inst_bytes, cyc,
                                            "ifetch")
                                        l1i_acc = l1i_cache.accesses
                                        l1i_hit = l1i_cache.hits
                                        l1i_clk = l1i_cache._clock
                                        h_horizon = \
                                            hierarchy._pending_horizon
                                        if result.latency > l1i_latency:
                                            f_stall = result.ready
                                            frontend \
                                                .icache_stall_cycles \
                                                += result.latency
                                            f_last = line
                                            f_fetched = fu
                                            break
                                    last = line
                                e = f_run[fu]
                                fu = e if e < stop else stop
                            else:
                                f_last = last
                                f_fetched = fu
                    for seq in range(aptr, aptr + width):
                        rs_live[seq] = 0
                        if replay is not None:
                            replay.commit(entries[seq])
                        for dest in d_dests[seq]:
                            reg_ready[dest] = cyc
                            pending[dest] = 0
                    aptr += width
                    cyc += 1
                count = cycles * width
                n_iq_dequeues += count
                n_rs_merges += count
                n_rally_merges += count
                n_instructions += count
                arch_ptr = aptr
                n_rally_cycles += cycles
                c_exec += cycles
                now = cyc
                continue

        # ---- architectural / rally issue ------------------------------
        fetched_until = f_fetched
        m_used = i_used = f_used = b_used = 0
        issued = 0
        reason_load = False
        wait_until = now + 1
        trigger = -1
        wake = _INF
        dq = waw_poll = 0
        aptr = arch_ptr
        rallying = aptr < max_peek
        dynamic_groups = enable_regroup and rallying

        if aptr < fetched_until and width:
            # Same pre-arming as the advance loop: the scalar reference
            # resets wake=None per dequeue; only the last value is read.
            wake = None
        while aptr < fetched_until and issued < width:
            seq = aptr
            n_iq_dequeues += 1

            if rs_live[seq]:
                if rs_ready[seq] > now:
                    # Preserved result still in flight: the rally
                    # stream stalls on it and re-triggers advance mode.
                    reason_load = True
                    wait_until = rs_ready[seq]
                    trigger = seq
                    break
                if not rs_sbit[seq]:
                    # Merge the preserved result (no re-execution).
                    rs_live[seq] = 0
                    n_rs_merges += 1
                    n_rally_merges += 1
                    n_instructions += 1
                    if replay is not None:
                        replay.commit(entries[seq])
                    for dest in d_dests[seq]:
                        reg_ready[dest] = now
                        pending[dest] = 0
                    if d_store[seq]:
                        # Pre-executed store re-performs its access via
                        # the SMAQ address (Section 3.6).
                        addr = d_addr[seq]
                        line = addr // l1d_line
                        cset = l1d_sets[line % l1d_nsets]
                        if cset is not None and line in cset:
                            if h_pending and now < h_horizon:
                                key = (l1d_id, line)
                                r = h_pending.get(key)
                                if r is not None and r <= now:
                                    del h_pending[key]
                            l1d_acc += 1
                            l1d_clk += 1
                            cset[line] = l1d_clk
                            l1d_hit += 1
                        else:
                            l1d_cache.accesses = l1d_acc
                            l1d_cache.hits = l1d_hit
                            l1d_cache._clock = l1d_clk
                            access(addr, now, kind="store")
                            l1d_acc = l1d_cache.accesses
                            l1d_hit = l1d_cache.hits
                            l1d_clk = l1d_cache._clock
                            h_horizon = hierarchy._pending_horizon
                        mem_vals[addr] = d_value[seq]
                        n_smaq_reads += 1
                    # A pre-resolved branch merges with no flush
                    # (already_resolved: the front end moved on).
                    issued += 1
                    aptr = seq + 1
                    if not dynamic_groups and d_stop[seq]:
                        break
                    continue
                if m_used >= m_ports:
                    break
                m_used += 1
                # S-bit verification: re-perform the load and compare.
                rs_live[seq] = 0
                n_rs_merges += 1
                n_sbit_verifications += 1
                n_smaq_reads += 1
                addr = d_addr[seq]
                line = addr // l1d_line
                cset = l1d_sets[line % l1d_nsets]
                if cset is not None and line in cset:
                    fill_wait = 0
                    if h_pending and now < h_horizon:
                        key = (l1d_id, line)
                        r = h_pending.get(key)
                        if r is not None:
                            if r <= now:
                                del h_pending[key]
                            else:
                                fill_wait = r - now
                    l1d_acc += 1
                    l1d_clk += 1
                    cset[line] = l1d_clk
                    l1d_hit += 1
                    if fill_wait:
                        l1_miss = True
                        latency = (fill_wait if fill_wait > l1d_latency
                                   else l1d_latency)
                    else:
                        l1_miss = False
                        latency = l1d_latency
                else:
                    l1d_cache.accesses = l1d_acc
                    l1d_cache.hits = l1d_hit
                    l1d_cache._clock = l1d_clk
                    result = access(addr, now)
                    l1d_acc = l1d_cache.accesses
                    l1d_hit = l1d_cache.hits
                    l1d_clk = l1d_cache._clock
                    h_horizon = hierarchy._pending_horizon
                    latency = result.latency
                    l1_miss = result.l1_miss
                n_instructions += 1
                if replay is not None:
                    replay.commit(entries[seq])
                done = now + latency
                for dest in d_dests[seq]:
                    reg_ready[dest] = done
                    pending[dest] = done if l1_miss else 0
                issued += 1
                aptr = seq + 1
                if rs_value[seq] != d_value[seq]:
                    # Mismatch: squash everything younger, re-execute.
                    n_value_flushes += 1
                    if rs_hi > seq + 1:
                        rs_live[seq + 1:rs_hi] = bytes(rs_hi - seq - 1)
                        rs_hi = seq + 1
                    if seq + 1 < max_peek:
                        max_peek = seq + 1
                    arch_stall_until = now + flush_penalty
                    wait_until = arch_stall_until
                    break
                if not dynamic_groups and d_stop[seq]:
                    break
                continue

            # Normal in-order execution.  Port counters are claimed
            # eagerly: every non-issuing path below ends the cycle with
            # ``break``, after which the counters are dead until the
            # next cycle's reset.
            code = port_code[seq]
            if code == 0:          # MEM
                if m_used >= m_ports:
                    break
                m_used += 1
            elif code == 1:        # ALU: I port with M fallback
                if i_used < i_ports:
                    i_used += 1
                elif m_used < m_ports:
                    m_used += 1
                else:
                    break
            elif code == 2:        # FP / MULDIV
                if f_used >= f_ports:
                    break
                f_used += 1
            elif code == 3:        # BR
                if b_used >= b_ports:
                    break
                b_used += 1
            stall = 0
            load_wait = False
            for s in d_srcs[seq]:
                r = reg_ready[s]
                if r > now:
                    if r > stall:
                        stall = r
                    if pending[s] > now:
                        load_wait = True
            if stall:
                wait_until = stall
                if load_wait:
                    reason_load = True
                    trigger = seq
                elif issued == 0:
                    # Pure operand poll: repeats identically until the
                    # producers complete.
                    wake = wait_until
                    dq = 1
                break

            latency = d_lat[seq]
            l1_miss = False
            if d_mem[seq]:
                addr = d_addr[seq]
                line = addr // l1d_line
                cset = l1d_sets[line % l1d_nsets]
                if cset is not None and line in cset:
                    # L1D hit: same stats/LRU updates as Cache.access;
                    # an in-flight fill serves with its remaining time
                    # and still counts as a miss.
                    fill_wait = 0
                    if h_pending and now < h_horizon:
                        key = (l1d_id, line)
                        r = h_pending.get(key)
                        if r is not None:
                            if r <= now:
                                del h_pending[key]
                            else:
                                fill_wait = r - now
                    l1d_acc += 1
                    l1d_clk += 1
                    cset[line] = l1d_clk
                    l1d_hit += 1
                    if d_load[seq]:
                        n_loads += 1
                        if fill_wait:
                            l1_miss = True
                            n_load_misses += 1
                            latency = (fill_wait
                                       if fill_wait > l1d_latency
                                       else l1d_latency)
                        else:
                            latency = l1d_latency
                    else:
                        mem_vals[addr] = d_value[seq]
                else:
                    l1d_cache.accesses = l1d_acc
                    l1d_cache.hits = l1d_hit
                    l1d_cache._clock = l1d_clk
                    if d_load[seq]:
                        result = access(addr, now)
                        latency = result.latency
                        l1_miss = result.l1_miss
                        n_loads += 1
                        if l1_miss:
                            n_load_misses += 1
                    else:
                        access(addr, now, kind="store")
                        mem_vals[addr] = d_value[seq]
                    l1d_acc = l1d_cache.accesses
                    l1d_hit = l1d_cache.hits
                    l1d_clk = l1d_cache._clock
                    h_horizon = hierarchy._pending_horizon

            done = now + latency
            dests = d_dests[seq]
            if dests:
                stall = 0
                load_horizon = 0
                waw_count = 0
                for d in dests:
                    r = reg_ready[d]
                    if r > done:
                        waw_count += 1
                        if r > stall:
                            stall = r
                        p = pending[d]
                        if p > now and p > load_horizon:
                            load_horizon = p
                if waw_count:
                    wait_until = stall
                    reason_load = bool(load_horizon)
                    n_waw_stalls += 1
                    mem = d_mem[seq]
                    if issued == 0 and not mem and waw_count == 1:
                        # Pure WAW poll (no cache access to repeat,
                        # single conflicting register).
                        wake = wait_until - latency
                        if load_horizon and load_horizon < wake:
                            wake = load_horizon
                        dq = 1
                        waw_poll = 1
                    break
                for d in dests:
                    reg_ready[d] = done
                    pending[d] = done if l1_miss else 0
            n_instructions += 1
            if replay is not None:
                replay.commit(entries[seq])
            issued += 1
            aptr = seq + 1
            if d_branch[seq]:
                # Inline frontend.resolve_branch: gshare.update, then a
                # redirect + RS flush on a mispredict.
                idx = (d_pc[seq] ^ bp_history) & bp_mask
                counter = bp_counters[idx]
                tk = d_taken[seq]
                n_bp += 1
                if tk:
                    bp_counters[idx] = BP_INC[counter]
                    bp_history = ((bp_history << 1) | 1) & bp_hist_mask
                    wrong = counter < 2
                else:
                    bp_counters[idx] = BP_DEC[counter]
                    bp_history = (bp_history << 1) & bp_hist_mask
                    wrong = counter >= 2
                if wrong:
                    n_bp_wrong += 1
                    fe_redirects += 1
                    if f_fetched > seq + 1:
                        f_fetched = seq + 1
                    t = now + mispredict_penalty
                    if t > f_stall:
                        f_stall = t
                    f_last = -1
                    n_mispredicts += 1
                    if rs_hi > seq + 1:
                        rs_live[seq + 1:rs_hi] = bytes(rs_hi - seq - 1)
                        rs_hi = seq + 1
                    if seq + 1 < max_peek:
                        max_peek = seq + 1
                    break
            if d_stop[seq] and not dynamic_groups:
                break
        arch_ptr = aptr
        # ---- end issue loop -------------------------------------------

        in_rally = mode == 2
        if in_rally:
            n_rally_cycles += 1
            if aptr >= max_peek:
                # Tighten the lazy high-water past dead tops in one C
                # scan (rfind of the last live byte).
                rs_hi = rs_live.rfind(1, 0, rs_hi) + 1
                if rs_hi <= aptr:     # rs.max_seq() < aptr
                    mode = 0
                    in_rally = False

        front_end_stall = aptr >= fetched_until and aptr >= f_fetched
        if issued:
            c_exec += 1
        elif front_end_stall:
            c_fe += 1
        elif reason_load:
            c_load += 1
        else:
            c_other += 1
        now += 1

        if trigger >= 0 and wait_until > now:
            # Architectural stall on a load: start preexecution.
            mode = 1
            trigger_seq = trigger
            trigger_ready = wait_until
            adv_ptr = trigger
            adv_stall_until = now + advance_entry_delay
            pass_execs = 0
            pass_defers = 0
            epoch += 1
            sA += 4
            sI += 4
            asc_gen += 1
            unknown_store = False
            pass_dead = False
            n_advance_entries += 1
        elif not issued and wake is not None:
            # A pure stall cycle: jump the clock, replicating the poll
            # counters and the per-cycle attribution.
            if wake > now:
                limit = aptr + buffer_size
                if limit > n:
                    limit = n
                if f_fetched < limit:
                    if f_stall > now:
                        skip_to = wake if wake < f_stall else f_stall
                    else:
                        skip_to = now
                else:
                    skip_to = wake
                if now < skip_to < _INF:
                    k = skip_to - now
                    if front_end_stall:
                        c_fe += k
                    elif reason_load:
                        c_load += k
                    else:
                        c_other += k
                    if in_rally:
                        n_rally_cycles += k
                    if dq:
                        n_iq_dequeues += k
                    if waw_poll:
                        n_waw_stalls += k
                    now = skip_to

    # ---- write-back ---------------------------------------------------
    from .core import Mode
    core.mode = (Mode.ARCHITECTURAL, Mode.ADVANCE, Mode.RALLY)[mode]
    core.arch_ptr = arch_ptr
    core.adv_ptr = adv_ptr
    core.max_peek = max_peek
    core.trigger_seq = trigger_seq
    core.trigger_ready = trigger_ready
    core.adv_stall_until = adv_stall_until
    core.arch_stall_until = arch_stall_until
    core.unknown_store = unknown_store
    core.pass_dead = pass_dead
    core._pass_execs = pass_execs
    core._pass_defers = pass_defers
    core._srf_epoch = epoch
    l1i_cache.accesses = l1i_acc
    l1i_cache.hits = l1i_hit
    l1i_cache._clock = l1i_clk
    l1d_cache.accesses = l1d_acc
    l1d_cache.hits = l1d_hit
    l1d_cache._clock = l1d_clk
    frontend.fetched_until = f_fetched
    frontend.stall_until = f_stall
    frontend._last_line = f_last
    frontend.redirects += fe_redirects
    predictor._history = bp_history
    predictor.predictions += n_bp
    predictor.mispredictions += n_bp_wrong
    rs = core.rs
    rs.writes += n_rs_writes
    rs.reads += n_rs_reads
    rs.merges += n_rs_merges
    asc.writes += n_asc_writes
    asc.reads += n_asc_reads
    asc.forwards += n_asc_forwards
    asc.replacements += n_asc_repl
    stats.instructions += n_instructions
    counters = stats.counters
    # Counter keys appear only when the scalar loop would have created
    # them (it only ever adds nonzero increments).
    for key, tally in (
            ("iq_peeks", n_iq_peeks),
            ("iq_dequeues", n_iq_dequeues),
            ("waw_stalls", n_waw_stalls),
            ("advance_cycles", n_advance_cycles),
            ("rally_cycles", n_rally_cycles),
            ("advance_entries", n_advance_entries),
            ("advance_restarts", n_advance_restarts),
            ("hardware_restarts", n_hw_restarts),
            ("advance_merges", n_advance_merges),
            ("advance_deferrals", n_advance_deferrals),
            ("advance_wrong_path", n_advance_wrong),
            ("unknown_address_stores", n_unknown_stores),
            ("advance_executions", n_advance_execs),
            ("advance_branches", n_advance_branches),
            ("advance_redirects", n_advance_redirects),
            ("advance_loads", n_advance_loads),
            ("asc_forwards", n_asc_forwards),
            ("sbit_loads", n_sbit_loads),
            ("advance_load_misses", n_advance_load_misses),
            ("advance_stores", n_advance_stores),
            ("rally_merges", n_rally_merges),
            ("smaq_reads", n_smaq_reads),
            ("sbit_verifications", n_sbit_verifications),
            ("value_flushes", n_value_flushes),
            ("mispredicts", n_mispredicts),
            ("loads_issued", n_loads),
            ("l1d_load_misses", n_load_misses),
            ("runahead_exit_refills", n_refills),
    ):
        if tally:
            counters[key] += tally
    breakdown = stats.cycle_breakdown
    breakdown[EXECUTION] += c_exec
    breakdown[FRONT_END] += c_fe
    breakdown[LOAD] += c_load
    breakdown[OTHER] += c_other
    stats.cycles += c_exec + c_fe + c_load + c_other
    return core.finalize()
