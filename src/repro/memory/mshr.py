"""Miss-status holding registers: the outstanding-miss limit of Table 2.

The machine supports at most 16 concurrently outstanding misses.  An access
that needs a new miss when all registers are busy is delayed until the
earliest outstanding miss completes — this is the mechanism that bounds the
memory-level parallelism every model (in-order, multipass, runahead, OOO)
can extract.
"""

from __future__ import annotations

import heapq
from typing import Dict, List


class MSHRFile:
    """Tracks completion times of outstanding line fills."""

    def __init__(self, capacity: int = 16):
        if capacity < 1:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        self._completions: List[int] = []   # heap of ready cycles
        self._by_line: Dict[int, int] = {}  # line -> ready cycle
        self.allocations = 0
        self.merges = 0
        self.full_stall_cycles = 0

    def _expire(self, now: int) -> None:
        while self._completions and self._completions[0] <= now:
            heapq.heappop(self._completions)
        by_line = self._by_line
        if by_line:
            # Prune in place: the columnar kernels hold a localized
            # reference to this dict, so it must never be rebound.
            expired = [line for line, t in by_line.items() if t <= now]
            for line in expired:
                del by_line[line]

    def outstanding(self, now: int) -> int:
        self._expire(now)
        return len(self._completions)

    def pending_ready(self, line: int, now: int):
        """If ``line`` is already in flight, its ready cycle, else None."""
        ready = self._by_line.get(line)
        if ready is not None and ready > now:
            return ready
        return None

    def allocate(self, line: int, now: int, latency: int) -> int:
        """Start a fill for ``line``; returns its completion cycle.

        Merges into an in-flight fill of the same line when present; when
        the file is full, the fill start is delayed until a register frees
        up (and the delay is recorded in ``full_stall_cycles``).
        """
        self._expire(now)
        pending = self.pending_ready(line, now)
        if pending is not None:
            self.merges += 1
            return pending
        start = now
        if len(self._completions) >= self.capacity:
            earliest = self._completions[0]
            self.full_stall_cycles += max(0, earliest - now)
            start = max(now, earliest)
            self._expire(start)
        ready = start + latency
        heapq.heappush(self._completions, ready)
        self._by_line[line] = ready
        self.allocations += 1
        return ready
