"""Memory subsystem: caches, MSHRs and the evaluated hierarchies."""

from .cache import Cache, CacheConfig
from .configs import (HIERARCHIES, base_hierarchy, config1_hierarchy,
                      config2_hierarchy)
from .hierarchy import (AccessResult, HierarchyConfig, HierarchyStats,
                        MemoryHierarchy)
from .mshr import MSHRFile

__all__ = [
    "AccessResult", "Cache", "CacheConfig", "HIERARCHIES",
    "HierarchyConfig", "HierarchyStats", "MSHRFile", "MemoryHierarchy",
    "base_hierarchy", "config1_hierarchy", "config2_hierarchy",
]
