"""Multi-level memory hierarchy with MSHR-limited miss overlap.

Latency semantics follow Table 2 of the paper: the reported latency of each
level is the *total* latency of an access that hits there (L1 1 cycle,
L2 5, L3 12, main memory 145).  Misses install lines at every level on the
way in; a line whose fill is still in flight serves later accesses with the
remaining fill time, which is how overlapping misses to the same line are
shared rather than duplicated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .cache import Cache, CacheConfig
from .mshr import MSHRFile


class AccessResult:
    """Outcome of one hierarchy access."""

    __slots__ = ("latency", "level", "ready", "l1_miss")

    def __init__(self, latency: int, level: str, ready: int, l1_miss: bool):
        self.latency = latency
        self.level = level
        self.ready = ready
        self.l1_miss = l1_miss

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"AccessResult(latency={self.latency}, level={self.level!r},"
                f" ready={self.ready})")


@dataclass(frozen=True)
class HierarchyConfig:
    """Parameters of a full memory system (one column of Fig. 7)."""

    name: str
    l1i: CacheConfig
    l1d: CacheConfig
    l2: CacheConfig
    l3: Optional[CacheConfig]
    memory_latency: int
    max_outstanding_misses: int = 16

    def build(self) -> "MemoryHierarchy":
        return MemoryHierarchy(self)


@dataclass
class HierarchyStats:
    """Aggregated counters, filled on demand from the caches."""

    accesses: Dict[str, int] = field(default_factory=dict)
    misses: Dict[str, int] = field(default_factory=dict)
    memory_accesses: int = 0
    mshr_merges: int = 0
    mshr_full_stall_cycles: int = 0


class MemoryHierarchy:
    """L1I + L1D + unified L2 (+ optional L3) + main memory."""

    def __init__(self, config: HierarchyConfig):
        self.config = config
        self.l1i = Cache(config.l1i)
        self.l1d = Cache(config.l1d)
        self.l2 = Cache(config.l2)
        self.l3 = Cache(config.l3) if config.l3 else None
        self.mshrs = MSHRFile(config.max_outstanding_misses)
        self.memory_accesses = 0
        # (cache id, line) -> fill-ready cycle, cleaned lazily.
        self._pending: Dict[tuple, int] = {}
        # Latest fill-ready cycle ever marked pending: when ``now`` has
        # passed it, every ``_pending`` entry is expired and the hit
        # fast path can skip the per-access dict probe entirely.
        self._pending_horizon = 0
        # The level walks, prebuilt (``_data_levels`` rebuilt these
        # lists on every access).
        levels = [self.l2] if self.l3 is None else [self.l2, self.l3]
        self._i_levels = tuple([self.l1i] + levels)
        self._d_levels = tuple([self.l1d] + levels)

    # -- internal helpers -----------------------------------------------------

    def _data_levels(self, first: Cache):
        return (self._i_levels if first is self.l1i else self._d_levels)

    def _pending_ready(self, cache: Cache, addr: int, now: int
                       ) -> Optional[int]:
        key = (id(cache), addr // cache.config.line_size)
        ready = self._pending.get(key)
        if ready is None:
            return None
        if ready <= now:
            del self._pending[key]
            return None
        return ready

    def _mark_pending(self, cache: Cache, addr: int, ready: int) -> None:
        self._pending[(id(cache), addr // cache.config.line_size)] = ready
        if ready > self._pending_horizon:
            self._pending_horizon = ready

    # -- public API -------------------------------------------------------------

    def access(self, addr: int, now: int, kind: str = "load"
               ) -> AccessResult:
        """Perform a timed access.

        Args:
            addr: byte address.
            now: current cycle.
            kind: ``"load"``, ``"store"`` or ``"ifetch"``.  Stores follow
                the load path (write-allocate) but callers typically ignore
                their latency; instruction fetches probe the L1I.

        Returns:
            the access latency, the name of the level that served it and
            the absolute ready cycle.
        """
        if kind == "ifetch":
            first = self.l1i
            levels = self._i_levels
        else:
            first = self.l1d
            levels = self._d_levels

        hit_level = None
        for depth, cache in enumerate(levels):
            if cache.access(addr):
                hit_level = depth
                break

        if hit_level == 0:
            # Hit fast path: the pending-fill probe only matters while a
            # fill is still in flight anywhere in the hierarchy.
            if self._pending:
                if now < self._pending_horizon:
                    pending = self._pending_ready(first, addr, now)
                    if pending is not None:
                        latency = max(first.config.latency, pending - now)
                        return AccessResult(latency, first.config.name,
                                            now + latency, True)
                else:
                    self._pending.clear()
            latency = first.config.latency
            return AccessResult(latency, first.config.name, now + latency,
                                False)

        if hit_level is not None:
            serving = levels[hit_level]
            pending = self._pending_ready(serving, addr, now)
            base_latency = serving.config.latency
            if pending is not None:
                base_latency = max(base_latency, pending - now)
            level_name = serving.config.name
        else:
            base_latency = self.config.memory_latency
            self.memory_accesses += 1
            level_name = "mem"

        # A demand miss past the L1: allocate an MSHR (merging with an
        # in-flight fill of the same L1 line when possible).
        line = addr // first.config.line_size
        if kind == "ifetch":
            ready = now + base_latency   # ifetch misses bypass the MSHRs
        else:
            ready = self.mshrs.allocate(line, now, base_latency)
        latency = ready - now

        # Install the line at the missing levels; mark fills pending.
        for cache in levels[:hit_level if hit_level is not None
                            else len(levels)]:
            cache.fill(addr)
            self._mark_pending(cache, addr, ready)
        return AccessResult(latency, level_name, ready, True)

    def settle(self) -> None:
        """Drop transient timing state, keeping cache contents.

        Used by sampled simulation between measurement units: functional
        warming installs lines with arbitrary timestamps; settling treats
        all fills as complete and the MSHR file as idle before a detailed
        unit starts a fresh clock.
        """
        self._pending.clear()
        self._pending_horizon = 0
        self.mshrs = MSHRFile(self.config.max_outstanding_misses)

    def stats(self) -> HierarchyStats:
        stats = HierarchyStats()
        for cache in (self.l1i, self.l1d, self.l2, self.l3):
            if cache is None:
                continue
            stats.accesses[cache.config.name] = cache.accesses
            stats.misses[cache.config.name] = cache.misses
        stats.memory_accesses = self.memory_accesses
        stats.mshr_merges = self.mshrs.merges
        stats.mshr_full_stall_cycles = self.mshrs.full_stall_cycles
        return stats
