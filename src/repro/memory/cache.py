"""Set-associative LRU cache model.

Timing is handled by :class:`~repro.memory.hierarchy.MemoryHierarchy`; this
class models placement/replacement state and hit/miss outcomes only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level.

    ``latency`` is the *total* load-to-use latency of a hit at this level,
    as reported in Table 2 (L1 1 cycle, L2 5, L3 12).
    """

    name: str
    size_bytes: int
    line_size: int
    assoc: int
    latency: int

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_size * self.assoc):
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"line*assoc ({self.line_size}x{self.assoc})"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_size * self.assoc)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size


class Cache:
    """LRU state for one level; addresses are byte addresses."""

    def __init__(self, config: CacheConfig):
        self.config = config
        # Set dicts are created on first touch: big lower-level caches
        # have thousands of sets, most never accessed in a short run,
        # and models are constructed inside benchmark timing loops.
        self._sets: List[Optional[Dict[int, int]]] = [None] * config.num_sets
        # Geometry hoisted out of ``config`` for the per-access hot path.
        self._line_size = config.line_size
        self._num_sets = config.num_sets
        self._clock = 0
        self.accesses = 0
        self.hits = 0
        self.misses = 0

    def _locate(self, addr: int):
        line = addr // self._line_size
        idx = line % self._num_sets
        cache_set = self._sets[idx]
        if cache_set is None:
            cache_set = self._sets[idx] = {}
        return cache_set, line

    def probe(self, addr: int) -> bool:
        """Non-destructive presence check (no LRU update, no stats)."""
        cache_set, line = self._locate(addr)
        return line in cache_set

    def access(self, addr: int) -> bool:
        """Look up ``addr``; returns hit/miss and updates LRU and stats.

        Misses do NOT allocate — the hierarchy calls :meth:`fill` when the
        line arrives so that replacement happens at fill time.
        """
        self.accesses += 1
        self._clock += 1
        line = addr // self._line_size
        idx = line % self._num_sets
        cache_set = self._sets[idx]
        if cache_set is None:
            cache_set = self._sets[idx] = {}
        if line in cache_set:
            cache_set[line] = self._clock
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, addr: int) -> Optional[int]:
        """Install the line containing ``addr``; return the evicted line."""
        self._clock += 1
        cache_set, line = self._locate(addr)
        if line in cache_set:
            cache_set[line] = self._clock
            return None
        victim = None
        if len(cache_set) >= self.config.assoc:
            victim = min(cache_set, key=cache_set.get)
            del cache_set[victim]
        cache_set[line] = self._clock
        return victim

    def invalidate_all(self) -> None:
        """Flush all contents (used between experiment repetitions)."""
        for cache_set in self._sets:
            if cache_set is not None:
                cache_set.clear()

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0
