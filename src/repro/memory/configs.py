"""The three memory hierarchies of the evaluation.

* ``base``    — Table 2: 16 KB 4-way L1 (1 cycle), 256 KB 8-way L2
  (5 cycles), 3 MB 12-way L3 (12 cycles), 145-cycle main memory.
* ``config1`` — Fig. 7: base caches with 200-cycle main memory.
* ``config2`` — Fig. 7: 8 KB L1 (1 cycle), 128 KB L2 (7 cycles),
  1.5 MB L3 (16 cycles), 200-cycle main memory.
"""

from __future__ import annotations

from .cache import CacheConfig
from .hierarchy import HierarchyConfig

KB = 1024
MB = 1024 * KB


def base_hierarchy() -> HierarchyConfig:
    """The contemporary (Itanium-2-like) hierarchy of Table 2."""
    return HierarchyConfig(
        name="base",
        l1i=CacheConfig("L1I", 16 * KB, 64, 4, 1),
        l1d=CacheConfig("L1D", 16 * KB, 64, 4, 1),
        l2=CacheConfig("L2", 256 * KB, 128, 8, 5),
        l3=CacheConfig("L3", 3 * MB, 128, 12, 12),
        memory_latency=145,
        max_outstanding_misses=16,
    )


def config1_hierarchy() -> HierarchyConfig:
    """Fig. 7 config1: base caches, 200-cycle main memory."""
    base = base_hierarchy()
    return HierarchyConfig(
        name="config1",
        l1i=base.l1i, l1d=base.l1d, l2=base.l2, l3=base.l3,
        memory_latency=200,
        max_outstanding_misses=base.max_outstanding_misses,
    )


def config2_hierarchy() -> HierarchyConfig:
    """Fig. 7 config2: smaller, slower caches and 200-cycle main memory."""
    return HierarchyConfig(
        name="config2",
        l1i=CacheConfig("L1I", 8 * KB, 64, 4, 1),
        l1d=CacheConfig("L1D", 8 * KB, 64, 4, 1),
        l2=CacheConfig("L2", 128 * KB, 128, 8, 7),
        l3=CacheConfig("L3", int(1.5 * MB), 128, 12, 16),
        memory_latency=200,
        max_outstanding_misses=16,
    )


HIERARCHIES = {
    "base": base_hierarchy,
    "config1": config1_hierarchy,
    "config2": config2_hierarchy,
}
