"""Compilation driver: the pass pipeline every workload goes through.

Mirrors the paper's toolchain at the granularity the simulators care about:
OpenIMPACT's aggressive acyclic scheduling becomes :func:`list_schedule`,
critical-instruction identification + RESTART insertion implements
Section 3.3, and EPIC issue-group formation provides the stop bits the
in-order dispersal logic consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.program import Program
from ..resources import PortModel
from .ifconvert import if_convert
from .restart import insert_restarts
from .scheduling import form_issue_groups, list_schedule


@dataclass(frozen=True)
class CompileOptions:
    """Knobs for the pass pipeline.

    Attributes:
        if_conversion: if-convert short forward hammocks into predicated
            code before scheduling (hyperblock-formation lite; off by
            default).
        reorder: run the block-local list scheduler.
        restarts: insert RESTART directives after critical-SCC loads.
        dominance_ratio: criticality threshold (Section 3.3's "much
            larger"); an SCC is critical when it feeds at least this many
            times more expensive instructions than feed it.
        ports: issue-port model used for scheduling and grouping.
    """

    if_conversion: bool = False
    reorder: bool = True
    restarts: bool = True
    dominance_ratio: float = 2.0
    ports: PortModel = PortModel()


def compile_program(program: Program,
                    options: CompileOptions = CompileOptions()) -> Program:
    """Run the full pass pipeline and return the schedulable program."""
    result = program
    if options.if_conversion:
        result = if_convert(result)
    if options.reorder:
        result = list_schedule(result, options.ports)
    if options.restarts:
        result = insert_restarts(result, options.dominance_ratio)
    result = form_issue_groups(result, options.ports)
    return result
