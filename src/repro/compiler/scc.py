"""Iterative Tarjan strongly-connected-components algorithm.

Used by the advance-restart pass to find loop-carried dataflow recurrences
(paper Section 3.3).  Iterative formulation so deep dependence chains in
large generated kernels cannot overflow Python's recursion limit.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set

Node = Hashable


def tarjan_scc(adjacency: Dict[Node, Iterable[Node]]) -> List[List[Node]]:
    """Return SCCs of the directed graph, in reverse topological order.

    Args:
        adjacency: node -> iterable of successor nodes.  Nodes appearing
            only as successors are included implicitly.

    Returns:
        A list of components; each is a list of member nodes.  Components
        are emitted callees-first (reverse topological order of the
        condensation), matching classic Tarjan.
    """
    nodes: Set[Node] = set(adjacency)
    for targets in adjacency.values():
        nodes.update(targets)

    index_of: Dict[Node, int] = {}
    lowlink: Dict[Node, int] = {}
    on_stack: Set[Node] = set()
    stack: List[Node] = []
    result: List[List[Node]] = []
    counter = [0]

    def neighbours(node: Node):
        return adjacency.get(node, ())

    for root in nodes:
        if root in index_of:
            continue
        # Each work item: (node, iterator over remaining successors).
        work = [(root, iter(neighbours(root)))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(neighbours(succ))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(component)
    return result


def nontrivial_sccs(adjacency: Dict[Node, Iterable[Node]]
                    ) -> List[List[Node]]:
    """SCCs that represent actual cycles: size > 1, or self loops."""
    components = []
    for comp in tarjan_scc(adjacency):
        if len(comp) > 1:
            components.append(comp)
        else:
            node = comp[0]
            if node in set(adjacency.get(node, ())):
                components.append(comp)
    return components
