"""Static instruction scheduling: block-local reordering and issue grouping.

Two passes:

* :func:`list_schedule` — a classic critical-path list scheduler that
  reorders instructions *within* basic blocks subject to register and
  (conservative) memory dependences, emulating the aggressive acyclic
  scheduling the paper's OpenIMPACT compiler performs.
* :func:`form_issue_groups` — assigns EPIC stop bits / group ordinals.
  A group is a run of mutually independent instructions that fits the
  :class:`~repro.resources.PortModel`; the in-order pipeline attempts to
  issue one group per cycle.

Both passes preserve program semantics; tests verify the golden trace of
the scheduled program matches the original's architectural results.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Set

from ..isa.opcodes import Opcode
from ..isa.program import Program
from ..isa.registers import HARDWIRED
from ..resources import PortModel
from .cfg import build_cfg

_CONTROL_OPS = (Opcode.BR, Opcode.JMP, Opcode.HALT)


def _block_dependence_dag(program: Program, indices: range
                          ) -> Dict[int, Set[int]]:
    """Edges ``pred -> succ`` among the instructions of one block.

    Register RAW/WAR/WAW edges, conservative memory ordering (loads may
    reorder with loads; stores order with everything), RESTART pinned after
    its most recent producer, control ops pinned last.
    """
    preds: Dict[int, Set[int]] = {i: set() for i in indices}
    last_writer: Dict[int, int] = {}
    readers_since_write: Dict[int, List[int]] = {}
    last_store = None
    mem_ops_since_store: List[int] = []
    prior = []
    for idx in indices:
        inst = program[idx]
        reads = [r for r in inst.read_regs() if r not in HARDWIRED]
        writes = [r for r in inst.dests if r not in HARDWIRED]
        for reg in reads:
            if reg in last_writer:
                preds[idx].add(last_writer[reg])
            readers_since_write.setdefault(reg, []).append(idx)
        for reg in writes:
            if reg in last_writer:
                preds[idx].add(last_writer[reg])        # WAW
            for reader in readers_since_write.get(reg, ()):
                if reader != idx:
                    preds[idx].add(reader)              # WAR
            last_writer[reg] = idx
            readers_since_write[reg] = []
        if inst.is_store:
            for mem_idx in mem_ops_since_store:
                preds[idx].add(mem_idx)
            if last_store is not None:
                preds[idx].add(last_store)
            last_store = idx
            mem_ops_since_store = []
        elif inst.is_load:
            if last_store is not None:
                preds[idx].add(last_store)
            mem_ops_since_store.append(idx)
        if inst.opcode in _CONTROL_OPS:
            for p in prior:
                preds[idx].add(p)
        prior.append(idx)
    return preds


def _priorities(program: Program, indices: range,
                preds: Dict[int, Set[int]]) -> Dict[int, int]:
    """Critical-path height of each instruction (longest latency to exit)."""
    succs: Dict[int, List[int]] = {i: [] for i in indices}
    for idx, pset in preds.items():
        for p in pset:
            succs[p].append(idx)
    height: Dict[int, int] = {}
    for idx in reversed(indices):
        latency = program[idx].spec.latency
        below = max((height[s] for s in succs[idx]), default=0)
        height[idx] = latency + below
    return height


def list_schedule(program: Program, ports: PortModel = PortModel()
                  ) -> Program:
    """Reorder instructions within each basic block by critical path."""
    cfg = build_cfg(program)
    new_order: List[int] = []
    for block in cfg:
        indices = block.indices()
        preds = _block_dependence_dag(program, indices)
        height = _priorities(program, indices, preds)
        remaining_preds = {i: set(p) for i, p in preds.items()}
        unscheduled = set(indices)
        ready = [i for i in indices if not remaining_preds[i]]
        scheduled: List[int] = []
        tracker = ports.new_tracker()
        while unscheduled:
            # Pick the highest instruction that fits this "cycle"; fall
            # back to a fresh cycle when ports are exhausted.
            ready.sort(key=lambda i: (-height[i], i))
            if not ready:
                raise RuntimeError(
                    f"{program.name}: scheduler wedged; dependence DAG "
                    f"is cyclic within a block"
                )
            chosen = None
            for idx in ready:
                if tracker.can_issue(program[idx].spec.fu):
                    chosen = idx
                    break
            if chosen is None:
                tracker.reset()
                continue
            tracker.issue(program[chosen].spec.fu)
            ready.remove(chosen)
            scheduled.append(chosen)
            unscheduled.discard(chosen)
            for idx in indices:
                if idx in unscheduled and chosen in remaining_preds[idx]:
                    remaining_preds[idx].discard(chosen)
                    if not remaining_preds[idx] and idx not in ready:
                        ready.append(idx)
        new_order.extend(scheduled)

    old_to_new = {old: new for new, old in enumerate(new_order)}
    instructions = [replace(program[old]) for old in new_order]
    labels = {}
    block_starts = {b.start: b for b in cfg}
    for label, idx in program.labels.items():
        if idx >= len(program):
            labels[label] = len(instructions)
        elif idx in block_starts:
            # A block's first scheduled instruction keeps the label.
            block = block_starts[idx]
            first = min(block.indices(), key=lambda i: old_to_new[i],
                        default=idx)
            labels[label] = old_to_new[first] if len(block) else idx
        else:
            labels[label] = old_to_new[idx]
    return Program(name=program.name, instructions=instructions,
                   labels=labels, memory_image=dict(program.memory_image),
                   metadata=dict(program.metadata))


def form_issue_groups(program: Program, ports: PortModel = PortModel()
                      ) -> Program:
    """Assign stop bits and group ordinals without reordering.

    A new group starts when the next instruction (a) depends on a value
    produced in the current group, (b) writes a register written in the
    current group, (c) is a load following a store in the group
    (conservative aliasing), (d) does not fit the port model, or (e) is a
    branch target.  Branches close their group.
    """
    cfg = build_cfg(program)
    block_start = {b.start for b in cfg}

    instructions = [replace(inst) for inst in program]
    group = 0
    written: Set[int] = set()
    store_in_group = False
    tracker = ports.new_tracker()

    def close_group(last_index: int) -> None:
        nonlocal group, written, store_in_group
        if last_index >= 0:
            instructions[last_index].stop = True
        group += 1
        written = set()
        store_in_group = False
        tracker.reset()

    for i, inst in enumerate(instructions):
        reads = set(r for r in inst.read_regs() if r not in HARDWIRED)
        writes = set(d for d in inst.dests if d not in HARDWIRED)
        needs_break = (
            (i in block_start and i > 0)
            or bool(reads & written)
            or bool(writes & written)
            or (inst.is_load and store_in_group)
            or not tracker.can_issue(inst.spec.fu)
        )
        if needs_break and i > 0:
            close_group(i - 1)
        tracker.issue(inst.spec.fu)
        inst.group = group
        written |= writes
        store_in_group = store_in_group or inst.is_store
        if inst.is_branch or inst.opcode is Opcode.HALT:
            close_group(i)
    if instructions:
        instructions[-1].stop = True

    return Program(name=program.name, instructions=instructions,
                   labels=dict(program.labels),
                   memory_image=dict(program.memory_image),
                   metadata=dict(program.metadata))
