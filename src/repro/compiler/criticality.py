"""Critical-load identification for advance restart (paper Section 3.3).

    "During compile time, strongly connected components (SCCs) of the
    data-flow graph are found: these components represent loop-carried data
    flow.  If an SCC precedes a much larger number of multiple-cycle or
    variable-latency (such as load) instructions than the SCC succeeds in
    the dataflow graph, the loads in the SCC are considered critical.  A
    RESTART is inserted after every load in the SCC, consuming the load's
    destination."

An SCC that *feeds* most of the expensive work in a loop body (e.g. the
``node = node->next`` recurrence of mcf's pointer chasing) will, when it
misses, poison essentially all subsequent advance execution — exactly when
restarting the pass is the right move.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from ..isa.program import Program
from .dataflow import DataflowGraph, build_dataflow_graph
from .scc import nontrivial_sccs


@dataclass
class CriticalSCC:
    """One loop-carried dataflow recurrence judged critical."""

    members: List[int]
    loads: List[int]
    preceded: int   # expensive instructions data-flow *after* the SCC
    succeeded: int  # expensive instructions data-flow *before* the SCC

    @property
    def dominance(self) -> float:
        """How strongly the SCC feeds (vs consumes) expensive work."""
        return self.preceded / max(1, self.succeeded)


def _is_expensive(program: Program, idx: int) -> bool:
    """Multi-cycle or variable-latency instruction (loads, mul/div, fp)."""
    spec = program[idx].spec
    return spec.variable_latency or spec.multi_cycle


def find_critical_sccs(program: Program, graph: DataflowGraph = None,
                       dominance_ratio: float = 2.0) -> List[CriticalSCC]:
    """Return the SCCs whose loads should receive RESTART directives.

    Args:
        program: the (pre-scheduling) program.
        graph: a prebuilt dataflow graph, rebuilt if omitted.
        dominance_ratio: the "much larger" threshold — an SCC is critical
            when it precedes at least ``dominance_ratio`` times as many
            expensive instructions as succeed it in the dataflow graph.
    """
    graph = graph or build_dataflow_graph(program)
    critical = []
    for component in nontrivial_sccs(graph.adjacency()):
        members = sorted(component)
        member_set: Set[int] = set(members)
        loads = [i for i in members if program[i].is_load]
        if not loads:
            continue

        downstream: Set[int] = set()
        upstream: Set[int] = set()
        for member in members:
            downstream |= graph.reachable_from(member)
            upstream |= graph.reaching_to(member)
        downstream -= member_set
        upstream -= member_set

        preceded = sum(1 for i in downstream if _is_expensive(program, i))
        succeeded = sum(1 for i in upstream if _is_expensive(program, i))
        scc = CriticalSCC(members=members, loads=loads,
                          preceded=preceded, succeeded=succeeded)
        if preceded >= dominance_ratio * max(1, succeeded):
            critical.append(scc)
    return critical
