"""Control-flow graph construction over sealed programs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..isa.opcodes import Opcode
from ..isa.program import Program


@dataclass
class BasicBlock:
    """A maximal straight-line region of the program.

    Attributes:
        bid: block id (ordinal in program order).
        start: index of the first instruction.
        end: one past the last instruction.
        succs: successor block ids.
        preds: predecessor block ids.
    """

    bid: int
    start: int
    end: int
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return self.end - self.start

    def indices(self) -> range:
        return range(self.start, self.end)


class CFG:
    """Basic blocks plus the block containing each instruction."""

    def __init__(self, program: Program, blocks: List[BasicBlock]):
        self.program = program
        self.blocks = blocks
        self.block_of: Dict[int, int] = {}
        for block in blocks:
            for idx in block.indices():
                self.block_of[idx] = block.bid

    def __iter__(self):
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)

    def reachable_blocks(self) -> List[int]:
        """Block ids reachable from the entry, in discovery order."""
        if not self.blocks:
            return []
        seen = {0}
        order = [0]
        stack = [0]
        while stack:
            for succ in self.blocks[stack.pop()].succs:
                if succ not in seen:
                    seen.add(succ)
                    order.append(succ)
                    stack.append(succ)
        return order

    def reverse_postorder(self) -> List[int]:
        """Reachable block ids in reverse postorder of a DFS from entry.

        The canonical iteration order for forward dataflow problems:
        every block appears before its successors except along back
        edges.  Unreachable blocks are omitted.
        """
        if not self.blocks:
            return []
        postorder: List[int] = []
        seen = {0}
        # Iterative DFS; each frame is (block id, successor iterator).
        stack = [(0, iter(self.blocks[0].succs))]
        while stack:
            bid, succs = stack[-1]
            for succ in succs:
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, iter(self.blocks[succ].succs)))
                    break
            else:
                postorder.append(bid)
                stack.pop()
        return postorder[::-1]


def build_cfg(program: Program) -> CFG:
    """Partition ``program`` into basic blocks and connect the edges.

    Leaders are: instruction 0, every branch target, and every instruction
    following a branch.  HALT terminates a block with no successors.
    """
    n = len(program)
    if n == 0:
        return CFG(program, [])

    leaders = {0}
    for inst in program:
        if inst.is_branch:
            leaders.add(program.target_index(inst))
            if inst.index + 1 < n:
                leaders.add(inst.index + 1)
        elif inst.opcode is Opcode.HALT and inst.index + 1 < n:
            leaders.add(inst.index + 1)

    starts = sorted(leaders)
    blocks = []
    for bid, start in enumerate(starts):
        end = starts[bid + 1] if bid + 1 < len(starts) else n
        blocks.append(BasicBlock(bid=bid, start=start, end=end))

    start_to_bid = {b.start: b.bid for b in blocks}
    for block in blocks:
        last = program[block.end - 1]
        succs = []
        if last.opcode is Opcode.HALT:
            pass
        elif last.opcode is Opcode.JMP and not last.is_predicated:
            succs.append(start_to_bid[program.target_index(last)])
        elif last.is_branch:
            succs.append(start_to_bid[program.target_index(last)])
            if block.end < n:
                succs.append(start_to_bid[block.end])
        elif block.end < n:
            succs.append(start_to_bid[block.end])
        block.succs = succs
        for succ in succs:
            blocks[succ].preds.append(block.bid)
    return CFG(program, blocks)
