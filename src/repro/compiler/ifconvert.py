"""If-conversion: turn short forward hammocks into predicated code.

OpenIMPACT's hyperblock formation if-converts branchy regions so the EPIC
machine replaces unpredictable branches with predication.  This pass
implements the single-sided hammock case::

        br SKIP, pred=p          cmpeqi pX = p, 0   ; pX = NOT p
        <then block>      ==>    <then block, each guarded by pX>
    SKIP:                    SKIP:

Eligibility: the branch is a forward conditional ``BR`` with a real
qualifying predicate; the then-block is short, straight-line,
unpredicated, does not write the guard, and no instruction inside it is a
branch target.  The guard's complement is materialized into a free
predicate register (the ISA has no complementary compare targets).

The pass is off by default in :class:`~repro.compiler.passes.CompileOptions`
— the packaged workloads are hand-balanced — but is exercised by tests
and available for experiments on branch-heavy code.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Set

from ..isa.instruction import Instruction
from ..isa.opcodes import Opcode
from ..isa.program import Program
from ..isa.registers import NUM_PRED_REGS, P, TRUE_PRED

_UNPREDICABLE = {Opcode.HALT, Opcode.BR, Opcode.JMP, Opcode.RESTART}


def _free_predicate(program: Program) -> Optional[int]:
    """A predicate register the program never reads or writes."""
    used: Set[int] = set()
    for inst in program:
        used.add(inst.pred)
        used.update(inst.dests)
        used.update(inst.srcs)
    for index in range(NUM_PRED_REGS - 1, 0, -1):
        reg = P(index)
        if reg not in used:
            return reg
    return None


def _branch_targets(program: Program) -> Set[int]:
    return {program.target_index(inst) for inst in program
            if inst.is_branch}


def _candidate(program: Program, branch: Instruction, targets: Set[int],
               max_block: int) -> bool:
    """Is ``branch`` the head of a convertible hammock?"""
    if branch.opcode is not Opcode.BR or branch.pred == TRUE_PRED:
        return False
    start, end = branch.index + 1, program.target_index(branch)
    if not 0 < end - start <= max_block:
        return False
    for idx in range(start, end):
        inst = program[idx]
        if inst.opcode in _UNPREDICABLE:
            return False
        if inst.is_predicated:
            return False          # keep guard composition out of scope
        if branch.pred in inst.dests:
            return False          # the block must not redefine its guard
        if idx in targets:
            return False          # side entrance
    return True


def if_convert(program: Program, max_block: int = 8) -> Program:
    """Apply if-conversion to every eligible hammock; returns a new program.

    Hammocks are converted one at a time (each consumes one free
    predicate register for the complemented guard); when no candidates or
    free predicates remain, the program is returned.
    """
    current = program
    while True:
        targets = _branch_targets(current)
        branch_idx = next(
            (inst.index for inst in current
             if _candidate(current, inst, targets, max_block)), None)
        if branch_idx is None:
            return current
        guard = _free_predicate(current)
        if guard is None:
            return current
        current = _convert_one(current, branch_idx, guard)


def _convert_one(program: Program, branch_idx: int, guard: int) -> Program:
    """Rewrite a single hammock headed by the branch at ``branch_idx``."""
    branch = program[branch_idx]
    end = program.target_index(branch)
    new_instructions: List[Instruction] = []
    old_to_new = {}
    for inst in program:
        idx = inst.index
        old_to_new[idx] = len(new_instructions)
        if idx == branch_idx:
            # Materialize NOT(pred) instead of branching.
            new_instructions.append(
                Instruction(Opcode.CMPEQI, (guard,), (branch.pred,), imm=0))
        elif branch_idx < idx < end:
            new_instructions.append(replace(inst, pred=guard))
        else:
            new_instructions.append(replace(inst))
    old_to_new[len(program)] = len(new_instructions)
    labels = {name: old_to_new[i] for name, i in program.labels.items()}
    result = Program(name=program.name, instructions=new_instructions,
                     labels=labels,
                     memory_image=dict(program.memory_image),
                     metadata=dict(program.metadata))
    result.metadata["if_converted"] = \
        result.metadata.get("if_converted", 0) + 1
    return result
