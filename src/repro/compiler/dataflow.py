"""Register dataflow analysis: reaching definitions and the def-use graph.

The paper's advance-restart heuristic (Section 3.3) operates on the
*data-flow graph* of the program, whose strongly connected components
capture loop-carried dependences (e.g. the ``p = p->next`` recurrence of a
pointer-chasing loop).  We build that graph with a classic iterative
reaching-definitions analysis over the CFG, so that flow edges follow
actual definition-use chains rather than mere register-name coincidence.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from ..isa.program import Program
from ..isa.registers import HARDWIRED
from .cfg import CFG, build_cfg

#: A definition site: (instruction index, register id).
Definition = Tuple[int, int]


class DataflowGraph:
    """Def-use graph over static instructions.

    ``succs[i]`` holds the indices of instructions that may consume a value
    produced by instruction ``i`` along some CFG path (including
    loop-carried paths).
    """

    def __init__(self, program: Program,
                 succs: Dict[int, Set[int]],
                 preds: Dict[int, Set[int]]):
        self.program = program
        self.succs = succs
        self.preds = preds

    def adjacency(self) -> Dict[int, Set[int]]:
        """Adjacency map suitable for :func:`repro.compiler.scc.tarjan_scc`."""
        return self.succs

    def reachable_from(self, start: int) -> Set[int]:
        """All instructions data-flow reachable from ``start`` (exclusive)."""
        return self._reach(start, self.succs)

    def reaching_to(self, start: int) -> Set[int]:
        """All instructions from which ``start`` is reachable (exclusive)."""
        return self._reach(start, self.preds)

    @staticmethod
    def _reach(start: int, adj: Dict[int, Set[int]]) -> Set[int]:
        seen: Set[int] = set()
        stack = list(adj.get(start, ()))
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adj.get(node, ()))
        seen.discard(start)
        return seen


def _defs_and_uses(program: Program):
    """Per-instruction written and read register sets (hardwired excluded)."""
    defs: List[Tuple[int, ...]] = []
    uses: List[Tuple[int, ...]] = []
    for inst in program:
        defs.append(tuple(d for d in inst.dests if d not in HARDWIRED))
        uses.append(tuple(s for s in inst.read_regs() if s not in HARDWIRED))
    return defs, uses


def build_dataflow_graph(program: Program, cfg: CFG = None) -> DataflowGraph:
    """Compute the def-use graph via iterative reaching definitions."""
    cfg = cfg or build_cfg(program)
    defs, uses = _defs_and_uses(program)

    # GEN/KILL per block, operating on definition sites.
    all_defs_of_reg: Dict[int, Set[Definition]] = {}
    for idx, dest_regs in enumerate(defs):
        for reg in dest_regs:
            all_defs_of_reg.setdefault(reg, set()).add((idx, reg))

    gen: List[Set[Definition]] = []
    kill: List[Set[Definition]] = []
    for block in cfg:
        g: Dict[int, Definition] = {}
        k: Set[Definition] = set()
        for idx in block.indices():
            for reg in defs[idx]:
                k |= all_defs_of_reg[reg]
                g[reg] = (idx, reg)
        gen.append(set(g.values()))
        kill.append(k - set(g.values()))

    # Iterate IN/OUT to fixpoint.
    n_blocks = len(cfg)
    block_in: List[FrozenSet[Definition]] = [frozenset()] * n_blocks
    block_out: List[FrozenSet[Definition]] = [
        frozenset(gen[b]) for b in range(n_blocks)
    ]
    changed = True
    while changed:
        changed = False
        for block in cfg:
            bid = block.bid
            new_in: Set[Definition] = set()
            for pred in block.preds:
                new_in |= block_out[pred]
            frozen_in = frozenset(new_in)
            if frozen_in != block_in[bid]:
                block_in[bid] = frozen_in
            new_out = (new_in - kill[bid]) | gen[bid]
            frozen_out = frozenset(new_out)
            if frozen_out != block_out[bid]:
                block_out[bid] = frozen_out
                changed = True

    # Walk each block once more to connect definitions to uses.
    succs: Dict[int, Set[int]] = {i: set() for i in range(len(program))}
    preds: Dict[int, Set[int]] = {i: set() for i in range(len(program))}
    for block in cfg:
        live: Dict[int, Set[int]] = {}
        for def_idx, reg in block_in[block.bid]:
            live.setdefault(reg, set()).add(def_idx)
        for idx in block.indices():
            for reg in uses[idx]:
                for def_idx in live.get(reg, ()):
                    succs[def_idx].add(idx)
                    preds[idx].add(def_idx)
            for reg in defs[idx]:
                live[reg] = {idx}
    return DataflowGraph(program, succs, preds)
