"""Register dataflow analysis: reaching definitions and the def-use graph.

The paper's advance-restart heuristic (Section 3.3) operates on the
*data-flow graph* of the program, whose strongly connected components
capture loop-carried dependences (e.g. the ``p = p->next`` recurrence of a
pointer-chasing loop).  The graph is materialized from the reaching
definitions of :class:`repro.analysis.dataflow.ReachingDefinitions`
(the generic worklist solver), so that flow edges follow actual
definition-use chains rather than mere register-name coincidence.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..isa.program import Program
from .cfg import CFG, build_cfg

#: A definition site: (instruction index, register id).
Definition = Tuple[int, int]


class DataflowGraph:
    """Def-use graph over static instructions.

    ``succs[i]`` holds the indices of instructions that may consume a value
    produced by instruction ``i`` along some CFG path (including
    loop-carried paths).
    """

    def __init__(self, program: Program,
                 succs: Dict[int, Set[int]],
                 preds: Dict[int, Set[int]]):
        self.program = program
        self.succs = succs
        self.preds = preds

    def adjacency(self) -> Dict[int, Set[int]]:
        """Adjacency map suitable for :func:`repro.compiler.scc.tarjan_scc`."""
        return self.succs

    def reachable_from(self, start: int) -> Set[int]:
        """All instructions data-flow reachable from ``start`` (exclusive)."""
        return self._reach(start, self.succs)

    def reaching_to(self, start: int) -> Set[int]:
        """All instructions from which ``start`` is reachable (exclusive)."""
        return self._reach(start, self.preds)

    @staticmethod
    def _reach(start: int, adj: Dict[int, Set[int]]) -> Set[int]:
        seen: Set[int] = set()
        stack = list(adj.get(start, ()))
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adj.get(node, ()))
        seen.discard(start)
        return seen


def build_dataflow_graph(program: Program,
                         cfg: Optional[CFG] = None) -> DataflowGraph:
    """Compute the def-use graph via reaching definitions."""
    # Imported lazily: repro.analysis pulls in the verifier, which needs
    # this module — a module-level import would be circular.
    from ..analysis.dataflow import ReachingDefinitions

    chains = ReachingDefinitions(
        program, cfg or build_cfg(program)).def_use_chains()
    return DataflowGraph(program, chains.uses_of, chains.defs_of)
