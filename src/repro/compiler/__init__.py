"""Compiler middle-end: CFG, dataflow, SCC criticality, RESTART insertion,
list scheduling and EPIC issue-group formation."""

from .cfg import CFG, BasicBlock, build_cfg
from .criticality import CriticalSCC, find_critical_sccs
from .dataflow import DataflowGraph, build_dataflow_graph
from .ifconvert import if_convert
from .passes import CompileOptions, compile_program
from .restart import insert_restarts
from .scc import nontrivial_sccs, tarjan_scc
from .scheduling import form_issue_groups, list_schedule

__all__ = [
    "BasicBlock", "CFG", "CompileOptions", "CriticalSCC", "DataflowGraph",
    "build_cfg", "build_dataflow_graph", "compile_program",
    "find_critical_sccs", "form_issue_groups", "if_convert",
    "insert_restarts",
    "list_schedule", "nontrivial_sccs", "tarjan_scc",
]
