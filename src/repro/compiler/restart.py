"""RESTART-insertion pass.

Inserts a ``RESTART`` directive immediately after every load belonging to a
critical strongly-connected component, consuming the load's destination
register (paper Section 3.3).  At run time the multipass pipeline restarts
its advance pass when a RESTART's operand is unready; architecturally the
instruction is a no-op.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from ..isa.instruction import Instruction
from ..isa.opcodes import Opcode
from ..isa.program import Program
from .criticality import find_critical_sccs
from .dataflow import build_dataflow_graph


def insert_restarts(program: Program, dominance_ratio: float = 2.0
                    ) -> Program:
    """Return a new program with RESTARTs after critical-SCC loads.

    Labels are rebuilt so that branches land where they used to (a RESTART
    inserted at a branch target stays un-targeted — it belongs to the load
    above it).  Idempotent: a load whose destination already feeds a
    RESTART is left alone, even when a later scheduling pass has moved
    that RESTART away from the load.
    """
    graph = build_dataflow_graph(program)
    critical = find_critical_sccs(program, graph,
                                  dominance_ratio=dominance_ratio)
    load_indices = sorted({
        idx for scc in critical for idx in scc.loads
    })
    if not load_indices:
        return program

    insert_after = set()
    for idx in load_indices:
        consumers = graph.succs.get(idx, ())
        if any(program[c].opcode is Opcode.RESTART for c in consumers):
            continue
        insert_after.add(idx)
    if not insert_after:
        return program

    new_instructions: List[Instruction] = []
    old_to_new = {}
    for inst in program:
        old_to_new[inst.index] = len(new_instructions)
        new_instructions.append(replace(inst))
        if inst.index in insert_after:
            dest = inst.dests[0]
            new_instructions.append(
                Instruction(Opcode.RESTART, (), (dest,))
            )
    old_to_new[len(program)] = len(new_instructions)

    new_labels = {
        label: old_to_new[idx] for label, idx in program.labels.items()
    }
    result = Program(
        name=program.name,
        instructions=new_instructions,
        labels=new_labels,
        memory_image=dict(program.memory_image),
        metadata=dict(program.metadata),
    )
    result.metadata["restarts_inserted"] = len(insert_after)
    return result
