"""Result formatting: Fig. 6-style breakdown tables and speedup summaries."""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..pipeline.stats import SimStats, StallCategory
from .experiment import Matrix, geomean

_CATEGORIES = [StallCategory.EXECUTION, StallCategory.FRONT_END,
               StallCategory.OTHER, StallCategory.LOAD]


def breakdown_row(stats: SimStats, baseline_cycles: int) -> Dict[str, float]:
    """One stacked bar of Fig. 6: per-category share of baseline cycles."""
    normalized = stats.normalized_breakdown(baseline_cycles)
    row = {cat.value: normalized[cat] for cat in _CATEGORIES}
    row["total"] = stats.cycles / baseline_cycles
    return row


def fig6_table(matrix: Matrix, models: Iterable[str] = ("inorder",
                                                        "multipass",
                                                        "ooo")) -> str:
    """Render the Fig. 6 normalized-execution-cycles table."""
    models = list(models)
    lines = [
        "Normalized execution cycles (stacked by stall category; "
        "1.00 = in-order baseline)",
        f"{'workload':>9} {'model':>10} {'exec':>6} {'front':>6} "
        f"{'other':>6} {'load':>6} {'total':>6}",
    ]
    for workload in matrix.workloads():
        base_cycles = matrix.get(workload, "inorder").cycles
        for model in models:
            stats = matrix.get(workload, model)
            row = breakdown_row(stats, base_cycles)
            lines.append(
                f"{workload:>9} {model:>10} "
                f"{row['execution']:6.3f} {row['front-end']:6.3f} "
                f"{row['other']:6.3f} {row['load']:6.3f} "
                f"{row['total']:6.3f}")
    return "\n".join(lines)


def speedup_table(matrix: Matrix, models: Iterable[str],
                  baseline: str = "inorder",
                  title: Optional[str] = None) -> str:
    """Per-workload and geomean speedups of ``models`` over ``baseline``."""
    models = list(models)
    header = f"{'workload':>9}" + "".join(f" {m:>14}" for m in models)
    lines = [title or f"Speedup over {baseline}", header]
    for workload in matrix.workloads():
        cells = "".join(
            f" {matrix.speedup(workload, m, baseline):14.3f}"
            for m in models)
        lines.append(f"{workload:>9}{cells}")
    means = "".join(
        f" {geomean(matrix.speedup(w, m, baseline) for w in matrix.workloads()):14.3f}"
        for m in models)
    lines.append(f"{'geomean':>9}{means}")
    return "\n".join(lines)


def stall_reduction(stats: SimStats, baseline: SimStats) -> float:
    """Fraction of the baseline's stall cycles a model eliminates."""
    base_stalls = baseline.stall_cycles
    if base_stalls == 0:
        return 0.0
    return 1.0 - stats.stall_cycles / base_stalls


def summarize_headline(matrix: Matrix) -> Dict[str, float]:
    """The paper's headline numbers from a base/MP/OOO (+others) matrix."""
    workloads = matrix.workloads()
    summary: Dict[str, float] = {}
    models = matrix.models()
    if "multipass" in models:
        summary["mp_speedup_geomean"] = geomean(
            matrix.speedup(w, "multipass") for w in workloads)
        summary["mp_stall_reduction_mean"] = sum(
            stall_reduction(matrix.get(w, "multipass"),
                            matrix.get(w, "inorder"))
            for w in workloads) / len(workloads)
    if "ooo" in models and "multipass" in models:
        summary["ooo_over_mp_geomean"] = geomean(
            matrix.get(w, "multipass").cycles / matrix.get(w, "ooo").cycles
            for w in workloads)
    if "runahead" in models:
        summary["runahead_speedup_geomean"] = geomean(
            matrix.speedup(w, "runahead") for w in workloads)
    if "ooo-realistic" in models and "multipass" in models:
        summary["mp_over_realistic_ooo_geomean"] = geomean(
            matrix.get(w, "ooo-realistic").cycles
            / matrix.get(w, "multipass").cycles
            for w in workloads)
    return summary
