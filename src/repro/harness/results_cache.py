"""Content-addressed on-disk cache of simulation results.

A sweep cell is identified by everything that can change its outcome:
the workload name and scale, the compile-option and machine-config
fingerprints, the timing-model name, the functional-execution
instruction budget, and a digest of the ``src/repro`` source tree (so
any change to the simulators, compiler or workload generators
invalidates every cached cell).  The key is the SHA-256 of a canonical
rendering of that tuple; the value is the pickled
:class:`~repro.pipeline.stats.SimStats`, which round-trips bit-identical
to a fresh simulation because every simulator is deterministic.

Layout on disk (sharded by the first two hex digits to keep directories
small on very large sweeps)::

    <root>/ab/abcdef....pkl

Corrupt or unreadable entries are treated as misses and removed, so a
killed writer can never poison later sweeps; writes go through a
temporary file and ``os.replace`` so concurrent readers only ever see
complete entries.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Iterator, Optional, Tuple, Union

#: Bump to invalidate every existing cache entry on a format change.
CACHE_FORMAT_VERSION = 1

#: Environment variable that supplies a default cache directory.
CACHE_ENV_VAR = "REPRO_RESULTS_CACHE"


def canonical(value: object) -> str:
    """A deterministic, hash()-free rendering of a configuration value.

    Supports the closed world of types that appear in
    :class:`~repro.compiler.passes.CompileOptions` and
    :class:`~repro.machine.MachineConfig`: dataclasses (recursively, by
    sorted field name), mappings, sequences, enums and primitives.
    Anything else is rejected so an unhashable new field type becomes a
    loud error instead of a silently unstable cache key.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = sorted(f.name for f in dataclasses.fields(value))
        inner = ",".join(
            f"{name}={canonical(getattr(value, name))}" for name in fields)
        return f"{type(value).__qualname__}({inner})"
    if isinstance(value, enum.Enum):
        return f"{type(value).__qualname__}.{value.name}"
    if isinstance(value, dict):
        items = sorted(
            (canonical(k), canonical(v)) for k, v in value.items())
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(canonical(v) for v in value) + "]"
    if isinstance(value, frozenset) or isinstance(value, set):
        return "{" + ",".join(sorted(canonical(v) for v in value)) + "}"
    if isinstance(value, (bool, int, float, str, bytes, type(None))):
        return repr(value)
    raise TypeError(
        f"cannot build a stable cache fingerprint for {type(value)!r}")


def fingerprint(value: object) -> str:
    """SHA-256 of the canonical rendering of ``value``."""
    return hashlib.sha256(canonical(value).encode()).hexdigest()


@lru_cache(maxsize=1)
def source_digest() -> str:
    """Digest of every ``.py`` file under ``src/repro``.

    Memoized per process: the tree cannot change under a running sweep
    in any scenario the cache is expected to survive.
    """
    root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def cell_key(workload: str, model: str, scale: float,
             compile_options: object, config: object,
             max_instructions: int,
             tree_digest: Optional[str] = None) -> str:
    """Content-addressed key for one (workload, model, config) cell."""
    parts = "|".join([
        f"v{CACHE_FORMAT_VERSION}",
        tree_digest if tree_digest is not None else source_digest(),
        repr(workload),
        repr(model),
        repr(float(scale)),
        repr(int(max_instructions)),
        fingerprint(compile_options),
        fingerprint(config),
    ])
    return hashlib.sha256(parts.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ResultsCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def summary(self) -> str:
        return (f"{self.hits} hit(s), {self.misses} miss(es), "
                f"{self.stores} store(s), {self.errors} error(s)")


class ResultsCache:
    """Sharded on-disk store mapping cell keys to pickled stats."""

    #: Lifetime hit/miss counters persisted in the cache root, so
    #: ``repro cache stats`` can report the hit rate across sessions
    #: (per-instance :class:`CacheStats` dies with the process).
    _STATS_FILE = "_stats.json"

    def __init__(self, root: Union[str, Path],
                 tree_digest: Optional[str] = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.tree_digest = (tree_digest if tree_digest is not None
                            else source_digest())
        self.stats = CacheStats()

    def _lifetime(self) -> dict:
        try:
            with open(self.root / self._STATS_FILE) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
        return {key: int(data.get(key, 0))
                for key in ("hits", "misses", "stores", "errors")}

    def _bump_lifetime(self, **deltas: int) -> None:
        """Fold counter deltas into the persistent stats file.

        Concurrent workers may interleave read-modify-write cycles and
        lose an increment; the counters are telemetry, not correctness,
        so approximate totals are acceptable.
        """
        data = self._lifetime()
        for key, delta in deltas.items():
            data[key] += delta
        path = self.root / self._STATS_FILE
        fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(data, handle)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def key_for(self, workload: str, model: str, scale: float,
                compile_options: object, config: object,
                max_instructions: int) -> str:
        return cell_key(workload, model, scale, compile_options, config,
                        max_instructions, tree_digest=self.tree_digest)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str):
        """The cached stats for ``key``, or ``None`` on a miss."""
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                stats = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            self._bump_lifetime(misses=1)
            return None
        except Exception:
            # Truncated/corrupt entry (e.g. a writer killed mid-dump
            # before the format grew atomic writes): drop it and miss.
            self.stats.misses += 1
            self.stats.errors += 1
            self._bump_lifetime(misses=1, errors=1)
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        self._bump_lifetime(hits=1)
        return stats

    def put(self, key: str, stats: object) -> None:
        """Atomically persist ``stats`` under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(stats, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        self._bump_lifetime(stores=1)

    def entries(self) -> Iterator[Path]:
        yield from sorted(self.root.glob("??/*.pkl"))

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def size_bytes(self) -> int:
        return sum(path.stat().st_size for path in self.entries())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            path.unlink()
            removed += 1
        for shard in self.root.glob("??"):
            try:
                shard.rmdir()
            except OSError:
                pass
        return removed

    def describe(self) -> str:
        count = 0
        size = 0
        for path in self.entries():
            count += 1
            size += path.stat().st_size
        life = self._lifetime()
        lookups = life["hits"] + life["misses"]
        rate = (f"{life['hits'] / lookups:.1%}" if lookups else "n/a")
        return "\n".join([
            f"results cache at {self.root}",
            f"  entries:       {count}",
            f"  size:          {size} bytes",
            f"  source digest: {self.tree_digest[:16]}…",
            f"  lifetime:      {life['hits']} hit(s) / {lookups} "
            f"lookup(s) — {rate} hit rate, {life['stores']} store(s), "
            f"{life['errors']} error(s)",
            f"  this session:  {self.stats.summary()}",
        ])


def resolve_results_cache(
        value: Union[None, str, Path, ResultsCache],
) -> Optional[ResultsCache]:
    """Normalize a cache argument; ``None`` falls back to $REPRO_RESULTS_CACHE.

    Returns ``None`` when caching is disabled (no argument and no
    environment default), so callers can use plain truthiness.
    """
    if isinstance(value, ResultsCache):
        return value
    if value is None:
        value = os.environ.get(CACHE_ENV_VAR) or None
        if value is None:
            return None
    return ResultsCache(value)


__all__: Tuple[str, ...] = (
    "CACHE_ENV_VAR", "CACHE_FORMAT_VERSION", "CacheStats", "ResultsCache",
    "canonical", "cell_key", "fingerprint", "resolve_results_cache",
    "source_digest",
)
