"""Content-addressed on-disk cache of simulation results.

A sweep cell is identified by everything that can change its outcome:
the workload name and scale, the compile-option and machine-config
fingerprints, the timing-model name, the functional-execution
instruction budget, and a digest of the ``src/repro`` source tree (so
any change to the simulators, compiler or workload generators
invalidates every cached cell).  The key is the SHA-256 of a canonical
rendering of that tuple; the value is the pickled
:class:`~repro.pipeline.stats.SimStats`, which round-trips bit-identical
to a fresh simulation because every simulator is deterministic.

Layout on disk (sharded by the first two hex digits to keep directories
small on very large sweeps)::

    <root>/ab/abcdef....pkl

Corrupt or unreadable entries are treated as misses and removed, so a
killed writer can never poison later sweeps; writes go through a
temporary file and ``os.replace`` so concurrent readers only ever see
complete entries.  The same discipline (plus an advisory ``flock``)
protects the lifetime-counter sidecar ``_stats.json``, so many
processes — e.g. the sweep service's worker fleet plus ad-hoc CLI
sweeps — can share one cache directory without corrupting it.

A cache may be **size-bounded** (``max_bytes``): whenever a store
pushes the total entry size over the bound, least-recently-*used*
entries are evicted until it fits again.  Hits refresh an entry's
mtime, so the eviction order is true LRU, not insertion order.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: Bump to invalidate every existing cache entry on a format change.
CACHE_FORMAT_VERSION = 1

#: Environment variable that supplies a default cache directory.
CACHE_ENV_VAR = "REPRO_RESULTS_CACHE"

#: Multipliers for the ``parse_size`` suffixes (case-insensitive).
_SIZE_SUFFIXES = {"": 1, "b": 1,
                  "k": 1024, "kb": 1024, "kib": 1024,
                  "m": 1024 ** 2, "mb": 1024 ** 2, "mib": 1024 ** 2,
                  "g": 1024 ** 3, "gb": 1024 ** 3, "gib": 1024 ** 3,
                  "t": 1024 ** 4, "tb": 1024 ** 4, "tib": 1024 ** 4}


def parse_size(value: Union[None, int, str]) -> Optional[int]:
    """A byte count from an int or a human string (``"512M"``, ``"2GiB"``).

    ``None`` stays ``None`` (no bound); anything unparseable raises
    ``ValueError`` so a typoed CLI flag fails loudly instead of
    silently unbounding the cache.
    """
    if value is None:
        return None
    if isinstance(value, int):
        if value <= 0:
            raise ValueError(f"size bound must be positive, got {value}")
        return value
    text = value.strip().lower()
    number = text.rstrip("kmgtib")
    suffix = text[len(number):]
    if suffix not in _SIZE_SUFFIXES:
        raise ValueError(f"unknown size suffix in {value!r}")
    try:
        count = float(number)
    except ValueError:
        raise ValueError(f"cannot parse size {value!r}") from None
    result = int(count * _SIZE_SUFFIXES[suffix])
    if result <= 0:
        raise ValueError(f"size bound must be positive, got {value!r}")
    return result


def human_bytes(size: Union[int, float]) -> str:
    """``1536`` -> ``"1.5 KiB"`` (plain ``"n B"`` below one KiB)."""
    value = float(size)
    unit = "B"
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024.0 or unit == "TiB":
            break
        value /= 1024.0
    if unit == "B":
        return f"{int(value)} B"
    return f"{value:.1f} {unit}"


def canonical(value: object) -> str:
    """A deterministic, hash()-free rendering of a configuration value.

    Supports the closed world of types that appear in
    :class:`~repro.compiler.passes.CompileOptions` and
    :class:`~repro.machine.MachineConfig`: dataclasses (recursively, by
    sorted field name), mappings, sequences, enums and primitives.
    Anything else is rejected so an unhashable new field type becomes a
    loud error instead of a silently unstable cache key.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = sorted(f.name for f in dataclasses.fields(value))
        inner = ",".join(
            f"{name}={canonical(getattr(value, name))}" for name in fields)
        return f"{type(value).__qualname__}({inner})"
    if isinstance(value, enum.Enum):
        return f"{type(value).__qualname__}.{value.name}"
    if isinstance(value, dict):
        items = sorted(
            (canonical(k), canonical(v)) for k, v in value.items())
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(canonical(v) for v in value) + "]"
    if isinstance(value, frozenset) or isinstance(value, set):
        return "{" + ",".join(sorted(canonical(v) for v in value)) + "}"
    if isinstance(value, (bool, int, float, str, bytes, type(None))):
        return repr(value)
    raise TypeError(
        f"cannot build a stable cache fingerprint for {type(value)!r}")


def fingerprint(value: object) -> str:
    """SHA-256 of the canonical rendering of ``value``."""
    return hashlib.sha256(canonical(value).encode()).hexdigest()


@lru_cache(maxsize=1)
def source_digest() -> str:
    """Digest of every ``.py`` file under ``src/repro``.

    Memoized per process: the tree cannot change under a running sweep
    in any scenario the cache is expected to survive.
    """
    root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def cell_key(workload: str, model: str, scale: float,
             compile_options: object, config: object,
             max_instructions: int,
             tree_digest: Optional[str] = None) -> str:
    """Content-addressed key for one (workload, model, config) cell."""
    parts = "|".join([
        f"v{CACHE_FORMAT_VERSION}",
        tree_digest if tree_digest is not None else source_digest(),
        repr(workload),
        repr(model),
        repr(float(scale)),
        repr(int(max_instructions)),
        fingerprint(compile_options),
        fingerprint(config),
    ])
    return hashlib.sha256(parts.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ResultsCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def summary(self) -> str:
        return (f"{self.hits} hit(s), {self.misses} miss(es), "
                f"{self.stores} store(s), {self.errors} error(s), "
                f"{self.evictions} eviction(s)")

    def to_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "errors": self.errors,
                "evictions": self.evictions}


class ResultsCache:
    """Sharded on-disk store mapping cell keys to pickled stats."""

    #: Lifetime hit/miss counters persisted in the cache root, so
    #: ``repro cache stats`` can report the hit rate across sessions
    #: (per-instance :class:`CacheStats` dies with the process).
    _STATS_FILE = "_stats.json"
    #: Sidecar lock serializing read-modify-write of the stats file.
    _LOCK_FILE = "_stats.lock"
    _LIFETIME_KEYS = ("hits", "misses", "stores", "errors", "evictions")

    def __init__(self, root: Union[str, Path],
                 tree_digest: Optional[str] = None,
                 max_bytes: Union[None, int, str] = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.tree_digest = (tree_digest if tree_digest is not None
                            else source_digest())
        self.max_bytes = parse_size(max_bytes)
        self.stats = CacheStats()

    def _lifetime(self) -> dict:
        """Persisted counters; corrupt/foreign contents reset to zero."""
        try:
            with open(self.root / self._STATS_FILE) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
        if not isinstance(data, dict):
            data = {}
        counters = {}
        for key in self._LIFETIME_KEYS:
            try:
                counters[key] = int(data.get(key, 0))
            except (TypeError, ValueError):
                counters[key] = 0
        return counters

    def _lock_stats(self):
        """Advisory exclusive lock on the stats sidecar (best effort).

        ``flock`` serializes per open file description, so it excludes
        concurrent *threads* of one process as well as other processes.
        Platforms without ``fcntl`` fall back to unlocked read-modify-
        write — the counters degrade to approximate there, never the
        entries themselves (those are atomic-rename protected).
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            return None
        try:
            fd = os.open(self.root / self._LOCK_FILE,
                         os.O_CREAT | os.O_RDWR, 0o644)
        except OSError:
            return None
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
        except OSError:  # pragma: no cover - exotic filesystems
            os.close(fd)
            return None
        return fd

    @staticmethod
    def _unlock_stats(fd) -> None:
        if fd is None:  # pragma: no cover - non-POSIX platforms
            return
        try:
            fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    def _bump_lifetime(self, **deltas: int) -> None:
        """Fold counter deltas into the persistent stats file.

        Safe under concurrent writers: the read-modify-write runs under
        an exclusive ``flock`` and the rewrite goes through the same
        tmp-file + ``os.replace`` discipline as cache entries, so
        readers never observe a partial file and parallel bumps are not
        lost.  A corrupt or partial stats file resets to zero counters
        (via :meth:`_lifetime`) instead of crashing.
        """
        lock = self._lock_stats()
        try:
            data = self._lifetime()
            for key, delta in deltas.items():
                data[key] = data.get(key, 0) + delta
            path = self.root / self._STATS_FILE
            fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(data, handle)
                os.replace(tmp, path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        finally:
            self._unlock_stats(lock)

    def key_for(self, workload: str, model: str, scale: float,
                compile_options: object, config: object,
                max_instructions: int) -> str:
        return cell_key(workload, model, scale, compile_options, config,
                        max_instructions, tree_digest=self.tree_digest)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str):
        """The cached stats for ``key``, or ``None`` on a miss."""
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                stats = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            self._bump_lifetime(misses=1)
            return None
        except Exception:
            # Truncated/corrupt entry (e.g. a writer killed mid-dump
            # before the format grew atomic writes): drop it and miss.
            self.stats.misses += 1
            self.stats.errors += 1
            self._bump_lifetime(misses=1, errors=1)
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        self._bump_lifetime(hits=1)
        # Refresh the entry's LRU clock so hot cells survive eviction.
        try:
            os.utime(path)
        except OSError:
            pass
        return stats

    def put(self, key: str, stats: object) -> None:
        """Atomically persist ``stats`` under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(stats, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        self._bump_lifetime(stores=1)
        self.evict()

    def evict(self) -> int:
        """Enforce ``max_bytes`` by removing least-recently-used entries.

        Runs automatically after every :meth:`put`; callable directly
        for maintenance.  Returns the number of entries removed (always
        0 for unbounded caches or caches under their limit).  Entries
        vanishing concurrently (another evictor, ``clear``) are
        tolerated.
        """
        if self.max_bytes is None:
            return 0
        aged: List[Tuple[float, int, Path]] = []
        total = 0
        for path in self.entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            aged.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        if total <= self.max_bytes:
            return 0
        removed = 0
        for _, size, path in sorted(aged):
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            removed += 1
        if removed:
            self.stats.evictions += removed
            self._bump_lifetime(evictions=removed)
        return removed

    def entries(self) -> Iterator[Path]:
        yield from sorted(self.root.glob("??/*.pkl"))

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def size_bytes(self) -> int:
        return sum(path.stat().st_size for path in self.entries())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            path.unlink()
            removed += 1
        for shard in self.root.glob("??"):
            try:
                shard.rmdir()
            except OSError:
                pass
        return removed

    def describe_dict(self) -> dict:
        """Machine-readable cache report (``repro cache stats --json``
        and the service ``/health`` endpoint)."""
        count = 0
        size = 0
        for path in self.entries():
            count += 1
            try:
                size += path.stat().st_size
            except OSError:
                pass
        life = self._lifetime()
        lookups = life["hits"] + life["misses"]
        return {
            "root": str(self.root),
            "entries": count,
            "size_bytes": size,
            "size_human": human_bytes(size),
            "max_bytes": self.max_bytes,
            "source_digest": self.tree_digest,
            "lifetime": life,
            "lifetime_hit_rate": (life["hits"] / lookups
                                  if lookups else None),
            "session": self.stats.to_dict(),
        }

    def describe(self) -> str:
        doc = self.describe_dict()
        life = doc["lifetime"]
        lookups = life["hits"] + life["misses"]
        rate = (f"{life['hits'] / lookups:.1%}" if lookups else "n/a")
        bound = (human_bytes(self.max_bytes)
                 if self.max_bytes is not None else "unbounded")
        return "\n".join([
            f"results cache at {self.root}",
            f"  entries:       {doc['entries']}",
            f"  size:          {doc['size_human']} "
            f"({doc['size_bytes']} bytes, limit {bound})",
            f"  source digest: {self.tree_digest[:16]}…",
            f"  lifetime:      {life['hits']} hit(s) / {lookups} "
            f"lookup(s) — {rate} hit rate, {life['stores']} store(s), "
            f"{life['errors']} error(s), {life['evictions']} "
            f"eviction(s)",
            f"  this session:  {self.stats.summary()}",
        ])


def resolve_results_cache(
        value: Union[None, str, Path, ResultsCache],
        max_bytes: Union[None, int, str] = None,
) -> Optional[ResultsCache]:
    """Normalize a cache argument; ``None`` falls back to $REPRO_RESULTS_CACHE.

    Returns ``None`` when caching is disabled (no argument and no
    environment default), so callers can use plain truthiness.
    ``max_bytes`` applies only when a new store is constructed here —
    an already-built :class:`ResultsCache` keeps its own bound.
    """
    if isinstance(value, ResultsCache):
        return value
    if value is None:
        value = os.environ.get(CACHE_ENV_VAR) or None
        if value is None:
            return None
    return ResultsCache(value, max_bytes=max_bytes)


__all__: Tuple[str, ...] = (
    "CACHE_ENV_VAR", "CACHE_FORMAT_VERSION", "CacheStats", "ResultsCache",
    "canonical", "cell_key", "fingerprint", "human_bytes", "parse_size",
    "resolve_results_cache", "source_digest",
)
