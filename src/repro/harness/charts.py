"""ASCII chart rendering for terminal-friendly figure output.

Plotting libraries are deliberately avoided: these renderers turn the
harness's structured results into the stacked bars of Fig. 6, simple
speedup bars, and the multipass mode strip — all as plain text.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..multipass.core import Mode
from ..pipeline.stats import SimStats, StallCategory
from .experiment import Matrix

#: One fill character per Fig. 6 stall category.
CATEGORY_GLYPHS = {
    StallCategory.EXECUTION: "#",
    StallCategory.FRONT_END: "f",
    StallCategory.OTHER: "o",
    StallCategory.LOAD: ".",
}

_MODE_GLYPHS = {
    Mode.ARCHITECTURAL: "-",
    Mode.ADVANCE: "A",
    Mode.RALLY: "R",
}


def stacked_bar(stats: SimStats, baseline_cycles: int,
                width: int = 60) -> str:
    """One normalized Fig. 6 bar: ``###ffoo.....`` scaled to baseline=width.

    Each character is ``baseline_cycles / width`` cycles; the bar's length
    shows the model's normalized total and its fill shows the breakdown.
    """
    if baseline_cycles <= 0:
        raise ValueError("baseline cycles must be positive")
    chars: List[str] = []
    for category in (StallCategory.EXECUTION, StallCategory.FRONT_END,
                     StallCategory.OTHER, StallCategory.LOAD):
        share = stats.cycle_breakdown[category] / baseline_cycles
        chars.append(CATEGORY_GLYPHS[category] * round(share * width))
    return "".join(chars)


def fig6_chart(matrix: Matrix,
               models: Sequence[str] = ("inorder", "multipass", "ooo"),
               width: int = 60) -> str:
    """Render the whole Figure 6 as stacked ASCII bars."""
    lines = [
        "Normalized execution cycles "
        f"({CATEGORY_GLYPHS[StallCategory.EXECUTION]}=execution "
        f"{CATEGORY_GLYPHS[StallCategory.FRONT_END]}=front-end "
        f"{CATEGORY_GLYPHS[StallCategory.OTHER]}=other "
        f"{CATEGORY_GLYPHS[StallCategory.LOAD]}=load)",
    ]
    for workload in matrix.workloads():
        base_cycles = matrix.get(workload, "inorder").cycles
        for model in models:
            stats = matrix.get(workload, model)
            bar = stacked_bar(stats, base_cycles, width)
            lines.append(f"{workload:>8} {model:>10} |{bar}")
        lines.append("")
    return "\n".join(lines)


def speedup_bars(speedups: Dict[str, float], width: int = 50,
                 max_value: float = None) -> str:
    """Horizontal bars for per-workload (or per-model) speedups."""
    if not speedups:
        return "(no data)"
    limit = max_value or max(speedups.values())
    lines = []
    for name, value in speedups.items():
        bar = "#" * max(1, round(value / limit * width))
        lines.append(f"{name:>14} {value:6.2f}x |{bar}")
    return "\n".join(lines)


def mode_strip(mode_log: Iterable[Tuple[int, Mode, int, int]],
               width: int = 72) -> str:
    """Compress a multipass per-cycle mode log into a strip.

    Each output character summarizes a bucket of cycles: ``-`` pure
    architectural, ``A`` advance-dominated, ``R`` rally-dominated, and
    ``m`` for mixed buckets.
    """
    log = list(mode_log)
    if not log:
        return "(mode recording was not enabled)"
    total = log[-1][0] + 1
    bucket = max(1, total // width)
    counts: List[Dict[Mode, int]] = [dict() for _ in range(width + 1)]
    for cycle, mode, _arch, _adv in log:
        slot = min(width, cycle // bucket)
        counts[slot][mode] = counts[slot].get(mode, 0) + 1
    chars = []
    for slot_counts in counts:
        if not slot_counts:
            continue
        dominant, share = max(slot_counts.items(), key=lambda kv: kv[1])
        total_slot = sum(slot_counts.values())
        if share / total_slot >= 0.7:
            chars.append(_MODE_GLYPHS[dominant])
        else:
            chars.append("m")
    return (f"modes (-=architectural A=advance R=rally m=mixed; "
            f"{bucket} cycles/char):\n|" + "".join(chars) + "|")
