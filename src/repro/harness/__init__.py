"""Experiment harness: runners, reports and figure/table drivers."""

from .charts import fig6_chart, mode_strip, speedup_bars, stacked_bar
from .experiment import (ABLATION_FACTORIES, MODEL_FACTORIES, Matrix,
                         TraceCache, geomean, make_model, run_matrix,
                         run_model)
from .figures import (FigureResult, figure6, figure7, figure8,
                      realistic_ooo_comparison, runahead_comparison, table1)
from .parallel import (CellResult, CellSpec, SweepError, SweepReport,
                       resolve_jobs, simulate_cell, sweep)
from .report import (breakdown_row, fig6_table, speedup_table,
                     stall_reduction, summarize_headline)
from .results_cache import (CacheStats, ResultsCache, cell_key, fingerprint,
                            resolve_results_cache, source_digest)
from .sampling import SamplingResult, sampled_simulation

__all__ = [
    "ABLATION_FACTORIES", "FigureResult", "MODEL_FACTORIES", "Matrix",
    "TraceCache", "breakdown_row", "fig6_table", "figure6", "figure7",
    "make_model",
    "figure8", "geomean", "realistic_ooo_comparison", "run_matrix",
    "run_model", "runahead_comparison", "speedup_table", "stall_reduction",
    "summarize_headline", "table1", "fig6_chart", "mode_strip",
    "speedup_bars", "stacked_bar", "SamplingResult",
    "sampled_simulation",
    "CacheStats", "CellResult", "CellSpec", "ResultsCache", "SweepError",
    "SweepReport", "cell_key", "fingerprint", "resolve_jobs",
    "resolve_results_cache", "simulate_cell", "source_digest", "sweep",
]
