"""SMARTS-style sampled simulation (Wunderlich et al., ISCA 2003).

The paper's methodology note: "Results in this work reflect rigorously
sampled [25], complete runs of SPEC reference inputs."  SMARTS simulates
small measurement units in full detail at systematic intervals and keeps
the long gaps cheap with *functional warming* — caches and branch
predictors are updated for every instruction, but no pipeline timing is
modelled.  The per-unit CPIs are then aggregated into an estimate with a
confidence interval.

This module implements the same scheme over golden traces: detailed
windows run on a fresh core whose memory hierarchy, branch predictor and
front end are swapped for the functionally-warmed ones, so cold-structure
bias is limited to pipeline state (which SMARTS bounds with its small
detailed-warmup prefix; we fold it into the unit).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from ..branch.gshare import GsharePredictor
from ..isa.trace import Trace, TraceEntry
from ..machine import MachineConfig
from ..pipeline.frontend import FrontEnd
from .experiment import ABLATION_FACTORIES, MODEL_FACTORIES


@dataclass
class SamplingResult:
    """Outcome of one sampled simulation."""

    model: str
    workload: str
    n_units: int
    unit_size: int
    unit_cpis: List[float]
    estimated_cpi: float
    ci95: float                 # +/- on the CPI estimate
    estimated_cycles: float
    full_instructions: int

    @property
    def relative_ci(self) -> float:
        return self.ci95 / self.estimated_cpi if self.estimated_cpi else 0.0

    def summary(self) -> str:
        return (f"{self.model}/{self.workload}: CPI "
                f"{self.estimated_cpi:.3f} ± {self.ci95:.3f} "
                f"({self.n_units} units x {self.unit_size}) -> "
                f"~{self.estimated_cycles:,.0f} cycles")


def _subtrace(trace: Trace, start: int, end: int) -> Trace:
    """Re-sequenced slice of a trace, runnable by any core."""
    entries = [
        TraceEntry(e.inst, i, e.dests, e.srcs, addr=e.addr, value=e.value,
                   taken=e.taken, executed=e.executed)
        for i, e in enumerate(trace.entries[start:end])
    ]
    return Trace(trace.program, entries, {}, {}, truncated=True)


def _functional_warm(hierarchy, predictor, entries, now: float,
                     cpi_guess: float) -> float:
    """Advance caches and predictor through a gap without timing it."""
    for entry in entries:
        if entry.executed and entry.inst.is_mem:
            kind = "store" if entry.is_store else "load"
            hierarchy.access(entry.addr, int(now), kind=kind)
        if entry.is_branch:
            predictor.update(entry.inst.index, entry.taken)
        now += cpi_guess
    return now


def sampled_simulation(trace: Trace, model: str = "inorder",
                       n_units: int = 20, unit_size: int = 400,
                       config: Optional[MachineConfig] = None,
                       cpi_guess: float = 2.0) -> SamplingResult:
    """Estimate a model's CPI from systematically sampled detailed units.

    Args:
        trace: the full golden trace.
        model: any name accepted by :func:`repro.harness.run_model`.
        n_units: number of detailed measurement units.
        unit_size: dynamic instructions per unit.
        config: machine configuration (defaults to Table 2).
        cpi_guess: cycles-per-instruction assumed while functionally
            warming the gaps (only affects cache-timestamp spacing).
    """
    config = config or MachineConfig()
    factories = {**MODEL_FACTORIES, **ABLATION_FACTORIES}
    if model not in factories:
        raise KeyError(f"unknown model {model!r}")
    n = len(trace)
    if n < n_units * unit_size:
        raise ValueError(
            f"trace of {n} instructions cannot carry {n_units} units of "
            f"{unit_size}; shrink the units or sample fewer")
    spacing = n // n_units

    # Long-lived, functionally-warmed structures shared by every unit.
    hierarchy = config.hierarchy.build()
    predictor = GsharePredictor(config.branch_predictor_entries)
    position = 0
    now = 0.0
    cpis: List[float] = []
    for unit_index in range(n_units):
        start = unit_index * spacing
        end = min(n, start + unit_size)
        now = _functional_warm(hierarchy, predictor,
                               trace.entries[position:start], now,
                               cpi_guess)
        unit = _subtrace(trace, start, end)
        hierarchy.settle()   # warming timestamps are not unit time
        core = factories[model](unit, config)
        # Swap in the warmed structures (and a front end bound to them).
        core.hierarchy = hierarchy
        core.predictor = predictor
        core.frontend = FrontEnd(unit, hierarchy, predictor, config,
                                 core.buffer_size)
        stats = core.run()
        cpis.append(stats.cycles / len(unit))
        now += stats.cycles
        position = end

    mean = sum(cpis) / len(cpis)
    if len(cpis) > 1:
        var = sum((c - mean) ** 2 for c in cpis) / (len(cpis) - 1)
        ci95 = 1.96 * math.sqrt(var / len(cpis))
    else:
        ci95 = 0.0
    return SamplingResult(
        model=model, workload=trace.program.name, n_units=n_units,
        unit_size=unit_size, unit_cpis=cpis, estimated_cpi=mean,
        ci95=ci95, estimated_cycles=mean * n, full_instructions=n,
    )
