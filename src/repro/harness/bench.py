"""Wall-clock benchmark harness: the PR-to-PR perf trajectory.

Simulator *output* is pinned bit-identical by the golden suite; this
module pins simulator *speed*.  ``run_bench`` times each model over a
fixed workload matrix (traces and decoded caches prebuilt, so only the
timing loops are measured), taking the best of ``repeats`` passes to
shed scheduler noise, and returns a JSON-serializable record:

* per-model wall seconds, simulated cycles and cycles/second,
* matrix totals,
* the git revision, scale and matrix definition that produced it.

Two consumers:

* ``scripts/run_bench.py`` writes the full-matrix record to
  ``BENCH_PR<n>.json`` (optionally embedding the previous PR's record as
  ``baseline``) so the repository carries a speed trajectory;
* ``repro bench --smoke --against benchmarks/bench_smoke_baseline.json``
  is the check.sh perf gate, failing on a wall-clock regression beyond
  ``--max-regression``.

Cycle counts are deterministic, so a benchmark run doubles as a coarse
sanity check: ``compare_bench`` flags any cycle-count drift against the
baseline as an error, not a regression percentage.
"""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..workloads import ALL_WORKLOADS
from .experiment import MODEL_FACTORIES, TraceCache, make_model

#: The five primary timing models, benchmarked in a fixed order.
BENCH_MODELS = tuple(MODEL_FACTORIES)

#: Small fixed matrix for the check.sh perf-smoke gate: one integer
#: kernel, one pointer-chaser, one FP kernel.
SMOKE_WORKLOADS = ("vpr", "mcf", "equake")

#: Benchmark record schema version.
BENCH_SCHEMA = "repro-bench/1"


def git_sha() -> Optional[str]:
    """The current git revision, or None outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10, check=False)
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def run_bench(models: Sequence[str] = BENCH_MODELS,
              workloads: Sequence[str] = SMOKE_WORKLOADS,
              scale: float = 0.1, repeats: int = 3,
              slow: bool = False) -> dict:
    """Time ``models`` x ``workloads`` and return the benchmark record.

    Traces (and their decoded caches) are built before the clock starts.
    Each (model, workload) cell is timed independently and takes the
    best of ``repeats`` runs — per-cell minima reject transient
    scheduler noise much better than whole-matrix passes, where one
    descheduling inflates every cell of that pass.  A model's wall time
    is the sum of its cell minima.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    cache = TraceCache(scale)
    traces = [cache.trace(w) for w in workloads]
    for trace in traces:
        trace.decoded        # prebuild: decode time is not model time

    per_model: Dict[str, dict] = {}
    for model in models:
        cycles = 0
        wall = 0.0
        for trace in traces:
            best = None
            for rep in range(repeats):
                t0 = time.perf_counter()
                stats = make_model(model, trace, slow=slow).run()
                cell = time.perf_counter() - t0
                if best is None or cell < best:
                    best = cell
            cycles += stats.cycles   # deterministic across repeats
            wall += best
        per_model[model] = {
            "wall_seconds": round(wall, 4),
            "cycles": cycles,
            "cycles_per_second": round(cycles / wall) if wall else 0,
        }

    total_wall = sum(m["wall_seconds"] for m in per_model.values())
    total_cycles = sum(m["cycles"] for m in per_model.values())
    return {
        "schema": BENCH_SCHEMA,
        "git_sha": git_sha(),
        "scale": scale,
        "repeats": repeats,
        "slow": slow,
        "models": list(models),
        "workloads": list(workloads),
        "per_model": per_model,
        "total": {
            "wall_seconds": round(total_wall, 4),
            "cycles": total_cycles,
            "cycles_per_second": (round(total_cycles / total_wall)
                                  if total_wall else 0),
        },
    }


def compare_bench(current: dict, baseline: dict,
                  max_regression: float = 0.25) -> List[str]:
    """Regression findings of ``current`` against ``baseline``.

    Returns a list of human-readable findings (empty = pass): a
    wall-clock regression beyond ``max_regression`` on the matrix total,
    or any cycle-count drift (cycle counts are deterministic, so drift
    means the simulation changed, not the machine).
    """
    findings: List[str] = []
    base_total = baseline.get("total", {}).get("wall_seconds")
    cur_total = current.get("total", {}).get("wall_seconds")
    if base_total and cur_total:
        ratio = cur_total / base_total
        if ratio > 1.0 + max_regression:
            findings.append(
                f"total wall-clock regressed {ratio:.2f}x "
                f"({base_total:.3f}s -> {cur_total:.3f}s; limit "
                f"{1.0 + max_regression:.2f}x)")
    base_models = baseline.get("per_model", {})
    for model, cur in current.get("per_model", {}).items():
        base = base_models.get(model)
        if base is None:
            continue
        if base.get("cycles") != cur.get("cycles"):
            findings.append(
                f"{model}: simulated cycle count drifted "
                f"{base.get('cycles')} -> {cur.get('cycles')} "
                f"(benchmark matrices are deterministic; the timing "
                f"model changed)")
    return findings


def compare_speedups(current: dict, baseline: dict,
                     max_regression: float = 0.25):
    """Per-model throughput ratios of ``current`` against ``baseline``.

    Returns ``(lines, regressions)``: one rendered line per model with
    its cycles/second speedup ratio, and one finding per model whose
    throughput fell below ``1 - max_regression`` of the baseline.
    Ratios are throughput-based (cycles/second, not wall seconds), so a
    record can be compared against a baseline taken over a different
    workload matrix — e.g. the smoke matrix against a full-matrix
    ``BENCH_PR<n>.json``.
    """
    lines: List[str] = []
    regressions: List[str] = []
    if current.get("workloads") != baseline.get("workloads"):
        lines.append(
            f"note: workload matrices differ "
            f"({len(current.get('workloads', []))} vs "
            f"{len(baseline.get('workloads', []))} workloads); "
            f"comparing cycles/second throughput")
    base_models = baseline.get("per_model", {})
    floor = 1.0 - max_regression
    for model in current.get("models", []):
        cur = current.get("per_model", {}).get(model, {})
        base = base_models.get(model, {})
        cur_cps = cur.get("cycles_per_second")
        base_cps = base.get("cycles_per_second")
        if not cur_cps or not base_cps:
            lines.append(f"{model:>15}: no baseline entry")
            continue
        ratio = cur_cps / base_cps
        lines.append(
            f"{model:>15}: {base_cps:>10} -> {cur_cps:>10} cyc/s "
            f"({ratio:.2f}x)")
        if ratio < floor:
            regressions.append(
                f"{model}: throughput fell to {ratio:.2f}x of baseline "
                f"({base_cps} -> {cur_cps} cyc/s; floor {floor:.2f}x)")
    base_total = baseline.get("total", {}).get("cycles_per_second")
    cur_total = current.get("total", {}).get("cycles_per_second")
    if base_total and cur_total:
        lines.append(
            f"{'total':>15}: {base_total:>10} -> {cur_total:>10} cyc/s "
            f"({cur_total / base_total:.2f}x)")
    return lines, regressions


def render_bench(record: dict, baseline: Optional[dict] = None) -> str:
    """Human-readable table for one benchmark record."""
    lines = [
        f"repro bench: {len(record['models'])} model(s) x "
        f"{len(record['workloads'])} workload(s) at scale "
        f"{record['scale']}"
        + (" [--slow reference loop]" if record.get("slow") else ""),
        f"{'model':>15} {'wall s':>8} {'cycles':>12} {'cyc/s':>12}",
    ]
    base_models = (baseline or {}).get("per_model", {})
    for model in record["models"]:
        entry = record["per_model"][model]
        suffix = ""
        base = base_models.get(model)
        if base and base.get("wall_seconds"):
            ratio = base["wall_seconds"] / entry["wall_seconds"]
            suffix = f"  ({ratio:.2f}x vs baseline)"
        lines.append(
            f"{model:>15} {entry['wall_seconds']:>8.3f} "
            f"{entry['cycles']:>12} {entry['cycles_per_second']:>12}"
            f"{suffix}")
    total = record["total"]
    lines.append(
        f"{'total':>15} {total['wall_seconds']:>8.3f} "
        f"{total['cycles']:>12} {total['cycles_per_second']:>12}")
    base_total = (baseline or {}).get("total", {}).get("wall_seconds")
    if base_total:
        lines.append(
            f"baseline total {base_total:.3f}s -> "
            f"{base_total / total['wall_seconds']:.2f}x overall")
    return "\n".join(lines)


def profile_bench(models: Sequence[str] = BENCH_MODELS,
                  workloads: Sequence[str] = SMOKE_WORKLOADS,
                  scale: float = 0.1, top: int = 10) -> List[dict]:
    """cProfile every (model, workload) cell of the benchmark matrix.

    Returns one record per cell: the model, the workload, the cell's
    profiled wall seconds, and the ``top`` hottest functions by
    cumulative time as ``(cumtime, tottime, ncalls, where)`` rows.
    Traces and decode caches are prebuilt so the profile sees only the
    timing loop — the same boundary ``run_bench`` times.  Profiled runs
    carry interpreter tracing overhead, so the absolute seconds are not
    comparable with ``run_bench`` records; the *shape* (which frames
    dominate) is the product.
    """
    import cProfile
    import pstats

    cache = TraceCache(scale)
    traces = {w: cache.trace(w) for w in workloads}
    for trace in traces.values():
        trace.decoded
    cells: List[dict] = []
    for model in models:
        for workload in workloads:
            core = make_model(model, traces[workload])
            profile = cProfile.Profile()
            profile.enable()
            core.run()
            profile.disable()
            stats = pstats.Stats(profile)
            stats.sort_stats("cumulative")
            rows = []
            for func in stats.fcn_list[:top]:          # sorted order
                cc, nc, tt, ct, _ = stats.stats[func]
                path, lineno, name = func
                where = (f"{Path(path).name}:{lineno}({name})"
                         if lineno else name)
                rows.append((round(ct, 4), round(tt, 4), nc, where))
            cells.append({
                "model": model,
                "workload": workload,
                "wall_seconds": round(stats.total_tt, 4),
                "hotspots": rows,
            })
    return cells


def render_profile(cells: List[dict]) -> str:
    """Human-readable hotspot tables, one per profiled cell."""
    lines: List[str] = []
    for cell in cells:
        lines.append(
            f"{cell['model']}/{cell['workload']}: "
            f"{cell['wall_seconds']:.3f}s profiled")
        lines.append(f"  {'cum s':>8} {'tot s':>8} {'calls':>9}  where")
        for ct, tt, nc, where in cell["hotspots"]:
            lines.append(f"  {ct:>8.4f} {tt:>8.4f} {nc:>9}  {where}")
        lines.append("")
    return "\n".join(lines).rstrip()


def load_record(path) -> dict:
    with open(Path(path)) as handle:
        return json.load(handle)


def write_record(record: dict, path) -> None:
    with open(Path(path), "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")


__all__ = ("BENCH_MODELS", "BENCH_SCHEMA", "SMOKE_WORKLOADS",
           "compare_bench", "compare_speedups", "git_sha", "load_record",
           "profile_bench", "render_bench", "render_profile", "run_bench",
           "write_record")
