"""Drivers that regenerate every table and figure of the evaluation.

Each function returns structured results plus a rendered text table whose
rows correspond to what the paper reports:

* :func:`figure6` — normalized execution cycles with the four-way stall
  breakdown for in-order / multipass / ideal OOO (Fig. 6), and the
  headline aggregates of Section 5.2.
* :func:`figure7` — multipass and OOO speedups under the three cache
  hierarchies (Fig. 7).
* :func:`figure8` — percent of full multipass speedup without issue
  regrouping / without advance restart (Fig. 8).
* :func:`table1` — peak and average power ratios of out-of-order vs
  multipass structures (Table 1).
* :func:`runahead_comparison` — the Section 5.2/5.4 Dundas–Mudge result
  (runahead reduces about half as many cycles as multipass).
* :func:`realistic_ooo_comparison` — the Section 5.2 decentralized-queue
  result (multipass 1.05x over realistic OOO).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..machine import MachineConfig
from ..memory.configs import HIERARCHIES
from ..power import average_ratios, multipass_power, ooo_power
from ..power.structures import (PAPER_AVERAGE_RATIOS, PAPER_PEAK_RATIOS,
                                table1_groups)
from ..workloads import ALL_WORKLOADS
from .experiment import Matrix, TraceCache, geomean, run_matrix
from .report import fig6_table, speedup_table, stall_reduction


@dataclass
class FigureResult:
    """One regenerated table/figure: structured data + rendered text."""

    name: str
    data: Dict[str, object]
    text: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def _cache(scale: float, cache: Optional[TraceCache]) -> TraceCache:
    return cache or TraceCache(scale)


def figure6(scale: float = 1.0, workloads=ALL_WORKLOADS,
            cache: Optional[TraceCache] = None,
            parallel=None, results_cache=None) -> FigureResult:
    """Fig. 6: normalized cycles, stall breakdown, headline aggregates."""
    cache = _cache(scale, cache)
    matrix = run_matrix(("inorder", "multipass", "ooo"),
                        workloads=workloads, cache=cache,
                        parallel=parallel, results_cache=results_cache)
    mp_speedup = geomean(matrix.speedup(w, "multipass")
                         for w in matrix.workloads())
    ooo_over_mp = geomean(
        matrix.get(w, "multipass").cycles / matrix.get(w, "ooo").cycles
        for w in matrix.workloads())
    mean_stall_reduction = sum(
        stall_reduction(matrix.get(w, "multipass"),
                        matrix.get(w, "inorder"))
        for w in matrix.workloads()) / len(matrix.workloads())
    text = "\n".join([
        fig6_table(matrix),
        "",
        f"multipass speedup (geomean):        {mp_speedup:.3f}"
        f"   [paper: 1.36]",
        f"ideal OOO speedup over multipass:   {ooo_over_mp:.3f}"
        f"   [paper: 1.14]",
        f"mean total-stall reduction (MP):    {mean_stall_reduction:.1%}"
        f"   [paper: 49%]",
    ])
    return FigureResult("figure6", {
        "matrix": matrix,
        "mp_speedup_geomean": mp_speedup,
        "ooo_over_mp": ooo_over_mp,
        "mean_stall_reduction": mean_stall_reduction,
    }, text)


def figure7(scale: float = 1.0, workloads=ALL_WORKLOADS,
            hierarchies=("base", "config1", "config2"),
            parallel=None, results_cache=None) -> FigureResult:
    """Fig. 7: MP and OOO speedups under the three cache hierarchies."""
    per_config: Dict[str, Matrix] = {}
    rows: List[str] = [
        "Speedup over in-order under varying cache hierarchies",
        f"{'config':>9} {'model':>10} " + "".join(
            f"{w:>8}" for w in workloads) + f" {'geomean':>9}",
    ]
    data: Dict[str, Dict[str, float]] = {}
    for name in hierarchies:
        config = MachineConfig().with_hierarchy(HIERARCHIES[name]())
        cache = TraceCache(scale)
        matrix = run_matrix(("inorder", "multipass", "ooo"),
                            workloads=workloads, config=config,
                            cache=cache, parallel=parallel,
                            results_cache=results_cache)
        per_config[name] = matrix
        data[name] = {}
        for model in ("multipass", "ooo"):
            speedups = [matrix.speedup(w, model) for w in workloads]
            mean = geomean(speedups)
            data[name][model] = mean
            rows.append(f"{name:>9} {model:>10} " + "".join(
                f"{s:8.2f}" for s in speedups) + f" {mean:9.3f}")
    gaps = {name: data[name]["ooo"] / data[name]["multipass"]
            for name in hierarchies}
    rows.append("")
    rows.append("OOO/MP gap per hierarchy (paper: narrows with more "
                "restrictive hierarchies): " + ", ".join(
                    f"{n}={g:.3f}" for n, g in gaps.items()))
    return FigureResult("figure7", {
        "matrices": per_config, "means": data, "gaps": gaps,
    }, "\n".join(rows))


def figure8(scale: float = 1.0, workloads=ALL_WORKLOADS,
            cache: Optional[TraceCache] = None,
            parallel=None, results_cache=None) -> FigureResult:
    """Fig. 8: % of full MP speedup without regrouping / without restart."""
    cache = _cache(scale, cache)
    matrix = run_matrix(("inorder", "multipass", "multipass-noregroup",
                         "multipass-norestart"),
                        workloads=workloads, cache=cache,
                        parallel=parallel, results_cache=results_cache)
    rows = [
        "Percent of full multipass speedup retained",
        f"{'workload':>9} {'full MP':>8} {'no-regroup':>11} "
        f"{'no-restart':>11}",
    ]
    data: Dict[str, Dict[str, float]] = {}
    for workload in workloads:
        base = matrix.get(workload, "inorder")
        full = matrix.get(workload, "multipass")
        full_gain = base.cycles / full.cycles - 1.0

        def retained(model: str) -> float:
            stats = matrix.get(workload, model)
            gain = base.cycles / stats.cycles - 1.0
            return gain / full_gain if full_gain > 1e-9 else 1.0

        noregroup = retained("multipass-noregroup")
        norestart = retained("multipass-norestart")
        data[workload] = {
            "full_speedup": base.cycles / full.cycles,
            "noregroup_retained": noregroup,
            "norestart_retained": norestart,
        }
        rows.append(f"{workload:>9} {base.cycles / full.cycles:8.2f} "
                    f"{noregroup:11.1%} {norestart:11.1%}")
    rows.append("")
    rows.append("[paper: advance restart matters for bzip2, gap and mcf; "
                "regrouping contributes for all benchmarks except mcf]")
    return FigureResult("figure8", {"per_workload": data}, "\n".join(rows))


def table1(scale: float = 1.0, workload: str = "mcf",
           cache: Optional[TraceCache] = None,
           parallel=None, results_cache=None) -> FigureResult:
    """Table 1: peak and average power ratios (OOO / multipass)."""
    cache = _cache(scale, cache)
    groups = table1_groups()
    peak = {name: group.peak_ratio() for name, group in groups.items()}
    matrix = run_matrix(("multipass", "ooo"), workloads=(workload,),
                        cache=cache, parallel=parallel,
                        results_cache=results_cache)
    trace = cache.trace(workload)
    mp_stats = matrix.get(workload, "multipass")
    ooo_stats = matrix.get(workload, "ooo")
    average = average_ratios(ooo_power(ooo_stats, trace),
                             multipass_power(mp_stats, trace))
    rows = [
        "Power ratios of out-of-order to multipass structures "
        f"(average activity from {workload})",
        f"{'structure group':>18} {'peak':>7} {'paper':>7} "
        f"{'average':>9} {'paper':>7}",
    ]
    for name in groups:
        rows.append(
            f"{name:>18} {peak[name]:7.2f} "
            f"{PAPER_PEAK_RATIOS[name]:7.2f} {average[name]:9.2f} "
            f"{PAPER_AVERAGE_RATIOS[name]:7.2f}")
    return FigureResult("table1", {"peak": peak, "average": average},
                        "\n".join(rows))


def runahead_comparison(scale: float = 1.0, workloads=ALL_WORKLOADS,
                        cache: Optional[TraceCache] = None,
                        parallel=None, results_cache=None) -> FigureResult:
    """Section 5.4: Dundas–Mudge runahead vs multipass cycle reduction."""
    cache = _cache(scale, cache)
    matrix = run_matrix(("inorder", "multipass", "runahead"),
                        workloads=workloads, cache=cache,
                        parallel=parallel, results_cache=results_cache)
    mp_reduction = sum(
        1 - matrix.get(w, "multipass").cycles
        / matrix.get(w, "inorder").cycles
        for w in matrix.workloads()) / len(matrix.workloads())
    ra_reduction = sum(
        1 - matrix.get(w, "runahead").cycles
        / matrix.get(w, "inorder").cycles
        for w in matrix.workloads()) / len(matrix.workloads())
    ratio = ra_reduction / mp_reduction if mp_reduction else 0.0
    text = "\n".join([
        speedup_table(matrix, ("multipass", "runahead")),
        "",
        f"mean cycle reduction: multipass {mp_reduction:.1%}, "
        f"runahead {ra_reduction:.1%}",
        f"runahead/multipass reduction ratio: {ratio:.2f}"
        f"   [paper: ~0.5 — 'only reduced half as many cycles']",
    ])
    return FigureResult("runahead", {
        "matrix": matrix, "mp_reduction": mp_reduction,
        "ra_reduction": ra_reduction, "ratio": ratio,
    }, text)


def realistic_ooo_comparison(scale: float = 1.0, workloads=ALL_WORKLOADS,
                             cache: Optional[TraceCache] = None,
                             parallel=None, results_cache=None
                             ) -> FigureResult:
    """Section 5.2: multipass vs the decentralized-queue OOO model."""
    cache = _cache(scale, cache)
    matrix = run_matrix(("inorder", "multipass", "ooo-realistic"),
                        workloads=workloads, cache=cache,
                        parallel=parallel, results_cache=results_cache)
    mp_over_realistic = geomean(
        matrix.get(w, "ooo-realistic").cycles
        / matrix.get(w, "multipass").cycles
        for w in matrix.workloads())
    text = "\n".join([
        speedup_table(matrix, ("multipass", "ooo-realistic")),
        "",
        f"multipass speedup over realistic OOO (geomean): "
        f"{mp_over_realistic:.3f}   [paper: 1.05]",
    ])
    return FigureResult("realistic-ooo", {
        "matrix": matrix, "mp_over_realistic": mp_over_realistic,
    }, text)
