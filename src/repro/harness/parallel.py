"""Sharded parallel experiment engine with fault handling.

The (model, workload, config) cell grid of a sweep is embarrassingly
parallel: every cell replays its own functionally-executed trace, and
every simulator is deterministic, so fanning cells out over a process
pool must produce *bit-identical* stats to a serial
:func:`~repro.harness.experiment.run_matrix` — the equivalence tests in
``tests/harness/test_parallel_matrix.py`` enforce exactly that.

Cells are dispatched to a ``concurrent.futures`` process pool *grouped
by workload cell* — every model of a (workload, scale, options) triple
lands on the same worker as one batch, so the group shares a single
functional execution, decode and column build via the worker's
process-global :class:`~repro.harness.experiment.TraceCache` instead of
each worker re-deriving them.  Fault handling is two-layered:

* **In-worker timeout** — every cell runs under a ``SIGALRM`` interval
  timer (the simulators are pure Python, so the signal interrupts even
  a wedged loop); expiry surfaces as a failure row, not a hang.
* **Retry once, then record** — a failed cell (exception, timeout, or a
  worker process death) is retried on a fresh round; a second failure
  becomes a :class:`CellResult` failure row in the report so one bad
  cell degrades a sweep instead of crashing it.

When a :class:`~repro.harness.results_cache.ResultsCache` is supplied,
cells whose key is already on disk are served without simulation and
fresh results are persisted, so a warm second sweep performs zero
simulations.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor, process
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import multiprocessing

from ..compiler import CompileOptions
from ..machine import MachineConfig
from ..pipeline import SimStats
from ..workloads import ALL_WORKLOADS
from .experiment import Matrix, TraceCache, run_model
from .results_cache import ResultsCache, fingerprint, resolve_results_cache

#: Environment variable that supplies a default worker count.
JOBS_ENV_VAR = "REPRO_JOBS"

#: Matches :class:`TraceCache`'s functional-execution budget.
DEFAULT_MAX_INSTRUCTIONS = 5_000_000


def resolve_jobs(value: Union[None, int, str] = None) -> int:
    """Worker count: explicit argument, else $REPRO_JOBS, else 1 (serial).

    ``"auto"`` or any value < 1 means one worker per available CPU.
    """
    if value is None:
        value = os.environ.get(JOBS_ENV_VAR) or 1
    if isinstance(value, str):
        if value.strip().lower() == "auto":
            return os.cpu_count() or 1
        value = int(value)
    if value < 1:
        return os.cpu_count() or 1
    return value


@dataclass(frozen=True)
class CellSpec:
    """Everything a worker needs to simulate one sweep cell."""

    workload: str
    model: str
    scale: float = 1.0
    compile_options: CompileOptions = field(default_factory=CompileOptions)
    config: MachineConfig = field(default_factory=MachineConfig)
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS
    #: Collect an aggregated telemetry summary for this cell (a
    #: :meth:`~repro.telemetry.metrics.MetricsSink.summary` dict).
    #: Never part of the result-cache key: tracing does not change
    #: stats, so cached entries stay valid either way.
    telemetry: bool = False
    #: Post-check the simulated cycles against the static cycle lower
    #: bound (:func:`repro.analysis.audit.check_bound`); a violation
    #: surfaces as an ``AuditViolation: ...`` failure row.  Like
    #: ``telemetry``, never part of the result-cache key.
    audit: bool = False


@dataclass
class CellResult:
    """Outcome of one cell: stats on success, an error row otherwise."""

    workload: str
    model: str
    stats: Optional[SimStats] = None
    error: Optional[str] = None
    attempts: int = 1
    duration: float = 0.0
    cached: bool = False
    #: Aggregated telemetry summary (when the cell's spec asked for one).
    telemetry: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.error is None


class CellTimeout(Exception):
    """Raised inside a worker when a cell exceeds its time budget."""


class SweepError(RuntimeError):
    """Raised by :func:`run_matrix` when cells fail even after retry."""


#: Per-process trace caches, keyed by (scale, compile fingerprint,
#: budget) — pool workers are reused across cells, so each worker
#: functionally executes any given workload at most once.
_WORKER_TRACES: Dict[Tuple[float, str, int], TraceCache] = {}

#: Per-process decode-build log, keyed by (workload, scale): how many
#: times this process actually constructed a decoded-trace cache.  The
#: grouped dispatch in :func:`_run_round` keeps this at one per key —
#: every model of a workload lands on the same worker — which the
#: decode-amortization test pins.
_DECODE_BUILDS: Dict[Tuple[str, float], int] = {}


def _worker_trace(spec: CellSpec):
    key = (spec.scale, fingerprint(spec.compile_options),
           spec.max_instructions)
    cache = _WORKER_TRACES.get(key)
    if cache is None:
        cache = TraceCache(spec.scale, compile_options=spec.compile_options,
                           max_instructions=spec.max_instructions)
        _WORKER_TRACES[key] = cache
    trace = cache.trace(spec.workload)
    if trace._decoded is None:
        # Eager decode + column prebuild: the decoded cache and the
        # shared issue columns (with the CSR dependence graphs hanging
        # off them, built lazily per rename discipline) are derived
        # read-only data — built once here, reused by every model of
        # this (workload, scale) the worker simulates.
        from ..isa.columns import columns_of

        columns_of(trace.decoded)
        cell = (spec.workload, spec.scale)
        _DECODE_BUILDS[cell] = _DECODE_BUILDS.get(cell, 0) + 1
    return trace


def simulate_cell(spec: CellSpec) -> SimStats:
    """The production cell runner: build/reuse the trace, run the model.

    With ``spec.telemetry`` set, the run is traced into an aggregating
    :class:`~repro.telemetry.metrics.MetricsSink` (bounded memory, no
    event storage) and a ``(stats, summary)`` tuple is returned; the
    stats themselves are bit-identical to an untraced run.
    """
    trace = _worker_trace(spec)
    if not spec.telemetry:
        stats, telemetry = run_model(spec.model, trace, spec.config), None
    else:
        from ..telemetry import MetricsSink, Tracer

        sink = MetricsSink()
        stats = run_model(spec.model, trace, spec.config,
                          tracer=Tracer(sink))
        telemetry = sink.summary()
    if spec.audit:
        from ..analysis.audit import check_bound

        check_bound(stats, trace, spec.model, spec.workload)
    return stats if telemetry is None else (stats, telemetry)


def _raise_timeout(signum, frame):
    raise CellTimeout()


def _execute_cell(spec: CellSpec, runner: Callable[[CellSpec], SimStats],
                  timeout: Optional[float]) -> CellResult:
    """Run one cell under the per-cell timer, never letting it raise."""
    start = time.perf_counter()
    # SIGALRM is only available on the main thread of a process; pool
    # workers run tasks there, as does the in-process jobs=1 path.
    arm = (timeout is not None and hasattr(signal, "SIGALRM")
           and threading.current_thread() is threading.main_thread())
    previous = None
    try:
        if arm:
            previous = signal.signal(signal.SIGALRM, _raise_timeout)
            signal.setitimer(signal.ITIMER_REAL, timeout)
        outcome = runner(spec)
        # Telemetry-collecting runners return (stats, summary).
        if isinstance(outcome, tuple):
            stats, telemetry = outcome
        else:
            stats, telemetry = outcome, None
        return CellResult(spec.workload, spec.model, stats=stats,
                          duration=time.perf_counter() - start,
                          telemetry=telemetry)
    except CellTimeout:
        return CellResult(spec.workload, spec.model,
                          error=f"timed out after {timeout:g}s",
                          duration=time.perf_counter() - start)
    except Exception as exc:
        return CellResult(spec.workload, spec.model,
                          error=f"{type(exc).__name__}: {exc}",
                          duration=time.perf_counter() - start)
    finally:
        if arm:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)


def _pool_context():
    # fork keeps already-imported test/runner modules visible to workers
    # and skips re-importing the simulator; fall back where unavailable.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _group_key(spec: CellSpec) -> Tuple[str, float, str, int]:
    """Cells sharing this key replay the same trace (workload cell)."""
    return (spec.workload, spec.scale, fingerprint(spec.compile_options),
            spec.max_instructions)


def _execute_group(specs: Sequence[CellSpec],
                   runner: Callable[[CellSpec], SimStats],
                   timeout: Optional[float]) -> List[CellResult]:
    """Run one workload group's cells back-to-back in this worker.

    All cells of the group share a trace, so the worker pays one
    functional execution and one decode for the whole group; each cell
    still runs under its own SIGALRM budget.
    """
    return [_execute_cell(spec, runner, timeout) for spec in specs]


def _run_round(specs: Sequence[CellSpec], jobs: int,
               runner: Callable[[CellSpec], SimStats],
               timeout: Optional[float]) -> List[CellResult]:
    """Execute one batch of cells, one result per spec, in spec order.

    Cells are dispatched to the pool *grouped by workload cell* (same
    workload, scale, compile options and budget), so every model of a
    workload runs on the same worker and shares one trace build + decode
    instead of each worker re-deriving them.
    """
    if jobs <= 1 or len(specs) <= 1:
        return [_execute_cell(spec, runner, timeout) for spec in specs]
    groups: Dict[Tuple[str, float, str, int], List[int]] = {}
    for index, spec in enumerate(specs):
        groups.setdefault(_group_key(spec), []).append(index)
    results: List[Optional[CellResult]] = [None] * len(specs)
    with ProcessPoolExecutor(max_workers=min(jobs, len(groups)),
                             mp_context=_pool_context()) as pool:
        futures = [
            (indices, pool.submit(_execute_group,
                                  [specs[i] for i in indices],
                                  runner, timeout))
            for indices in groups.values()
        ]
        for indices, future in futures:
            try:
                group_results = future.result()
            except process.BrokenProcessPool:
                group_results = [
                    CellResult(specs[i].workload, specs[i].model,
                               error="worker process died (broken pool)")
                    for i in indices
                ]
            except Exception as exc:  # pragma: no cover - defensive
                group_results = [
                    CellResult(specs[i].workload, specs[i].model,
                               error=f"{type(exc).__name__}: {exc}")
                    for i in indices
                ]
            for i, result in zip(indices, group_results):
                results[i] = result
    return results


@dataclass
class SweepReport:
    """A completed sweep: the matrix plus operability accounting."""

    matrix: Matrix
    failures: List[CellResult] = field(default_factory=list)
    cells: int = 0
    simulated: int = 0
    cache_hits: int = 0
    cache_stores: int = 0
    jobs: int = 1
    elapsed: float = 0.0
    #: (workload, model) -> aggregated telemetry summary dict, for the
    #: cells that were simulated with ``telemetry=True``.  Cells served
    #: from the result cache carry no summary (stats only are cached).
    telemetry: Dict[Tuple[str, str], dict] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def failure_lines(self) -> List[str]:
        """One rendered row per failed cell (exception class, cell id,
        retry count) — shared with the service client's report."""
        return [
            f"  FAILED {failure.workload}/{failure.model} after "
            f"{failure.attempts} attempt(s): {failure.error}"
            for failure in self.failures
        ]

    def summary(self) -> str:
        rate = (f", {self.cells / self.elapsed:.1f} cells/s"
                if self.elapsed > 0 else "")
        lines = [
            f"sweep: {self.cells} cell(s) with {self.jobs} job(s) in "
            f"{self.elapsed:.1f}s total wall time{rate} — "
            f"{self.simulated} simulated, "
            f"{self.cache_hits} from cache, {len(self.failures)} failed"
        ]
        lines.extend(self.failure_lines())
        return "\n".join(lines)

    def raise_on_failure(self) -> None:
        if self.failures:
            raise SweepError(self.summary())


def sweep(models: Sequence[str],
          workloads: Sequence[str] = ALL_WORKLOADS,
          *,
          config: Optional[MachineConfig] = None,
          scale: float = 1.0,
          compile_options: Optional[CompileOptions] = None,
          max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
          jobs: Union[None, int, str] = None,
          results_cache: Union[None, str, ResultsCache] = None,
          timeout: Optional[float] = None,
          retries: int = 1,
          runner: Optional[Callable[[CellSpec], SimStats]] = None,
          telemetry: bool = False,
          audit: bool = False
          ) -> SweepReport:
    """Run the full cell grid; always returns a report, never hangs.

    Failed cells (after ``retries`` extra attempts each) appear in
    ``report.failures`` and are absent from ``report.matrix``.

    ``telemetry=True`` traces every simulated cell into an aggregating
    metrics sink and records the per-cell summaries in
    ``report.telemetry``.  Summaries require a live simulation, so
    telemetry sweeps skip result-cache *reads* (fresh results are still
    stored); stats remain bit-identical, keeping the cache safe.

    ``audit=True`` post-checks every simulated cell against the static
    cycle lower bound; a sub-physical result becomes an
    ``AuditViolation`` failure row.  The check needs the worker's trace,
    so audit sweeps also skip result-cache reads.
    """
    start = time.perf_counter()
    # Resolved at call time so tests can swap the module-level default.
    runner = runner or simulate_cell
    jobs = resolve_jobs(jobs)
    store = resolve_results_cache(results_cache)
    config = config or MachineConfig()
    compile_options = compile_options or CompileOptions()

    specs = [CellSpec(workload, model, scale, compile_options, config,
                      max_instructions, telemetry=telemetry, audit=audit)
             for workload in workloads for model in models]
    matrix = Matrix(scale=scale)
    report = SweepReport(matrix=matrix, cells=len(specs), jobs=jobs)

    keys: Dict[Tuple[str, str], str] = {}
    outstanding: List[CellSpec] = []
    for spec in specs:
        cell = (spec.workload, spec.model)
        if store is not None:
            keys[cell] = store.key_for(spec.workload, spec.model,
                                       spec.scale, spec.compile_options,
                                       spec.config, spec.max_instructions)
            if not telemetry and not audit:
                stats = store.get(keys[cell])
                if stats is not None:
                    matrix.results[cell] = stats
                    report.cache_hits += 1
                    continue
        outstanding.append(spec)

    results: Dict[Tuple[str, str], CellResult] = {}
    for attempt in range(1, retries + 2):
        if not outstanding:
            break
        failed: List[CellSpec] = []
        for spec, result in zip(outstanding,
                                _run_round(outstanding, jobs, runner,
                                           timeout)):
            result.attempts = attempt
            results[(spec.workload, spec.model)] = result
            if not result.ok:
                failed.append(spec)
        outstanding = failed if attempt <= retries else []

    for cell, result in results.items():
        if result.ok:
            matrix.results[cell] = result.stats
            report.simulated += 1
            if result.telemetry is not None:
                report.telemetry[cell] = result.telemetry
            if store is not None:
                store.put(keys[cell], result.stats)
                report.cache_stores += 1
        else:
            report.failures.append(result)

    report.elapsed = time.perf_counter() - start
    return report


__all__ = [
    "CellResult", "CellSpec", "CellTimeout", "DEFAULT_MAX_INSTRUCTIONS",
    "JOBS_ENV_VAR", "SweepError", "SweepReport", "resolve_jobs",
    "simulate_cell", "sweep",
]
