"""Experiment runner: models x workloads x configurations.

Traces are functionally executed once per (workload, scale) and shared by
every timing model, which both saves time and guarantees all models replay
the identical instruction stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Tuple, Union

from ..compiler import CompileOptions, compile_program
from ..isa import Trace, execute
from ..machine import MachineConfig
from ..multipass import MultipassCore
from ..multipass.twopass import TwoPassCore
from ..ooo import IdealOOOCore, RealisticOOOCore
from ..pipeline import InOrderCore, SimStats
from ..runahead import RunaheadCore
from ..workloads import ALL_WORKLOADS, build_workload

#: Model name -> core factory(trace, config) -> core with .run().
MODEL_FACTORIES: Dict[str, Callable] = {
    "inorder": InOrderCore,
    "multipass": MultipassCore,
    "runahead": RunaheadCore,
    "ooo": IdealOOOCore,
    "ooo-realistic": RealisticOOOCore,
}

#: Multipass ablations (Fig. 8) and extensions.
ABLATION_FACTORIES: Dict[str, Callable] = {
    "multipass-noregroup": lambda trace, config, **kw: MultipassCore(
        trace, config, enable_regroup=False, **kw),
    "multipass-norestart": lambda trace, config, **kw: MultipassCore(
        trace, config, enable_restart=False, **kw),
    # Paper footnote 1: hardware-detected advance restart, no compiler
    # RESTART directives consumed.
    "multipass-hwrestart": lambda trace, config, **kw: MultipassCore(
        trace, config, enable_restart=False, hardware_restart=True, **kw),
    # The MICRO-36 two-pass predecessor: persistence, no restart.
    "twopass": lambda trace, config, **kw: TwoPassCore(trace, config, **kw),
}


class TraceCache:
    """Builds, compiles and functionally executes workloads on demand."""

    def __init__(self, scale: float = 1.0,
                 compile_options: Optional[CompileOptions] = None,
                 max_instructions: int = 5_000_000):
        self.scale = scale
        self.compile_options = compile_options or CompileOptions()
        self.max_instructions = max_instructions
        self._traces: Dict[str, Trace] = {}

    def trace(self, workload: str) -> Trace:
        if workload not in self._traces:
            program = build_workload(workload, self.scale)
            compiled = compile_program(program, self.compile_options)
            self._traces[workload] = execute(
                compiled, max_instructions=self.max_instructions)
        return self._traces[workload]


def make_model(model: str, trace: Trace,
               config: Optional[MachineConfig] = None,
               check: bool = False, tracer=None, slow: bool = False):
    """Instantiate one named model (including ablations) over a trace.

    ``tracer`` attaches a :class:`~repro.telemetry.events.Tracer` for
    cycle-level event tracing; the default (off) costs one attribute
    check per instrumentation site and leaves stats bit-identical.
    ``slow`` selects the cycle-by-cycle reference loop (no stall
    fast-forwarding) — the differential baseline for the fast path.
    """
    factories = {**MODEL_FACTORIES, **ABLATION_FACTORIES}
    if model not in factories:
        raise KeyError(f"unknown model {model!r}; "
                       f"available: {sorted(factories)}")
    return factories[model](trace, config or MachineConfig(), check=check,
                            tracer=tracer, slow=slow)


def run_model(model: str, trace: Trace,
              config: Optional[MachineConfig] = None,
              check: bool = False, tracer=None,
              slow: bool = False) -> SimStats:
    """Run one named model (including ablations) over a prepared trace."""
    return make_model(model, trace, config, check=check,
                      tracer=tracer, slow=slow).run()


@dataclass
class Matrix:
    """Results of a models x workloads sweep."""

    scale: float
    results: Dict[Tuple[str, str], SimStats] = field(default_factory=dict)

    def get(self, workload: str, model: str) -> SimStats:
        return self.results[(workload, model)]

    def speedup(self, workload: str, model: str,
                baseline: str = "inorder") -> float:
        return self.get(workload, model).speedup_over(
            self.get(workload, baseline))

    def workloads(self):
        return sorted({w for w, _ in self.results})

    def models(self):
        return sorted({m for _, m in self.results})


def run_matrix(models: Iterable[str],
               workloads: Iterable[str] = ALL_WORKLOADS,
               config: Optional[MachineConfig] = None,
               scale: float = 1.0,
               cache: Optional[TraceCache] = None,
               parallel: Union[None, int, str] = None,
               results_cache=None,
               cell_timeout: Optional[float] = None) -> Matrix:
    """Run every (model, workload) combination.

    ``parallel`` fans the cell grid out over a process pool (default:
    $REPRO_JOBS, else serial) and ``results_cache`` serves unchanged
    cells from an on-disk store (default: $REPRO_RESULTS_CACHE, else
    off); both paths are bit-identical to the serial one.  Any failed
    cell raises :class:`~repro.harness.parallel.SweepError` after one
    retry — use :func:`~repro.harness.parallel.sweep` directly for a
    report with recorded failure rows instead.
    """
    from .parallel import resolve_jobs, sweep
    from .results_cache import resolve_results_cache
    jobs = resolve_jobs(parallel)
    store = resolve_results_cache(results_cache)
    if jobs > 1 or store is not None:
        models = list(models)
        workloads = list(workloads)
        report = sweep(
            models, workloads, config=config,
            scale=cache.scale if cache else scale,
            compile_options=cache.compile_options if cache else None,
            max_instructions=(cache.max_instructions if cache
                              else 5_000_000),
            jobs=jobs, results_cache=store, timeout=cell_timeout)
        report.raise_on_failure()
        return report.matrix
    cache = cache or TraceCache(scale)
    matrix = Matrix(scale=cache.scale)
    for workload in workloads:
        trace = cache.trace(workload)
        for model in models:
            matrix.results[(workload, model)] = run_model(model, trace,
                                                          config)
    return matrix


def geomean(values) -> float:
    """Geometric mean (the paper reports average speedups this way)."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError(f"geomean requires positive values, got {v}")
        product *= v
    return product ** (1.0 / len(values))
