"""Machine configuration (Table 2 of the paper).

One :class:`MachineConfig` drives every timing model so that comparisons
between in-order, multipass, runahead and out-of-order cores differ only in
the microarchitecture under test.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .memory.configs import base_hierarchy
from .memory.hierarchy import HierarchyConfig
from .resources import PortModel


@dataclass(frozen=True)
class MachineConfig:
    """All parameters shared by (or specific to) the simulated cores.

    Defaults reproduce Table 2: a 6-issue EPIC machine with Itanium 2
    functional-unit distribution, 1024-entry gshare, the contemporary
    cache hierarchy, a 256-entry multipass instruction queue, and an
    out-of-order configuration with a 128-entry scheduling window,
    256-entry reorder buffer and 3 additional scheduling/renaming stages.
    """

    name: str = "itanium2-like"
    ports: PortModel = PortModel()
    hierarchy: HierarchyConfig = field(default_factory=base_hierarchy)

    # Front end.
    fetch_width: int = 6
    branch_predictor_entries: int = 1024
    mispredict_penalty: int = 6
    instruction_bytes: int = 16   # dispersal footprint per instruction
    #: Install the static code in the I-caches at reset.  Kernels stand in
    #: for steady-state SPEC execution where the loop code is resident.
    prewarm_icache: bool = True

    # Baseline in-order instruction buffer (Itanium 2 holds ~24).
    inorder_buffer_size: int = 24

    # Multipass structures (Table 2 + Section 4.2).
    multipass_queue_size: int = 256
    asc_entries: int = 64
    asc_assoc: int = 2
    smaq_entries: int = 128
    flush_penalty: int = 6
    #: Pipe-refill cycles after an advance restart (DEQ->REG re-traversal).
    advance_restart_refill: int = 3
    #: Cycles between the triggering stall and the first advance issue
    #: (latching the architectural stream, switching to the PEEK pointer).
    advance_entry_delay: int = 2

    # Out-of-order structures (Table 2).
    ooo_window: int = 128
    ooo_rob: int = 256
    ooo_extra_stages: int = 3

    def with_hierarchy(self, hierarchy: HierarchyConfig) -> "MachineConfig":
        """A copy of this configuration with a different memory system."""
        return replace(self, hierarchy=hierarchy,
                       name=f"{self.name}/{hierarchy.name}")


def itanium2_like() -> MachineConfig:
    """The experimental machine of Table 2."""
    return MachineConfig()
