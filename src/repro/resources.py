"""Issue-port resource model shared by the compiler and the timing cores.

Models the Itanium-2-like dispersal network of the paper's machine
(Table 2: "6-issue, Itanium 2 FU distribution"): up to six instructions
issue per cycle onto M (memory), I (integer), F (floating point) and B
(branch) ports.  Memory operations need an M port; integer ALU operations
prefer an I port but can fall back to M; multiplies, divides and floating
point use F ports; branches use B ports.
"""

from __future__ import annotations

from dataclasses import dataclass

from .isa.opcodes import FUClass


@dataclass(frozen=True)
class PortModel:
    """Per-cycle issue capacity."""

    width: int = 6
    m_ports: int = 4
    i_ports: int = 2
    f_ports: int = 2
    b_ports: int = 3

    def new_tracker(self) -> "PortTracker":
        return PortTracker(self)


class PortTracker:
    """Tracks one cycle's port usage; ask-then-commit interface."""

    __slots__ = ("model", "issued", "m_used", "i_used", "f_used", "b_used")

    def __init__(self, model: PortModel):
        self.model = model
        self.reset()

    def reset(self) -> None:
        self.issued = 0
        self.m_used = 0
        self.i_used = 0
        self.f_used = 0
        self.b_used = 0

    def can_issue(self, fu: FUClass) -> bool:
        """True if an instruction of class ``fu`` still fits this cycle."""
        model = self.model
        if self.issued >= model.width:
            return False
        if fu is FUClass.MEM:
            return self.m_used < model.m_ports
        if fu is FUClass.ALU:
            return (self.i_used < model.i_ports
                    or self.m_used < model.m_ports)
        if fu in (FUClass.FP, FUClass.MULDIV):
            return self.f_used < model.f_ports
        if fu is FUClass.BR:
            return self.b_used < model.b_ports
        return True  # FUClass.NONE consumes only an issue slot

    def issue(self, fu: FUClass) -> None:
        """Commit one instruction of class ``fu``; call can_issue first."""
        if not self.can_issue(fu):
            raise ValueError(f"no free port for {fu} this cycle")
        self.issued += 1
        if fu is FUClass.MEM:
            self.m_used += 1
        elif fu is FUClass.ALU:
            if self.i_used < self.model.i_ports:
                self.i_used += 1
            else:
                self.m_used += 1
        elif fu in (FUClass.FP, FUClass.MULDIV):
            self.f_used += 1
        elif fu is FUClass.BR:
            self.b_used += 1


#: Small-int port class per FUClass for cores that inline the tracker
#: into their hot loops: 0 = MEM, 1 = ALU (I port with M fallback),
#: 2 = FP/MULDIV, 3 = BR, 4 = slot-only (``FUClass.NONE``).  Mirrors
#: :meth:`PortTracker.can_issue` / :meth:`PortTracker.issue` dispatch.
PORT_CODE = {
    FUClass.MEM: 0,
    FUClass.ALU: 1,
    FUClass.FP: 2,
    FUClass.MULDIV: 2,
    FUClass.BR: 3,
    FUClass.NONE: 4,
}
