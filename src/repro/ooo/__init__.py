"""Out-of-order baselines: ideal (Fig. 6) and realistic (Section 5.2)."""

from .core import (IdealOOOCore, OutOfOrderCore, RealisticOOOCore,
                   simulate_ooo, simulate_realistic_ooo)

__all__ = [
    "IdealOOOCore", "OutOfOrderCore", "RealisticOOOCore", "simulate_ooo",
    "simulate_realistic_ooo",
]
