"""Out-of-order execution models.

Two variants, both trace driven:

* **Ideal OOO** (Figure 6's ``OOO``): an idealized dynamically scheduled
  machine per Section 5.1 — scheduling and register-file read both happen
  in the REG stage (no speculative wakeup), the register renamer is ideal
  (predication included), the 128-entry scheduling window deallocates at
  issue, and instructions retire through a 256-entry reorder buffer.  The
  only extra costs modelled are the three additional scheduling/renaming
  stages, charged on every branch-misprediction refill.
* **Realistic OOO** (Section 5.2's comparison point): identical, except
  dynamic scheduling uses three decentralized 16-entry issue queues
  (memory, integer, floating point).  A full queue blocks dispatch in
  order, which throttles how far ahead the machine can look during a long
  miss — the reason multipass outperforms it.

Stall attribution follows the paper: a cycle with no instruction execution
is charged to the stall cause of the oldest in-flight instruction, or to
the front end when the instruction queue is empty.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from ..isa.columns import columns_of
from ..isa.opcodes import FUClass
from ..isa.registers import NUM_REGS
from ..isa.trace import Trace, TraceEntry
from ..machine import MachineConfig
from ..pipeline.base import BaseCore
from ..pipeline.stats import SimStats, StallCategory
from .columnar import run_columnar

#: Sentinel wake-up target meaning "no in-flight completion at all".
_INF = 1 << 62


class _RobEntry:
    """One in-flight instruction."""

    __slots__ = ("entry", "seq", "producers", "issued", "ready",
                 "is_load_wait", "blocked_on")

    def __init__(self, entry: TraceEntry, producers):
        self.entry = entry
        self.seq = entry.seq
        self.producers = producers   # seqs of in-flight producers
        self.issued = False
        self.ready = -1              # result-available cycle once issued
        self.is_load_wait = False
        self.blocked_on = None       # cached not-yet-ready producer seq


class OutOfOrderCore(BaseCore):
    """Dataflow-scheduled core with a ROB and (de)centralized windows."""

    model_name = "ooo"

    #: Which decentralized queue an FU class occupies (realistic model).
    _QUEUE_OF = {
        FUClass.MEM: "mem",
        FUClass.ALU: "int",
        FUClass.BR: "int",
        FUClass.NONE: "int",
        FUClass.FP: "fp",
        FUClass.MULDIV: "fp",
    }

    def __init__(self, trace: Trace, config: Optional[MachineConfig] = None,
                 decentralized_queues: Optional[int] = None,
                 ideal: bool = True, check: bool = False, tracer=None,
                 slow: bool = False):
        config = config or MachineConfig()
        # The deeper OOO pipe pays its extra stages on every refill.
        config = replace(
            config,
            mispredict_penalty=(config.mispredict_penalty
                                + config.ooo_extra_stages),
        )
        super().__init__(trace, config, config.ooo_rob, check=check,
                         tracer=tracer, slow=slow)
        self._tracker = config.ports.new_tracker()
        self.decentralized_queues = decentralized_queues
        #: The Section 5.1 idealizations: the ideal model performs
        #: scheduling and register-file read in the REG stage (no
        #: speculative-wakeup bubble) and renames predicates ideally.
        #: The realistic model pays one wakeup-loop cycle between
        #: dependent instructions and treats a qualifying predicate as a
        #: data dependence on both the predicate and the destination's
        #: prior value (conventional handling of predicated code [24]).
        self.ideal = ideal
        self.wakeup_delay = 0 if ideal else 1
        if decentralized_queues:
            self.model_name = "ooo-realistic"
            self.stats.model = self.model_name

    # ------------------------------------------------------------------

    def run(self, max_cycles: int = 500_000_000) -> SimStats:
        """Route to the columnar kernel or the scalar reference loop.

        The event-driven columnar kernel (:mod:`repro.ooo.columnar`) is
        the production path; ``--slow`` and traced runs take the scalar
        cycle loop below, which doubles as the bit-identity reference
        (telemetry needs per-cycle event fidelity anyway).  Both paths
        support ``--check`` replay.
        """
        if self.slow or self.tracer.enabled:
            return self._run_scalar(max_cycles)
        return run_columnar(self, max_cycles)

    def _run_scalar(self, max_cycles: int = 500_000_000) -> SimStats:
        trace = self.trace
        entries = trace.entries
        dec = trace.decoded
        n = dec.n
        d_ifu = dec.issue_fu
        d_srcs = dec.srcs
        d_dests = dec.dests
        d_sdests = dec.static_dests
        d_pred = dec.is_predicated
        d_lat = dec.latency
        d_mem = dec.mem_exec
        d_load = dec.is_load
        d_addr = dec.addr
        d_branch = dec.is_branch
        d_pc = dec.pc
        config = self.config
        frontend = self.frontend
        window = config.ooo_window
        rob_capacity = config.ooo_rob
        width = config.ports.width
        stats = self.stats
        counters = stats.counters
        access = self.hierarchy.access
        wakeup_delay = self.wakeup_delay
        merge_dests = not self.ideal
        # Issue-port capacity inlined as plain counters (the PortTracker
        # ask-then-commit pair is two calls per issued instruction); the
        # width bound is enforced by the ``issued >= width`` break.
        ports = config.ports
        m_ports = ports.m_ports
        i_ports = ports.i_ports
        f_ports = ports.f_ports
        b_ports = ports.b_ports
        port_code = columns_of(dec).port_code  # shared column
        EXECUTION = StallCategory.EXECUTION
        FRONT_END = StallCategory.FRONT_END
        LOAD = StallCategory.LOAD
        # Cycle-category tallies kept in locals (one add per cycle
        # instead of a method call + enum-keyed dict update); flushed
        # into stats.cycle_breakdown after the loop.
        c_exec = c_fe = c_load = c_other = 0

        tel = self.tracer if self.tracer.enabled else None
        replay = self.replay
        rob: List[_RobEntry] = []         # in seq order
        waiting: List[_RobEntry] = []     # un-issued entries, in seq order
        # seq -> result-available cycle; 0 means "not issued yet" (real
        # availability cycles are >= 1, as in the register scoreboards).
        value_ready = [0] * n
        # reg -> last producing seq (-1: none); writer_is_load is only
        # consulted while last_writer points at its seq, so stale slots
        # are harmless.
        last_writer = [-1] * NUM_REGS
        writer_is_load = [False] * NUM_REGS
        dispatch_ptr = 0
        commit_ptr = 0                    # next seq to commit
        now = 0
        queue_cap = self.decentralized_queues
        queue_fill = {"mem": 0, "int": 0, "fp": 0}
        queue_of = self._QUEUE_OF
        # A zero-issue scan over an unchanged window is a pure poll: its
        # outcome cannot change until the earliest blocking producer
        # completes (a squash needs an issue, and newly dispatched
        # entries join at the tail without unblocking older ones), so
        # the known-blocked prefix is not re-scanned until then — only
        # the tail positions added by dispatch.  This is a CPU-time
        # optimization only; no simulated state is touched by an elided
        # visit, and blocked_on caches are refreshed at the next full
        # scan.
        scan_sleep_until = 0
        blocked_prefix = 0            # leading waiting slots known blocked

        while commit_ptr < n:
            if now > max_cycles:
                self.check_cycle_budget(now, max_cycles)
            # tick() is a no-op once the whole trace is fetched (its
            # limit clamps to n); a squash rolls fetched_until back, so
            # the guard re-arms itself after redirects.
            if frontend.fetched_until < n:
                frontend.tick(now, commit_ptr)

            # ---- dispatch (rename) ------------------------------------
            dispatched = 0
            fetched_until = frontend.fetched_until
            while (dispatched < width
                   and dispatch_ptr < fetched_until
                   and len(rob) < rob_capacity):
                seq = dispatch_ptr
                fu = d_ifu[seq]
                if queue_cap is not None:
                    queue = queue_of[fu]
                    if queue_fill[queue] >= queue_cap:
                        break             # in-order dispatch blocks
                    queue_fill[queue] += 1
                producers = {}
                for src in d_srcs[seq]:
                    pseq = last_writer[src]
                    if pseq >= 0:
                        r = value_ready[pseq]
                        if r == 0 or r > now:
                            producers[pseq] = writer_is_load[src]
                if merge_dests and d_pred[seq]:
                    # Without predicate renaming, a predicated write must
                    # merge with the destination's previous value.
                    dest_iter = d_sdests[seq]
                    for dest in dest_iter:
                        pseq = last_writer[dest]
                        if pseq >= 0:
                            r = value_ready[pseq]
                            if r == 0 or r > now:
                                producers[pseq] = writer_is_load[dest]
                else:
                    dest_iter = d_dests[seq]
                is_load = d_load[seq]
                for dest in dest_iter:
                    last_writer[dest] = seq
                    writer_is_load[dest] = is_load
                rob_entry = _RobEntry(entries[seq], producers)
                rob.append(rob_entry)
                waiting.append(rob_entry)
                dispatch_ptr += 1
                dispatched += 1

            # ---- issue (dataflow select) ------------------------------
            issued = 0
            squash_after = None
            scanned = 0 if now >= scan_sleep_until else blocked_prefix
            limit = len(waiting)
            if limit > window:
                limit = window
            if scanned < limit:
                full_scan = scanned == 0
                m_used = i_used = f_used = b_used = 0
                retry_min = _INF
                while scanned < limit:
                    rob_entry = waiting[scanned]
                    scanned += 1
                    seq = rob_entry.seq
                    # Re-check the cached blocking producer first.
                    blocked = rob_entry.blocked_on
                    if blocked is not None:
                        r = value_ready[blocked]
                        if r == 0 or r > now:
                            if 0 < r < retry_min:
                                retry_min = r
                            continue
                        rob_entry.blocked_on = None
                    for pseq in rob_entry.producers:
                        r = value_ready[pseq]
                        if r == 0 or r > now:
                            rob_entry.blocked_on = pseq
                            if 0 < r < retry_min:
                                retry_min = r
                            break
                    if rob_entry.blocked_on is not None:
                        continue
                    code = port_code[seq]
                    if code == 0:          # MEM
                        if m_used >= m_ports:
                            continue
                        m_used += 1
                    elif code == 1:        # ALU: I port, M fallback
                        if i_used < i_ports:
                            i_used += 1
                        elif m_used < m_ports:
                            m_used += 1
                        else:
                            continue
                    elif code == 2:        # FP / MULDIV
                        if f_used >= f_ports:
                            continue
                        f_used += 1
                    elif code == 3:        # BR
                        if b_used >= b_ports:
                            continue
                        b_used += 1
                    latency = d_lat[seq]
                    rob_entry.is_load_wait = False
                    if d_mem[seq]:
                        if d_load[seq]:
                            result = access(d_addr[seq], now)
                            latency = result.latency
                            rob_entry.is_load_wait = result.l1_miss
                            counters["loads_issued"] += 1
                            if result.l1_miss:
                                counters["l1d_load_misses"] += 1
                                if tel is not None:
                                    tel.cache_miss(now, seq, d_pc[seq],
                                                   result.level)
                        else:
                            access(d_addr[seq], now, kind="store")
                    if tel is not None:
                        tel.issue(now, seq, d_pc[seq])
                    rob_entry.issued = True
                    ready = now + latency
                    rob_entry.ready = ready
                    value_ready[seq] = ready + wakeup_delay
                    if queue_cap is not None:
                        queue_fill[queue_of[d_ifu[seq]]] -= 1
                    issued += 1
                    if d_branch[seq]:
                        if frontend.resolve_branch(rob_entry.entry, now):
                            counters["mispredicts"] += 1
                            squash_after = seq
                            break
                    if issued >= width:
                        break
                if issued:
                    # Only now has the waiting list actually changed.
                    # Issued entries live in the scanned prefix, so only
                    # that slice needs filtering — the (often much
                    # longer) unscanned tail shifts down in C.
                    waiting[:scanned] = [
                        e for e in waiting[:scanned] if not e.issued]
                    scan_sleep_until = 0
                    blocked_prefix = 0
                else:
                    # Nothing issuable: this window can only change when
                    # a blocking producer completes (retry_min) or a
                    # squash occurs (impossible without an issue); newly
                    # dispatched tail entries get their own partial scan.
                    if not full_scan and scan_sleep_until < retry_min:
                        retry_min = scan_sleep_until
                    scan_sleep_until = retry_min
                    blocked_prefix = limit

            if squash_after is not None:
                # Squash wrong-path work younger than the branch.
                kept = []
                for rob_entry in rob:
                    if rob_entry.seq <= squash_after:
                        kept.append(rob_entry)
                        continue
                    if queue_cap is not None and not rob_entry.issued:
                        queue_fill[queue_of[d_ifu[rob_entry.seq]]] -= 1
                    value_ready[rob_entry.seq] = 0
                rob = kept
                waiting = [e for e in waiting if e.seq <= squash_after]
                dispatch_ptr = squash_after + 1
                for reg in range(NUM_REGS):
                    if last_writer[reg] > squash_after:
                        last_writer[reg] = -1

            # ---- commit ------------------------------------------------
            committed = 0
            while rob and committed < width:
                head = rob[0]
                if not head.issued or head.ready > now:
                    break
                del rob[0]
                commit_ptr = head.seq + 1
                stats.instructions += 1
                if tel is not None:
                    self.commit_entry(head.entry, now)
                elif replay is not None:
                    replay.commit(head.entry)
                committed += 1

            # ---- attribution -------------------------------------------
            if issued:
                c_exec += 1
                if tel is not None:
                    tel.charge(now, EXECUTION)
            elif not rob:
                c_fe += 1
                if tel is not None:
                    has_blocked = dispatch_ptr < n
                    tel.charge(now, FRONT_END,
                               seq=dispatch_ptr if has_blocked else -1,
                               pc=d_pc[dispatch_ptr] if has_blocked else -1)
            else:
                cause = self._oldest_stall_cause(rob, now, value_ready)
                if cause is LOAD:
                    c_load += 1
                else:
                    c_other += 1
                if tel is not None:
                    head = rob[0]
                    tel.charge(now, cause, seq=head.seq,
                               pc=d_pc[head.seq])
            now += 1

            # ---- idle fast-forward --------------------------------------
            # Whole-machine quiescence: nothing dispatched, issued or
            # committed this cycle, so the earliest in-flight completion
            # bounds the next state change (the next_event_cycle contract,
            # with dispatch as the consume pointer; --slow disables it).
            if not issued and not committed and not dispatched and rob:
                wake = _INF
                for rob_entry in rob:
                    if rob_entry.issued:
                        # Two horizons per in-flight entry: completion
                        # (commit eligibility, ``ready``) and wakeup
                        # (consumers see the value ``wakeup_delay``
                        # cycles later on the realistic model; for
                        # in-ROB entries value_ready[seq] is always
                        # ready + wakeup_delay, so it needs no lookup).
                        # Events landing exactly on ``now`` count too —
                        # ``now`` is already the *next* cycle here, and
                        # an event at ``now`` makes it non-quiescent
                        # (wake == now vetoes the skip).
                        r = rob_entry.ready
                        if r < now:
                            r += wakeup_delay
                            if r < now:
                                continue
                        if r < wake:
                            wake = r
                skip_to = self.next_event_cycle(now, wake, dispatch_ptr)
                if now < skip_to < _INF:
                    cause = self._oldest_stall_cause(rob, now, value_ready)
                    if cause is LOAD:
                        c_load += skip_to - now
                    else:
                        c_other += skip_to - now
                    if tel is not None:
                        head = rob[0]
                        tel.charge(now, cause, seq=head.seq,
                                   pc=d_pc[head.seq],
                                   cycles=skip_to - now)
                    now = skip_to

        breakdown = stats.cycle_breakdown
        breakdown[EXECUTION] += c_exec
        breakdown[FRONT_END] += c_fe
        breakdown[LOAD] += c_load
        breakdown[StallCategory.OTHER] += c_other
        stats.cycles += c_exec + c_fe + c_load + c_other
        return self.finalize()

    # ------------------------------------------------------------------

    def _oldest_stall_cause(self, rob: List[_RobEntry], now: int,
                            value_ready: List[int]) -> StallCategory:
        """Attribute a zero-issue cycle to the oldest instruction's cause."""
        head = rob[0]
        if head.issued:
            return (StallCategory.LOAD if head.is_load_wait
                    else StallCategory.OTHER)
        for pseq, is_load in head.producers.items():
            ready = value_ready[pseq]
            if ready == 0 or ready > now:
                return (StallCategory.LOAD if is_load
                        else StallCategory.OTHER)
        return StallCategory.OTHER   # port conflict or window limit

    def next_event_cycle(self, now: int, wait_until: int,
                         consume_ptr: int) -> int:
        """OOO variant of the fast-forward contract.

        Dispatch is bounded by the ROB rather than a fetch-buffer window,
        so the front-end clamp keys on the dispatch pointer directly: a
        skip is allowed only while dispatch is starved (nothing fetched
        beyond it) and fetch itself is either finished or I-stalled —
        in the latter case the skip is capped at the I-miss fill.
        """
        if self.slow or wait_until <= now:
            return now
        frontend = self.frontend
        if consume_ptr < len(self.trace):
            if frontend.fetched_until > consume_ptr:
                return now               # dispatch could proceed next cycle
            stall_until = frontend.stall_until
            if stall_until <= now:
                return now               # front end actively fetching
            if stall_until < wait_until:
                wait_until = stall_until
        return wait_until


class IdealOOOCore(OutOfOrderCore):
    """Alias with the Figure 6 model name."""

    model_name = "ooo"

    def __init__(self, trace: Trace,
                 config: Optional[MachineConfig] = None,
                 check: bool = False, tracer=None, slow: bool = False):
        super().__init__(trace, config, decentralized_queues=None,
                         check=check, tracer=tracer, slow=slow)


class RealisticOOOCore(OutOfOrderCore):
    """Decentralized 16-entry issue queues (Section 5.2)."""

    model_name = "ooo-realistic"

    def __init__(self, trace: Trace,
                 config: Optional[MachineConfig] = None,
                 queue_entries: int = 16, check: bool = False,
                 tracer=None, slow: bool = False):
        super().__init__(trace, config,
                         decentralized_queues=queue_entries, ideal=False,
                         check=check, tracer=tracer, slow=slow)


def simulate_ooo(trace: Trace, config: Optional[MachineConfig] = None
                 ) -> SimStats:
    """Run the idealized out-of-order model over ``trace``."""
    return IdealOOOCore(trace, config).run()


def simulate_realistic_ooo(trace: Trace,
                           config: Optional[MachineConfig] = None,
                           queue_entries: int = 16) -> SimStats:
    """Run the realistic decentralized-queue OOO model over ``trace``."""
    return RealisticOOOCore(trace, config,
                            queue_entries=queue_entries).run()
