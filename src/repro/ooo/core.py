"""Out-of-order execution models.

Two variants, both trace driven:

* **Ideal OOO** (Figure 6's ``OOO``): an idealized dynamically scheduled
  machine per Section 5.1 — scheduling and register-file read both happen
  in the REG stage (no speculative wakeup), the register renamer is ideal
  (predication included), the 128-entry scheduling window deallocates at
  issue, and instructions retire through a 256-entry reorder buffer.  The
  only extra costs modelled are the three additional scheduling/renaming
  stages, charged on every branch-misprediction refill.
* **Realistic OOO** (Section 5.2's comparison point): identical, except
  dynamic scheduling uses three decentralized 16-entry issue queues
  (memory, integer, floating point).  A full queue blocks dispatch in
  order, which throttles how far ahead the machine can look during a long
  miss — the reason multipass outperforms it.

Stall attribution follows the paper: a cycle with no instruction execution
is charged to the stall cause of the oldest in-flight instruction, or to
the front end when the instruction queue is empty.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from ..isa.opcodes import FUClass
from ..isa.trace import Trace, TraceEntry
from ..machine import MachineConfig
from ..pipeline.base import BaseCore, SimulationDiverged
from ..pipeline.stats import SimStats, StallCategory


class _RobEntry:
    """One in-flight instruction."""

    __slots__ = ("entry", "seq", "producers", "issued", "ready",
                 "is_load_wait", "blocked_on")

    def __init__(self, entry: TraceEntry, producers):
        self.entry = entry
        self.seq = entry.seq
        self.producers = producers   # seqs of in-flight producers
        self.issued = False
        self.ready = -1              # result-available cycle once issued
        self.is_load_wait = False
        self.blocked_on = None       # cached not-yet-ready producer seq


class OutOfOrderCore(BaseCore):
    """Dataflow-scheduled core with a ROB and (de)centralized windows."""

    model_name = "ooo"

    #: Which decentralized queue an FU class occupies (realistic model).
    _QUEUE_OF = {
        FUClass.MEM: "mem",
        FUClass.ALU: "int",
        FUClass.BR: "int",
        FUClass.NONE: "int",
        FUClass.FP: "fp",
        FUClass.MULDIV: "fp",
    }

    def __init__(self, trace: Trace, config: Optional[MachineConfig] = None,
                 decentralized_queues: Optional[int] = None,
                 ideal: bool = True, check: bool = False, tracer=None):
        config = config or MachineConfig()
        # The deeper OOO pipe pays its extra stages on every refill.
        config = replace(
            config,
            mispredict_penalty=(config.mispredict_penalty
                                + config.ooo_extra_stages),
        )
        super().__init__(trace, config, config.ooo_rob, check=check,
                         tracer=tracer)
        self.decentralized_queues = decentralized_queues
        #: The Section 5.1 idealizations: the ideal model performs
        #: scheduling and register-file read in the REG stage (no
        #: speculative-wakeup bubble) and renames predicates ideally.
        #: The realistic model pays one wakeup-loop cycle between
        #: dependent instructions and treats a qualifying predicate as a
        #: data dependence on both the predicate and the destination's
        #: prior value (conventional handling of predicated code [24]).
        self.ideal = ideal
        self.wakeup_delay = 0 if ideal else 1
        if decentralized_queues:
            self.model_name = "ooo-realistic"
            self.stats.model = self.model_name

    # ------------------------------------------------------------------

    def run(self, max_cycles: int = 500_000_000) -> SimStats:
        trace = self.trace
        entries = trace.entries
        n = len(entries)
        config = self.config
        frontend = self.frontend
        window = config.ooo_window
        rob_capacity = config.ooo_rob
        width = config.ports.width

        tel = self.tracer if self.tracer.enabled else None
        rob: List[_RobEntry] = []         # in seq order
        waiting: List[_RobEntry] = []     # un-issued entries, in seq order
        value_ready: Dict[int, int] = {}  # seq -> result-available cycle
        last_writer: Dict[int, int] = {}  # reg -> producing seq
        writer_is_load: Dict[int, bool] = {}
        dispatch_ptr = 0
        commit_ptr = 0                    # next seq to commit
        now = 0
        queue_cap = self.decentralized_queues
        queue_fill = {"mem": 0, "int": 0, "fp": 0}

        def producer_ready(seq: int) -> bool:
            ready = value_ready.get(seq)
            return ready is not None and ready <= now

        while commit_ptr < n:
            if now > max_cycles:
                raise SimulationDiverged(
                    f"{self.model_name} exceeded {max_cycles} cycles on "
                    f"{trace.program.name}")
            frontend.tick(now, commit_ptr)

            # ---- dispatch (rename) ------------------------------------
            dispatched = 0
            while (dispatched < width
                   and dispatch_ptr < frontend.fetched_until
                   and len(rob) < rob_capacity):
                entry = entries[dispatch_ptr]
                fu = self.issue_fu(entry)
                if queue_cap is not None:
                    queue = self._QUEUE_OF[fu]
                    if queue_fill[queue] >= queue_cap:
                        break             # in-order dispatch blocks
                    queue_fill[queue] += 1
                producers = {}
                for src in entry.srcs:
                    pseq = last_writer.get(src)
                    if pseq is not None and not producer_ready(pseq):
                        producers[pseq] = writer_is_load.get(src, False)
                static_dests = entry.inst.dests
                if not self.ideal and entry.inst.is_predicated:
                    # Without predicate renaming, a predicated write must
                    # merge with the destination's previous value.
                    for dest in static_dests:
                        pseq = last_writer.get(dest)
                        if pseq is not None and not producer_ready(pseq):
                            producers[pseq] = writer_is_load.get(dest,
                                                                 False)
                    dest_iter = static_dests
                else:
                    dest_iter = entry.dests
                for dest in dest_iter:
                    last_writer[dest] = entry.seq
                    writer_is_load[dest] = entry.is_load
                rob_entry = _RobEntry(entry, producers)
                rob.append(rob_entry)
                waiting.append(rob_entry)
                dispatch_ptr += 1
                dispatched += 1

            # ---- issue (dataflow select) ------------------------------
            tracker = config.ports.new_tracker()
            issued = 0
            squash_after = None
            still_waiting = []
            for scanned, rob_entry in enumerate(waiting):
                if issued >= width or scanned >= window \
                        or squash_after is not None:
                    still_waiting.extend(waiting[scanned:])
                    break
                entry = rob_entry.entry
                # Fast path: re-check the cached blocking producer first.
                blocked = rob_entry.blocked_on
                if blocked is not None:
                    ready = value_ready.get(blocked)
                    if ready is None or ready > now:
                        still_waiting.append(rob_entry)
                        continue
                    rob_entry.blocked_on = None
                for pseq in rob_entry.producers:
                    ready = value_ready.get(pseq)
                    if ready is None or ready > now:
                        rob_entry.blocked_on = pseq
                        break
                if rob_entry.blocked_on is not None:
                    still_waiting.append(rob_entry)
                    continue
                fu = self.issue_fu(entry)
                if not tracker.can_issue(fu):
                    still_waiting.append(rob_entry)
                    continue
                tracker.issue(fu)
                latency = entry.inst.spec.latency
                rob_entry.is_load_wait = False
                if entry.executed and entry.inst.is_mem:
                    if entry.is_load:
                        result = self.hierarchy.access(entry.addr, now)
                        latency = result.latency
                        rob_entry.is_load_wait = result.l1_miss
                        self.stats.counters["loads_issued"] += 1
                        if result.l1_miss:
                            self.stats.counters["l1d_load_misses"] += 1
                            if tel is not None:
                                tel.cache_miss(now, entry.seq,
                                               entry.inst.index,
                                               result.level)
                    else:
                        self.hierarchy.access(entry.addr, now, kind="store")
                if tel is not None:
                    tel.issue(now, entry.seq, entry.inst.index)
                rob_entry.issued = True
                rob_entry.ready = now + latency
                value_ready[entry.seq] = rob_entry.ready + self.wakeup_delay
                if queue_cap is not None:
                    queue_fill[self._QUEUE_OF[fu]] -= 1
                issued += 1
                if entry.is_branch:
                    if frontend.resolve_branch(entry, now):
                        self.stats.counters["mispredicts"] += 1
                        squash_after = entry.seq
            waiting = still_waiting

            if squash_after is not None:
                # Squash wrong-path work younger than the branch.
                kept = []
                for rob_entry in rob:
                    if rob_entry.seq <= squash_after:
                        kept.append(rob_entry)
                        continue
                    if queue_cap is not None and not rob_entry.issued:
                        fu = self.issue_fu(rob_entry.entry)
                        queue_fill[self._QUEUE_OF[fu]] -= 1
                    value_ready.pop(rob_entry.seq, None)
                rob = kept
                waiting = [e for e in waiting if e.seq <= squash_after]
                dispatch_ptr = squash_after + 1
                last_writer = {r: s for r, s in last_writer.items()
                               if s <= squash_after}

            # ---- commit ------------------------------------------------
            committed = 0
            while rob and committed < width:
                head = rob[0]
                if not head.issued or head.ready > now:
                    break
                del rob[0]
                commit_ptr = head.seq + 1
                self.stats.instructions += 1
                self.commit_entry(head.entry, now)
                committed += 1

            # ---- attribution -------------------------------------------
            if issued:
                self.stats.charge(StallCategory.EXECUTION)
                if tel is not None:
                    tel.charge(now, StallCategory.EXECUTION)
            elif not rob:
                self.stats.charge(StallCategory.FRONT_END)
                if tel is not None:
                    blocked = entries[dispatch_ptr] \
                        if dispatch_ptr < n else None
                    tel.charge(now, StallCategory.FRONT_END,
                               seq=blocked.seq if blocked else -1,
                               pc=blocked.inst.index if blocked else -1)
            else:
                cause = self._oldest_stall_cause(rob, now, value_ready)
                self.stats.charge(cause)
                if tel is not None:
                    head = rob[0]
                    tel.charge(now, cause, seq=head.seq,
                               pc=head.entry.inst.index)
            now += 1

            # ---- idle fast-forward --------------------------------------
            if not issued and not committed and not dispatched and rob:
                wake = self._next_event(rob, frontend, dispatch_ptr, n, now)
                if wake > now:
                    cause = self._oldest_stall_cause(rob, now, value_ready)
                    self.stats.charge(cause, wake - now)
                    if tel is not None:
                        head = rob[0]
                        tel.charge(now, cause, seq=head.seq,
                                   pc=head.entry.inst.index,
                                   cycles=wake - now)
                    now = wake

        return self.finalize()

    # ------------------------------------------------------------------

    def _oldest_stall_cause(self, rob: List[_RobEntry], now: int,
                            value_ready: Dict[int, int]) -> StallCategory:
        """Attribute a zero-issue cycle to the oldest instruction's cause."""
        head = rob[0]
        if head.issued:
            return (StallCategory.LOAD if head.is_load_wait
                    else StallCategory.OTHER)
        for pseq, is_load in head.producers.items():
            ready = value_ready.get(pseq)
            if ready is None or ready > now:
                return (StallCategory.LOAD if is_load
                        else StallCategory.OTHER)
        return StallCategory.OTHER   # port conflict or window limit

    def _next_event(self, rob: List[_RobEntry], frontend, dispatch_ptr: int,
                    n: int, now: int) -> int:
        """Earliest cycle at which any state can change (for idle skips)."""
        candidates = []
        for rob_entry in rob:
            if rob_entry.issued and rob_entry.ready > now:
                candidates.append(rob_entry.ready)
        if dispatch_ptr < n:
            if frontend.fetched_until > dispatch_ptr:
                return now               # dispatch could proceed next cycle
            if frontend.stall_until > now:
                candidates.append(frontend.stall_until)
            else:
                return now               # front end actively fetching
        if not candidates:
            return now
        return min(candidates)


class IdealOOOCore(OutOfOrderCore):
    """Alias with the Figure 6 model name."""

    model_name = "ooo"

    def __init__(self, trace: Trace,
                 config: Optional[MachineConfig] = None,
                 check: bool = False, tracer=None):
        super().__init__(trace, config, decentralized_queues=None,
                         check=check, tracer=tracer)


class RealisticOOOCore(OutOfOrderCore):
    """Decentralized 16-entry issue queues (Section 5.2)."""

    model_name = "ooo-realistic"

    def __init__(self, trace: Trace,
                 config: Optional[MachineConfig] = None,
                 queue_entries: int = 16, check: bool = False,
                 tracer=None):
        super().__init__(trace, config,
                         decentralized_queues=queue_entries, ideal=False,
                         check=check, tracer=tracer)


def simulate_ooo(trace: Trace, config: Optional[MachineConfig] = None
                 ) -> SimStats:
    """Run the idealized out-of-order model over ``trace``."""
    return IdealOOOCore(trace, config).run()


def simulate_realistic_ooo(trace: Trace,
                           config: Optional[MachineConfig] = None,
                           queue_entries: int = 16) -> SimStats:
    """Run the realistic decentralized-queue OOO model over ``trace``."""
    return RealisticOOOCore(trace, config,
                            queue_entries=queue_entries).run()
