"""Event-driven columnar kernel for the out-of-order cores (gen 2).

Drop-in replacement for the scalar cycle loop in
:mod:`repro.ooo.core` (kept there as the ``--slow``/traced reference):
same machine, same statistics, bit-identical cycle counts and stall
attribution, but the per-cycle *work* is restructured around
preallocated flat columns and a shared event calendar
(:mod:`repro.pipeline.eventq`) instead of polling the scheduling
window:

* **Wakeup is consumer-driven, off a static-pending accumulator.**
  ``spend[c]`` always equals the number of c's *static* producers whose
  values are currently invisible: it starts at the static in-degree,
  every producer-visibility event — fired at ``issue + latency +
  wakeup_delay``, the realistic model's wakeup delay folded into the
  event time at insertion — walks its full static consumer row (the
  CSR of :mod:`repro.isa.columns`) decrementing it, and a squash
  re-increments the rows of fires it rewinds.  Each dependence edge is
  therefore visited exactly once per fire, dispatch reads its dynamic
  invisible-producer count straight out of the accumulator (a producer
  the old dispatch-time filter would have dropped has already fired
  and decremented), and a dispatched consumer hitting zero drops
  straight into the ready queue.  Nothing ever scans a waiting list;
  the old sorted ``waiting`` list survives only as the ``n_waiting``
  counter, and the window boundary — only meaningful when more than
  ``window`` seqs wait, which is rare — is recovered on demand from the
  ROB range, whose un-issued subsequence is exactly the old list.
* **Dirty rename epochs fall back to dynamic producers.**  The scalar
  loop's squash reset *forgets* a surviving producer once a wrong-path
  writer clobbered its register — observable seed behaviour the static
  graph cannot express — so from a squash until every forgotten
  register is rewritten, dispatch walks the last-writer table exactly
  like the scalar loop, stores the invisible producers (``cprods``)
  with their count (``pending``), and flags the seq ``dirty``; the
  fire walk honours the flag (membership-checked dynamic decrement)
  while still maintaining the static accumulator underneath.
* **The ready queue pops from a head pointer.**  One ascending seq
  list consumed from a moving head: while the scan has skipped no
  port-starved entry, issuing is a pure head advance — no ``del
  ready[i]`` shift, no bisect — and only after a starvation skip does
  the issued seq come out of the middle, which is the old kernel's
  behaviour and rare.  The scan itself is the scalar loop's: oldest
  first, per-class port budgets decremented in visit order (ALU takes
  an I port, spilling to M ports; a spilled ALU can starve MEM), so it
  selects exactly the seqs the scalar scan would, in the same order.
  (A five-way port-class bucket split with a cached-head merge was
  measured here and *lost*: its per-cycle class bookkeeping costs more
  than starvation-skip shifts ever did — see ``EXPERIMENTS.md``.)
  Dead prefixes behind the head are reclaimed lazily.
* **The ROB is a range, not a list.**  In-order dispatch of
  consecutive seqs, in-order commit and suffix-truncating squashes
  keep the ROB contents equal to ``range(commit_ptr, dispatch_ptr)``
  at every cycle boundary, so the kernel stores no ROB list at all:
  occupancy is ``dispatch_ptr - commit_ptr``, the dispatch gate is
  ``commit_ptr + rob_capacity``, commit walks ``commit_ptr`` forward,
  and squash is a loop over ``range(squash_after + 1, dispatch_ptr)``.
* **Incarnations.**  A squash re-dispatches the same seqs (trace
  replay), so per-seq state is generation-stamped: ``gen[s]`` bumps at
  squash and calendar entries carry the gen at insertion; a stale
  entry is discarded at drain.

Equivalence invariants (the bit-identity contract, see
``docs/architecture.md`` §13):

* A consumer enters the ready queue at cycle ``t`` iff every rename-time
  producer satisfies ``value_ready != 0 and value_ready <= t`` and ``t``
  is the earliest such cycle — exactly the scalar issue-scan predicate.
  Producer events fire at the start of their cycle, before dispatch and
  issue — the same ordering as the scalar loop's read of
  ``value_ready`` (a consumer dispatching the very cycle a producer
  becomes visible sees it visible and never counts it; the event walk
  cannot reach it because it fires before the consumer dispatches).
* Queue inserts at fire time use ``insort`` bounded below by the head —
  the region behind the head is dead and unordered, so the bound is a
  correctness requirement, not a hint — keeping the live region
  ascending; dispatch-time inserts are appends, since dispatch runs in
  ascending seq order and squash truncates the live region back below
  the squash point before any re-dispatch.
* No live event can land inside a fast-forwarded span: the skip is
  capped by the wake horizon, the minimum over in-flight completions —
  exactly the cycles producer events are scheduled at (modulo the
  ``wakeup_delay`` adjustment applied to both).  Only stale
  (squashed-gen) entries can be jumped; their stamp discards them when
  the wheel slot next comes around.
* The window boundary (the ``window``-th oldest un-issued seq) and the
  port counters are sampled once per cycle before the issue scan,
  matching the scalar scan's fixed candidate slice.

The memory fast paths mirror :class:`~repro.memory.MemoryHierarchy`
exactly: L1 hits (and in-flight-fill hits) are served inline with
localized stats/LRU clocks, and an L1D *miss* that merges into an
in-flight MSHR fill under an L2 directory hit — the dominant fallback
shape — is also inlined (same stats, same LRU, same pending-table side
effects); everything else walks ``hierarchy.access`` bracketed by
write-back/reload pairs.

The differential suites (``tests/property/test_columnar.py``,
``tests/property/test_fast_path.py``) and the golden matrix pin all of
this against the scalar loop.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from heapq import heappop, heappush

from ..isa.columns import columns_of
from ..isa.registers import NUM_REGS
from ..pipeline.eventq import WHEEL, EventCalendar
from ..pipeline.stats import SimStats, StallCategory

#: Sentinel wake-up target meaning "no in-flight completion at all".
_INF = 1 << 62


def run_columnar(core, max_cycles: int) -> SimStats:
    """Run an :class:`~repro.ooo.core.OutOfOrderCore` to completion.

    ``core`` must be freshly constructed, un-traced and not in ``--slow``
    mode (the caller routes those to the scalar reference loop).
    """
    trace = core.trace
    entries = trace.entries
    dec = trace.decoded
    n = dec.n
    cols = columns_of(dec)
    merge_dests = not core.ideal
    graph = cols.dependences(merge_dests)
    cons_lists = graph.cons_tuples()
    sprods = graph.prod_tuples()
    port_code = cols.port_code
    queue_code = cols.queue_code
    # Packed issue-path flags (bit0 mem, bit1 branch, bit2 consumers)
    # and prebuilt gen-0 wheel pairs; the pair list is copied because a
    # squash re-points the squashed seqs' entries at their new gen.
    kind = cols.issue_kind(merge_dests)
    ev_pair = list(cols.event_pairs())

    d_srcs = dec.srcs
    d_dests = dec.dests
    d_sdests = dec.static_dests
    d_pred = dec.is_predicated
    d_lat = dec.latency
    d_mem = dec.mem_exec
    d_load = dec.is_load
    d_addr = dec.addr
    d_branch = dec.is_branch
    d_taken = dec.taken

    config = core.config
    frontend = core.frontend
    window = config.ooo_window
    rob_capacity = config.ooo_rob
    width = config.ports.width
    fetch_buffer = core.buffer_size
    stats = core.stats
    counters = stats.counters
    hierarchy = core.hierarchy
    access = hierarchy.access
    # Inline L1 fast paths: the kernel probes the L1 dicts directly and
    # falls back to ``hierarchy.access`` whenever the line is absent or
    # any fill is still pending, mirroring the hierarchy's own hit fast
    # path (same stats, same LRU clocks, same latencies).
    h_pending = hierarchy._pending
    l1i_cache = hierarchy.l1i
    l1i_id = id(l1i_cache)
    l1i_sets = l1i_cache._sets
    l1i_nsets = l1i_cache._num_sets
    l1i_latency = l1i_cache.config.latency
    l1d_cache = hierarchy.l1d
    l1d_id = id(l1d_cache)
    l1d_sets = l1d_cache._sets
    l1d_line = l1d_cache._line_size
    l1d_nsets = l1d_cache._num_sets
    l1d_latency = l1d_cache.config.latency
    l1d_assoc = l1d_cache.config.assoc
    # L2 directory and MSHR file, localized for the L1D-miss merge fast
    # path in the issue loop (``MSHRFile._expire`` prunes ``_by_line``
    # in place, so the reference stays valid across fallbacks).
    l2_cache = hierarchy.l2
    l2_id = id(l2_cache)
    l2_sets = l2_cache._sets
    l2_line = l2_cache._line_size
    l2_nsets = l2_cache._num_sets
    mshr = hierarchy.mshrs
    mshr_by_line = mshr._by_line
    # L1 hit-path statistics and LRU clocks, localized.  ``access``
    # reads and advances the same counters, so every fallback call is
    # bracketed by a write-back/reload pair (and refreshes the pending
    # horizon, which only ``access`` extends).
    l1i_acc = l1i_cache.accesses
    l1i_hit = l1i_cache.hits
    l1i_clk = l1i_cache._clock
    l1d_acc = l1d_cache.accesses
    l1d_hit = l1d_cache.hits
    l1d_clk = l1d_cache._clock
    h_horizon = hierarchy._pending_horizon
    fetch_width = frontend._fetch_width
    inst_bytes = frontend._inst_bytes
    f_pcs = frontend._pcs
    f_lines = frontend._lines
    # Same-line fetch runs: ``f_run[i]`` is the first seq past ``i`` on
    # a different cache line, so a fetch group whose line is already
    # hot advances to the run end in one step instead of per-seq.
    f_run = cols.fetch_runs(inst_bytes, frontend._line_size)
    # Front-end scalars, localized for the whole run.  The redirect is
    # inlined below and ``frontend.tick`` is never called, so nothing
    # outside this loop reads or writes them until the write-back at
    # the bottom.
    f_fetched = frontend.fetched_until
    f_stall = frontend.stall_until
    f_last = frontend._last_line
    wakeup_delay = core.wakeup_delay
    ports = config.ports
    m_ports = ports.m_ports
    i_ports = ports.i_ports
    f_ports = ports.f_ports
    b_ports = ports.b_ports
    EXECUTION = StallCategory.EXECUTION
    FRONT_END = StallCategory.FRONT_END
    LOAD = StallCategory.LOAD
    OTHER = StallCategory.OTHER
    c_exec = c_fe = c_load = c_other = 0
    n_loads = n_load_misses = n_mispredicts = n_commits = 0

    replay = core.replay
    queue_cap = core.decentralized_queues
    has_queues = queue_cap is not None
    queue_fill = [0, 0, 0]

    # Branch predictor state, inlined (gshare.update is two table reads
    # and a history shift -- not worth a call per branch).
    predictor = frontend.predictor
    bp_counters = predictor._counters
    bp_mask = predictor._mask
    bp_hist_mask = (1 << predictor._history_bits) - 1
    bp_history = predictor._history
    n_branches = n_bp_wrong = 0
    d_pc = dec.pc
    mispredict_penalty = config.mispredict_penalty
    #: 2-bit counter transition tables (branchless saturating update).
    BP_INC = (1, 2, 3, 3)
    BP_DEC = (0, 0, 1, 2)

    # Flat per-seq state (current incarnation).
    value_ready = [0] * n        # visibility cycle; 0 = not issued
    ready_cycle = [0] * n        # completion (commit-eligibility) cycle
    gen = [0] * n                # incarnation counter (bumped at squash)
    unissued = bytearray(n)      # dispatched and awaiting issue
    load_wait = bytearray(n)     # issued load that missed the L1
    # Static-pending accumulator: ``spend[c]`` always equals the number
    # of c's *static* producers whose values are currently invisible.
    # Initialized to the static in-degree; every producer fire walks its
    # full consumer row and decrements (each dependence edge is visited
    # exactly once), and a squash re-increments the rows of producers
    # whose fire it rewinds.  While the rename table is clean, the
    # dynamic invisible-producer count of a *dispatching* seq is exactly
    # ``spend[seq]`` — a producer the old dispatch filter would drop
    # (visible at dispatch) has already fired and decremented — so
    # dispatch needs no producer walk at all.
    spend = [len(t) for t in sprods]
    pending = [0] * n            # dynamic count, dirty-mode seqs only
    dirty = bytearray(n)         # seq dispatched with a dirty table
    cprods = [()] * n            # dirty-mode invisible producer rows
    # reg -> last producing seq (-1: none); reproduces the scalar rename
    # table including its post-squash forgetting, which is observable.
    last_writer = [-1] * NUM_REGS
    # Registers forgotten by a squash (reset to -1 while the static
    # graph may still name a surviving producer) and not rewritten
    # since.  While this set is empty the rename table is *provably*
    # identical to the static prefix state, so dispatch can read its
    # producers straight from the precomputed static tuples; while it
    # is non-empty, dispatch falls back to the exact dynamic walk.
    forgotten = set()

    n_waiting = 0   # dispatched un-issued seqs (the scalar waiting-list size)
    wl_cur = -1     # window boundary (``window``-th oldest un-issued seq),
                    # maintained incrementally; -1 = not binding / unknown
    # Ready queue: one ascending seq list consumed from a head pointer
    # (the region behind the head is dead and reclaimed lazily).
    # Dispatch appends; event-walk wakeups insort above the head.  The
    # issue scan advances the head in O(1) while no port-starved entry
    # has been skipped, and falls back to a middle-delete only after
    # one — starvation is rare, so the queue behaves like a pop-only
    # deque on almost every cycle.
    rdy = []
    hr = 0
    # Producer-visibility events on the shared calendar: near events in
    # the 64-slot wheel as (seq, gen) pairs drained exactly at their
    # cycle, far events (memory misses) heap-ordered as
    # (cycle, seq, gen).
    cal = EventCalendar()
    wheel = cal.wheel
    heap = cal.heap

    dispatch_ptr = 0
    commit_ptr = 0
    now = 0

    while commit_ptr < n:
        if now > max_cycles:
            core.check_cycle_budget(now, max_cycles)

        # ---- wake-ups: producers whose values become visible now ------
        slot = wheel[now & 63]
        if slot:
            for p, g in slot:
                if gen[p] != g:
                    continue                   # stale incarnation
                for c in cons_lists[p]:
                    sp = spend[c] - 1
                    spend[c] = sp
                    if unissued[c]:
                        if dirty[c]:
                            if p in cprods[c]:
                                pend = pending[c] - 1
                                pending[c] = pend
                                if not pend:
                                    insort(rdy, c, hr)
                        elif not sp:
                            insort(rdy, c, hr)
            del slot[:]
        while heap and heap[0][0] <= now:
            event = heappop(heap)
            p = event[1]
            if gen[p] != event[2]:
                continue                       # stale incarnation
            for c in cons_lists[p]:
                sp = spend[c] - 1
                spend[c] = sp
                if unissued[c]:
                    if dirty[c]:
                        if p in cprods[c]:
                            pend = pending[c] - 1
                            pending[c] = pend
                            if not pend:
                                insort(rdy, c, hr)
                    elif not sp:
                        insort(rdy, c, hr)

        # ---- fetch (inlined frontend.tick, same-line runs batched) ----
        if f_fetched < n and now >= f_stall:
            limit = commit_ptr + fetch_buffer
            if limit > n:
                limit = n
            if f_fetched < limit:
                stop = f_fetched + fetch_width
                if stop > limit:
                    stop = limit
                fu = f_fetched
                last = f_last
                while fu < stop:
                    line = f_lines[fu]
                    if line != last:
                        cset = l1i_sets[line % l1i_nsets]
                        if cset is not None and line in cset:
                            # L1I hit: bump stats and LRU exactly like
                            # Cache.access; serve a still-in-flight
                            # fill with its remaining time, like the
                            # hierarchy's pending probe.
                            fill_wait = 0
                            if h_pending and now < h_horizon:
                                key = (l1i_id, line)
                                r = h_pending.get(key)
                                if r is not None:
                                    if r <= now:
                                        del h_pending[key]
                                    else:
                                        fill_wait = r - now
                            l1i_acc += 1
                            l1i_clk += 1
                            cset[line] = l1i_clk
                            l1i_hit += 1
                            if fill_wait > l1i_latency:
                                f_stall = now + fill_wait
                                frontend.icache_stall_cycles += fill_wait
                                f_last = line
                                f_fetched = fu
                                break
                        else:
                            l1i_cache.accesses = l1i_acc
                            l1i_cache.hits = l1i_hit
                            l1i_cache._clock = l1i_clk
                            result = access(f_pcs[fu] * inst_bytes, now,
                                            "ifetch")
                            l1i_acc = l1i_cache.accesses
                            l1i_hit = l1i_cache.hits
                            l1i_clk = l1i_cache._clock
                            h_horizon = hierarchy._pending_horizon
                            if result.latency > l1i_latency:
                                f_stall = result.ready
                                frontend.icache_stall_cycles += \
                                    result.latency
                                f_last = line
                                f_fetched = fu
                                break
                        last = line
                    # The rest of this line's run needs no new probe.
                    e = f_run[fu]
                    fu = e if e < stop else stop
                else:
                    f_last = last
                    f_fetched = fu

        # ---- dispatch (rename) ----------------------------------------
        dstart = dispatch_ptr
        dstop = dstart + width
        if dstop > f_fetched:
            dstop = f_fetched
        # ROB-as-range: occupancy is dispatch_ptr - commit_ptr, so the
        # capacity gate collapses to commit_ptr + rob_capacity.
        rob_free = commit_ptr + rob_capacity
        if dstop > rob_free:
            dstop = rob_free
        while dispatch_ptr < dstop:
            seq = dispatch_ptr
            if has_queues:
                qc = queue_code[seq]
                if queue_fill[qc] >= queue_cap:
                    break                      # in-order dispatch blocks
                queue_fill[qc] += 1
            if not forgotten:
                # Clean table: the static rename result stands, and the
                # static-pending accumulator already holds the invisible
                # producer count — no producer walk at all.
                pend = spend[seq]
                dirty[seq] = 0
                if merge_dests and d_pred[seq]:
                    dest_iter = d_sdests[seq]
                else:
                    dest_iter = d_dests[seq]
                for dest in dest_iter:
                    last_writer[dest] = seq
            else:
                prods = []
                for src in d_srcs[seq]:
                    p = last_writer[src]
                    if p >= 0 and p not in prods:
                        r = value_ready[p]
                        if r == 0 or r > now:
                            prods.append(p)
                if merge_dests and d_pred[seq]:
                    # Without predicate renaming, a predicated write
                    # must merge with the destination's previous value.
                    dest_iter = d_sdests[seq]
                    for dest in dest_iter:
                        p = last_writer[dest]
                        if p >= 0 and p not in prods:
                            r = value_ready[p]
                            if r == 0 or r > now:
                                prods.append(p)
                else:
                    dest_iter = d_dests[seq]
                for dest in dest_iter:
                    last_writer[dest] = seq
                    forgotten.discard(dest)
                pend = len(prods)
                cprods[seq] = prods
                pending[seq] = pend
                dirty[seq] = 1
            unissued[seq] = 1
            n_waiting += 1
            if not pend:
                # Every producer already visible: ready this cycle.
                # Dispatch runs in ascending seq order and seqs in the
                # queue are all older, so append keeps the live region
                # sorted.
                rdy.append(seq)
            dispatch_ptr += 1
        dispatched = dispatch_ptr - dstart

        # ---- issue (ascending scan of the ready queue) ----------------
        issued = 0
        squash_after = -1
        rlen = len(rdy)
        if hr < rlen:
            # Window boundary fixed at cycle start, like the scalar
            # scan's candidate slice.  It only binds when more than
            # ``window`` seqs wait, and is maintained *incrementally*:
            # a full recovery scan runs only when congestion begins (or
            # after a squash); while the boundary is held, each issue
            # at or below it advances it with a short upward walk (see
            # the issue tail).  Dispatch only adds seqs younger than
            # the boundary and commit only retires issued seqs, so
            # neither moves it.  The recovery scan counts down from the
            # dispatch pointer — the boundary is the ``n_waiting -
            # window + 1``-th *youngest* un-issued seq, congestion
            # onset overshoots the window by at most a dispatch group,
            # and the just-dispatched seqs at the top are densely
            # un-issued, so the walk is a few entries where a
            # bottom-up count would wade through the whole
            # issued-but-uncommitted prefix of a memory-stalled ROB.
            # (``_INF - 1`` so the no-candidate sentinel ``_INF``
            # always breaks.)
            if wl_cur < 0 and n_waiting > window:
                cnt = n_waiting - window + 1
                for s in range(dispatch_ptr - 1, commit_ptr - 1, -1):
                    if unissued[s]:
                        cnt -= 1
                        if not cnt:
                            wl_cur = s
                            break
            wlimit = wl_cur if wl_cur >= 0 else _INF - 1
            m_used = i_used = f_used = b_used = 0
            i = hr
            while i < rlen:
                seq = rdy[i]
                if seq > wlimit:
                    break                      # out of window
                code = port_code[seq]
                if code == 1:                  # ALU: I port, M fallback
                    if i_used < i_ports:
                        i_used += 1
                    elif m_used < m_ports:
                        m_used += 1
                    else:
                        i += 1                 # starved: skip, keep
                        continue
                elif code == 0:                # MEM
                    if m_used < m_ports:
                        m_used += 1
                    else:
                        i += 1
                        continue
                elif code == 2:                # FP / MULDIV
                    if f_used < f_ports:
                        f_used += 1
                    else:
                        i += 1
                        continue
                elif code == 3:                # BR
                    if b_used < b_ports:
                        b_used += 1
                    else:
                        i += 1
                        continue
                # code 4: slot-only, no port budget — always issues.
                if i == hr:
                    # Nothing skipped below: pure head advance, no
                    # delete — the overwhelmingly common case.
                    i = hr = hr + 1
                else:
                    # A starved entry sits below the scan point: the
                    # issued seq must come out of the middle (rare).
                    del rdy[i]
                    rlen -= 1
                n_waiting -= 1
                if seq <= wl_cur:
                    # Issued at or below the held boundary: the
                    # ``window``-th oldest un-issued is now the next
                    # un-issued seq above it (a step or two — the seqs
                    # above a bound boundary are densely un-issued), or
                    # the boundary stops binding.  Scan order still
                    # compares against the cycle-start ``wlimit``.
                    if n_waiting > window:
                        wb = wl_cur + 1
                        while not unissued[wb]:
                            wb += 1
                        wl_cur = wb
                    else:
                        wl_cur = -1
                k = kind[seq]
                latency = d_lat[seq]
                if k & 1:                      # memory-executing
                    addr = d_addr[seq]
                    line = addr // l1d_line
                    cset = l1d_sets[line % l1d_nsets]
                    if cset is not None and line in cset:
                        # L1D hit: same stats/LRU updates as
                        # Cache.access; an in-flight fill serves
                        # with its remaining time and still counts
                        # as a miss, like the hierarchy's pending
                        # probe.
                        fill_wait = 0
                        if h_pending and now < h_horizon:
                            key = (l1d_id, line)
                            r = h_pending.get(key)
                            if r is not None:
                                if r <= now:
                                    del h_pending[key]
                                else:
                                    fill_wait = r - now
                        l1d_acc += 1
                        l1d_clk += 1
                        cset[line] = l1d_clk
                        l1d_hit += 1
                        if d_load[seq]:
                            n_loads += 1
                            if fill_wait:
                                n_load_misses += 1
                                load_wait[seq] = 1
                                if fill_wait > l1d_latency:
                                    latency = fill_wait
                                else:
                                    latency = l1d_latency
                            else:
                                latency = l1d_latency
                    elif d_load[seq]:
                        r = mshr_by_line.get(line)
                        l2line = addr // l2_line
                        l2set = l2_sets[l2line % l2_nsets]
                        if r is not None and r > now and \
                                l2set is not None and l2line in l2set:
                            # MSHR-merge fast path: the line was
                            # filled and already evicted again while
                            # its fill is still in flight, and the
                            # L2 directory still holds it.  The
                            # merge serves the miss at the fill's
                            # remaining time; replicate the full
                            # hierarchy walk's observable effects —
                            # L1D miss stats, L2 hit stats/LRU, the
                            # expired-pending probe, the merge
                            # counter, and the L1D refill with its
                            # pending mark.
                            l1d_acc += 1
                            l1d_clk += 1
                            l1d_cache.misses += 1
                            l2_cache.accesses += 1
                            l2clk = l2_cache._clock + 1
                            l2_cache._clock = l2clk
                            l2set[l2line] = l2clk
                            l2_cache.hits += 1
                            pkey = (l2_id, l2line)
                            pr = h_pending.get(pkey)
                            if pr is not None and pr <= now:
                                del h_pending[pkey]
                            mshr.merges += 1
                            latency = r - now
                            # Cache.fill on the absent L1D line.
                            if cset is None:
                                cset = l1d_sets[line % l1d_nsets] = {}
                            l1d_clk += 1
                            if len(cset) >= l1d_assoc:
                                victim = min(cset, key=cset.get)
                                del cset[victim]
                            cset[line] = l1d_clk
                            h_pending[(l1d_id, line)] = r
                            if r > h_horizon:
                                h_horizon = r
                            n_loads += 1
                            n_load_misses += 1
                            load_wait[seq] = 1
                        else:
                            l1d_cache.accesses = l1d_acc
                            l1d_cache.hits = l1d_hit
                            l1d_cache._clock = l1d_clk
                            result = access(addr, now)
                            l1d_acc = l1d_cache.accesses
                            l1d_hit = l1d_cache.hits
                            l1d_clk = l1d_cache._clock
                            h_horizon = hierarchy._pending_horizon
                            latency = result.latency
                            n_loads += 1
                            if result.l1_miss:
                                n_load_misses += 1
                                load_wait[seq] = 1
                    else:
                        l1d_cache.accesses = l1d_acc
                        l1d_cache.hits = l1d_hit
                        l1d_cache._clock = l1d_clk
                        access(addr, now, kind="store")
                        l1d_acc = l1d_cache.accesses
                        l1d_hit = l1d_cache.hits
                        l1d_clk = l1d_cache._clock
                        h_horizon = hierarchy._pending_horizon
                unissued[seq] = 0
                done = now + latency
                ready_cycle[seq] = done
                visible = done + wakeup_delay
                value_ready[seq] = visible
                # One visibility event per producer, the realistic
                # model's wakeup delay already folded in; gated on
                # having consumers at all.
                if k & 4:
                    if visible - now < WHEEL:
                        wheel[visible & 63].append(ev_pair[seq])
                    else:
                        heappush(heap, (visible, seq, gen[seq]))
                if has_queues:
                    queue_fill[queue_code[seq]] -= 1
                issued += 1
                if k & 2:                      # branch
                    # Inline gshare.update + FrontEnd.redirect.
                    idx = (d_pc[seq] ^ bp_history) & bp_mask
                    counter = bp_counters[idx]
                    taken = d_taken[seq]
                    n_branches += 1
                    if taken:
                        bp_counters[idx] = BP_INC[counter]
                        bp_history = ((bp_history << 1) | 1) \
                            & bp_hist_mask
                        wrong = counter < 2
                    else:
                        bp_counters[idx] = BP_DEC[counter]
                        bp_history = (bp_history << 1) & bp_hist_mask
                        wrong = counter >= 2
                    if wrong:
                        n_bp_wrong += 1
                        frontend.redirects += 1
                        if f_fetched > seq + 1:
                            f_fetched = seq + 1
                        redirect_stall = now + mispredict_penalty
                        if redirect_stall > f_stall:
                            f_stall = redirect_stall
                        f_last = -1
                        n_mispredicts += 1
                        squash_after = seq
                        break
                if issued >= width:
                    break
            # Reclaim the consumed prefix: clear a fully-drained queue,
            # compact a long dead region.
            if hr:
                if hr == rlen:
                    del rdy[:]
                    hr = 0
                elif hr > 32:
                    del rdy[:hr]
                    hr = 0

        # ---- squash wrong-path work younger than the branch ------------
        if squash_after >= 0:
            for s in range(squash_after + 1, dispatch_ptr):
                g2 = gen[s] + 1                # invalidate calendar events
                gen[s] = g2
                ev_pair[s] = (s, g2)
                r = value_ready[s]
                if r and r <= now:
                    # The squashed producer's visibility event already
                    # fired (events drain at cycle start, issue is
                    # later, and the minimum latency is 1, so a fired
                    # event always has ``visible <= now``): rewind its
                    # decrements so the accumulator again counts it
                    # invisible.  Every consumer of a squashed seq is
                    # younger, hence squashed too.
                    for c in cons_lists[s]:
                        spend[c] += 1
                value_ready[s] = 0
                load_wait[s] = 0
                if unissued[s]:
                    unissued[s] = 0
                    n_waiting -= 1
                    if has_queues:
                        queue_fill[queue_code[s]] -= 1
                # Forget squashed rename-table entries.  A register maps
                # beyond the squash point iff its most recent writer is
                # one of the squashed seqs, so visiting each squashed
                # seq's dispatch-time dests (the same dest set rename
                # used) covers exactly the slots the scalar loop's full
                # table sweep would reset.
                if merge_dests and d_pred[s]:
                    dests = d_sdests[s]
                else:
                    dests = d_dests[s]
                for dest in dests:
                    if last_writer[dest] > squash_after:
                        last_writer[dest] = -1
                        forgotten.add(dest)
            # Truncate the queue's live region past the squash point
            # (the dead region below the head needs no maintenance).
            del rdy[bisect_right(rdy, squash_after, hr):]
            dispatch_ptr = squash_after + 1
            wl_cur = -1        # boundary may be gone; recover on demand

        # ---- commit ----------------------------------------------------
        committed = 0
        if replay is None:
            while commit_ptr < dispatch_ptr and committed < width:
                s = commit_ptr
                if unissued[s] or ready_cycle[s] > now:
                    break
                commit_ptr = s + 1
                committed += 1
        else:
            while commit_ptr < dispatch_ptr and committed < width:
                s = commit_ptr
                if unissued[s] or ready_cycle[s] > now:
                    break
                commit_ptr = s + 1
                replay.commit(entries[s])
                committed += 1
        n_commits += committed

        # ---- attribution -----------------------------------------------
        if issued:
            c_exec += 1
        elif commit_ptr == dispatch_ptr:
            c_fe += 1
        else:
            h = commit_ptr
            if not unissued[h]:
                cause = LOAD if load_wait[h] else OTHER
            else:
                cause = OTHER
                # Dirty-mode seqs carry their dynamic producer row;
                # clean-mode seqs walk the static row — a static
                # producer the dynamic filter would have dropped was
                # visible at dispatch and stays visible while ``h``
                # lives, so the first-invisible hit is the same.
                for p in (cprods[h] if dirty[h] else sprods[h]):
                    r = value_ready[p]
                    if r == 0 or r > now:
                        cause = LOAD if d_load[p] else OTHER
                        break
            if cause is LOAD:
                c_load += 1
            else:
                c_other += 1
        now += 1

        # ---- idle fast-forward ------------------------------------------
        # Whole-machine quiescence: nothing dispatched, issued or
        # committed this cycle.  Quiescence is *self-sustaining* until
        # the earliest in-flight completion/wakeup horizon: no issue
        # means no squash; no commit means the ROB (and any full issue
        # queue) stays blocked; the ready buckets, window boundary and
        # port demands are frozen, so a zero-issue merge repeats
        # verbatim.  The only per-cycle actor left is fetch, so the
        # skip is gated on fetch being a no-op for the whole span —
        # the base-class clamp keyed on the (frozen) commit pointer.
        # This subsumes the scalar loop's stricter dispatch-pointer
        # veto: a capacity-blocked dispatch cannot unblock before a
        # commit, and the wake horizon bounds the first commit.  (The
        # heap cannot replace the horizon scan: an event landing
        # exactly on ``now`` has already been popped, yet must veto
        # the skip.)
        if not issued and not committed and not dispatched \
                and commit_ptr < dispatch_ptr:
            limit = commit_ptr + fetch_buffer
            if limit > n:
                limit = n
            if f_fetched >= limit:
                cap = _INF                 # fetch done or buffer full
            else:
                cap = f_stall               # I-stalled: skip to the fill
        else:
            cap = 0
        if cap > now:
            wake = _INF
            for s in range(commit_ptr, dispatch_ptr):
                if unissued[s]:
                    continue
                r = ready_cycle[s]
                if r < now:
                    r += wakeup_delay
                    if r < now:
                        continue
                if r < wake:
                    wake = r
            skip_to = wake if wake < cap else cap
            if now < skip_to < _INF:
                # Same attribution rule, evaluated at the post-increment
                # cycle like the scalar loop.
                h = commit_ptr
                if not unissued[h]:
                    cause = LOAD if load_wait[h] else OTHER
                else:
                    cause = OTHER
                    for p in cprods[h]:
                        r = value_ready[p]
                        if r == 0 or r > now:
                            cause = LOAD if d_load[p] else OTHER
                            break
                if cause is LOAD:
                    c_load += skip_to - now
                else:
                    c_other += skip_to - now
                now = skip_to

    frontend.fetched_until = f_fetched
    frontend.stall_until = f_stall
    frontend._last_line = f_last
    l1i_cache.accesses = l1i_acc
    l1i_cache.hits = l1i_hit
    l1i_cache._clock = l1i_clk
    l1d_cache.accesses = l1d_acc
    l1d_cache.hits = l1d_hit
    l1d_cache._clock = l1d_clk
    hierarchy._pending_horizon = h_horizon
    predictor._history = bp_history
    predictor.predictions += n_branches
    predictor.mispredictions += n_bp_wrong
    stats.instructions += n_commits
    if n_loads:
        counters["loads_issued"] += n_loads
    if n_load_misses:
        counters["l1d_load_misses"] += n_load_misses
    if n_mispredicts:
        counters["mispredicts"] += n_mispredicts
    breakdown = stats.cycle_breakdown
    breakdown[EXECUTION] += c_exec
    breakdown[FRONT_END] += c_fe
    breakdown[LOAD] += c_load
    breakdown[OTHER] += c_other
    stats.cycles += c_exec + c_fe + c_load + c_other
    return core.finalize()
