"""Event-driven columnar kernel for the out-of-order cores.

Drop-in replacement for the scalar cycle loop in
:mod:`repro.ooo.core` (kept there as the ``--slow``/traced reference):
same machine, same statistics, bit-identical cycle counts and stall
attribution, but the per-cycle *work* is restructured around
preallocated flat columns and a wake-up event heap instead of polling
the scheduling window:

* **Dynamic producers, static routing.**  Rename walks the same
  last-writer table as the scalar loop (including the squash reset that
  *forgets* a surviving producer once a wrong-path writer clobbered its
  slot — observable seed behaviour the static dependence graph cannot
  express), and records each seq's still-invisible producers as a small
  tuple (``cprods``) whose length seeds the ``pending`` count.  The
  static consumer CSR of :mod:`repro.isa.columns` — a superset of the
  dynamic graph — is used purely to *route* wake-ups.
* **Wakeup is push, not poll.**  Issuing seq ``s`` pushes one event at
  its visibility cycle ``now + latency + wakeup_delay``; when the event
  fires, the static consumer list of ``s`` is walked (bounded by the
  dispatch pointer — consumer lists are ascending) and each dispatched,
  un-issued consumer that actually counted ``s`` at rename time
  (``s in cprods[c]``) has its ``pending`` count dropped.  At zero the
  consumer enters the sorted ``ready`` list.  The issue scan therefore
  visits only instructions whose operands are all visible, instead of
  the full 128-entry window every cycle.
* **Incarnations.**  A squash re-dispatches the same seqs (trace
  replay), so per-seq state is generation-stamped: ``gen[s]`` bumps at
  squash and events carry the gen at issue time; a stale event is
  discarded at pop.  Within one incarnation a producer's visibility is
  monotone (anything that could un-issue a producer also squashes every
  consumer that registered it), which is what makes the single
  pending-decrement per (event, consumer) pair exact.

Equivalence invariants (the bit-identity contract, see
``docs/architecture.md`` §13):

* ``pending[c] == 0`` at cycle ``t`` iff every rename-time producer of
  ``c`` satisfies ``value_ready != 0 and value_ready <= t`` — exactly
  the scalar issue-scan predicate.  Within one consumer incarnation each
  counted producer issues at most once, so each ``(producer, consumer)``
  pair decrements exactly once — no per-slot clearing is needed.
* Events fire at the start of their cycle, before dispatch and issue —
  the same ordering as the scalar loop's read of ``value_ready``.
* No event can land inside a fast-forwarded span: every in-heap event
  time is bounded below by the quiescence wake horizon that capped the
  skip.
* The window boundary (the ``window``-th oldest un-issued seq) and the
  port counters are sampled once per cycle before the issue scan,
  matching the scalar scan's fixed candidate slice.

The differential suites (``tests/property/test_columnar.py``,
``tests/property/test_fast_path.py``) and the golden matrix pin all of
this against the scalar loop.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from heapq import heappop, heappush

from ..isa.columns import columns_of
from ..isa.registers import NUM_REGS
from ..pipeline.stats import SimStats, StallCategory

#: Sentinel wake-up target meaning "no in-flight completion at all".
_INF = 1 << 62


def run_columnar(core, max_cycles: int) -> SimStats:
    """Run an :class:`~repro.ooo.core.OutOfOrderCore` to completion.

    ``core`` must be freshly constructed, un-traced and not in ``--slow``
    mode (the caller routes those to the scalar reference loop).
    """
    trace = core.trace
    entries = trace.entries
    dec = trace.decoded
    n = dec.n
    cols = columns_of(dec)
    merge_dests = not core.ideal
    graph = cols.dependences(merge_dests)
    cons_off = graph.cons_off
    cons_lists = graph.cons_tuples()
    sprods = graph.prod_tuples()
    port_code = cols.port_code
    queue_code = cols.queue_code

    d_srcs = dec.srcs
    d_dests = dec.dests
    d_sdests = dec.static_dests
    d_pred = dec.is_predicated
    d_lat = dec.latency
    d_mem = dec.mem_exec
    d_load = dec.is_load
    d_addr = dec.addr
    d_branch = dec.is_branch
    d_taken = dec.taken

    config = core.config
    frontend = core.frontend
    window = config.ooo_window
    rob_capacity = config.ooo_rob
    width = config.ports.width
    fetch_buffer = core.buffer_size
    stats = core.stats
    counters = stats.counters
    hierarchy = core.hierarchy
    access = hierarchy.access
    # Inline L1 fast paths: the kernel probes the L1 dicts directly and
    # falls back to ``hierarchy.access`` whenever the line is absent or
    # any fill is still pending, mirroring the hierarchy's own hit fast
    # path (same stats, same LRU clocks, same latencies).
    h_pending = hierarchy._pending
    l1i_cache = hierarchy.l1i
    l1i_id = id(l1i_cache)
    l1i_sets = l1i_cache._sets
    l1i_nsets = l1i_cache._num_sets
    l1i_latency = l1i_cache.config.latency
    l1d_cache = hierarchy.l1d
    l1d_id = id(l1d_cache)
    l1d_sets = l1d_cache._sets
    l1d_line = l1d_cache._line_size
    l1d_nsets = l1d_cache._num_sets
    l1d_latency = l1d_cache.config.latency
    fetch_width = frontend._fetch_width
    inst_bytes = frontend._inst_bytes
    f_pcs = frontend._pcs
    f_lines = frontend._lines
    # Front-end scalars, localized for the whole run.  The redirect is
    # inlined below and ``frontend.tick`` is never called, so nothing
    # outside this loop reads or writes them until the write-back at
    # the bottom.
    f_fetched = frontend.fetched_until
    f_stall = frontend.stall_until
    f_last = frontend._last_line
    wakeup_delay = core.wakeup_delay
    ports = config.ports
    m_ports = ports.m_ports
    i_ports = ports.i_ports
    f_ports = ports.f_ports
    b_ports = ports.b_ports
    EXECUTION = StallCategory.EXECUTION
    FRONT_END = StallCategory.FRONT_END
    LOAD = StallCategory.LOAD
    OTHER = StallCategory.OTHER
    c_exec = c_fe = c_load = c_other = 0
    n_loads = n_load_misses = n_mispredicts = n_commits = 0

    replay = core.replay
    queue_cap = core.decentralized_queues
    has_queues = queue_cap is not None
    queue_fill = [0, 0, 0]

    # Branch predictor state, inlined (gshare.update is two table reads
    # and a history shift -- not worth a call per branch).
    predictor = frontend.predictor
    bp_counters = predictor._counters
    bp_mask = predictor._mask
    bp_hist_mask = (1 << predictor._history_bits) - 1
    bp_history = predictor._history
    n_branches = n_bp_wrong = 0
    d_pc = dec.pc
    mispredict_penalty = config.mispredict_penalty
    #: 2-bit counter transition tables (branchless saturating update).
    BP_INC = (1, 2, 3, 3)
    BP_DEC = (0, 0, 1, 2)

    # Flat per-seq state (current incarnation).
    value_ready = [0] * n        # visibility cycle; 0 = not issued
    ready_cycle = [0] * n        # completion (commit-eligibility) cycle
    pending = [0] * n            # not-yet-visible producer count
    gen = [0] * n                # incarnation counter (bumped at squash)
    unissued = bytearray(n)      # dispatched and awaiting issue
    load_wait = bytearray(n)     # issued load that missed the L1
    cprods = [()] * n            # rename-time invisible producer tuples
    # reg -> last producing seq (-1: none); reproduces the scalar rename
    # table including its post-squash forgetting, which is observable.
    last_writer = [-1] * NUM_REGS
    # Registers forgotten by a squash (reset to -1 while the static
    # graph may still name a surviving producer) and not rewritten
    # since.  While this set is empty the rename table is *provably*
    # identical to the static prefix state, so dispatch can read its
    # producers straight from the precomputed static tuples; while it
    # is non-empty, dispatch falls back to the exact dynamic walk.
    forgotten = set()

    rob = []        # in-flight seqs, ascending; live slice is rob[rob_head:]
    rob_head = 0
    rob_len = 0
    waiting = []    # dispatched un-issued seqs, ascending, exact
    ready = []      # waiting seqs with every producer visible, ascending
    # Wake-up events: near events (the common latencies, 1..WHEEL-1
    # cycles out) go to a timing wheel slot and are drained exactly at
    # their cycle; far events (memory misses) go to the heap.  Wheel
    # entries are (producer, gen) -- a stale pair left in a slot that a
    # fast-forward span jumped over is discarded by its gen when the
    # slot next comes around.
    WHEEL = 64
    wheel = [[] for _ in range(WHEEL)]
    heap = []       # (visibility_cycle, producer_seq, gen) far events

    dispatch_ptr = 0
    commit_ptr = 0
    now = 0

    while commit_ptr < n:
        if now > max_cycles:
            core.check_cycle_budget(now, max_cycles)

        # ---- wake-ups: apply events due this cycle --------------------
        slot = wheel[now & 63]
        if slot:
            for p, g in slot:
                if gen[p] != g:
                    continue                   # stale incarnation
                for c in cons_lists[p]:
                    if c >= dispatch_ptr:
                        break                  # not dispatched yet
                    if unissued[c] and p in cprods[c]:
                        pend = pending[c] - 1
                        pending[c] = pend
                        if not pend:
                            insort(ready, c)
            del slot[:]
        while heap and heap[0][0] <= now:
            event = heappop(heap)
            p = event[1]
            if gen[p] != event[2]:
                continue                       # stale incarnation
            for c in cons_lists[p]:
                if c >= dispatch_ptr:
                    break                      # not dispatched yet
                if unissued[c] and p in cprods[c]:
                    pend = pending[c] - 1
                    pending[c] = pend
                    if not pend:
                        insort(ready, c)

        # ---- fetch (inlined frontend.tick) ----------------------------
        if f_fetched < n and now >= f_stall:
            limit = commit_ptr + fetch_buffer
            if limit > n:
                limit = n
            if f_fetched < limit:
                stop = f_fetched + fetch_width
                if stop > limit:
                    stop = limit
                fu = f_fetched
                last = f_last
                while fu < stop:
                    line = f_lines[fu]
                    if line != last:
                        cset = l1i_sets[line % l1i_nsets]
                        if cset is not None and line in cset:
                            # L1I hit: bump stats and LRU exactly like
                            # Cache.access; serve a still-in-flight
                            # fill with its remaining time, like the
                            # hierarchy's pending probe.
                            fill_wait = 0
                            if h_pending and now < \
                                    hierarchy._pending_horizon:
                                key = (l1i_id, line)
                                r = h_pending.get(key)
                                if r is not None:
                                    if r <= now:
                                        del h_pending[key]
                                    else:
                                        fill_wait = r - now
                            l1i_cache.accesses += 1
                            clk = l1i_cache._clock + 1
                            l1i_cache._clock = clk
                            cset[line] = clk
                            l1i_cache.hits += 1
                            if fill_wait > l1i_latency:
                                last = line
                                f_stall = now + fill_wait
                                frontend.icache_stall_cycles += fill_wait
                                break
                        else:
                            result = access(f_pcs[fu] * inst_bytes, now,
                                            "ifetch")
                            if result.latency > l1i_latency:
                                last = line
                                f_stall = result.ready
                                frontend.icache_stall_cycles += \
                                    result.latency
                                break
                        last = line
                    fu += 1
                f_last = last
                f_fetched = fu

        # ---- dispatch (rename) ----------------------------------------
        dstart = dispatch_ptr
        dstop = dstart + width
        if dstop > f_fetched:
            dstop = f_fetched
        rob_free = dstart + rob_capacity - rob_len + rob_head
        if dstop > rob_free:
            dstop = rob_free
        while dispatch_ptr < dstop:
            seq = dispatch_ptr
            if has_queues:
                qc = queue_code[seq]
                if queue_fill[qc] >= queue_cap:
                    break                      # in-order dispatch blocks
                queue_fill[qc] += 1
            if not forgotten:
                # Clean table: the static producer tuple IS the rename
                # result; only the visibility filter is dynamic.
                prods = sprods[seq]
                if prods:
                    keep = None
                    for p in prods:
                        r = value_ready[p]
                        if r == 0 or r > now:
                            if keep is None:
                                keep = [p]
                            else:
                                keep.append(p)
                    prods = () if keep is None else keep
                if merge_dests and d_pred[seq]:
                    dest_iter = d_sdests[seq]
                else:
                    dest_iter = d_dests[seq]
                for dest in dest_iter:
                    last_writer[dest] = seq
            else:
                prods = []
                for src in d_srcs[seq]:
                    p = last_writer[src]
                    if p >= 0 and p not in prods:
                        r = value_ready[p]
                        if r == 0 or r > now:
                            prods.append(p)
                if merge_dests and d_pred[seq]:
                    # Without predicate renaming, a predicated write
                    # must merge with the destination's previous value.
                    dest_iter = d_sdests[seq]
                    for dest in dest_iter:
                        p = last_writer[dest]
                        if p >= 0 and p not in prods:
                            r = value_ready[p]
                            if r == 0 or r > now:
                                prods.append(p)
                else:
                    dest_iter = d_dests[seq]
                for dest in dest_iter:
                    last_writer[dest] = seq
                    forgotten.discard(dest)
            pend = len(prods)
            cprods[seq] = prods
            pending[seq] = pend
            unissued[seq] = 1
            rob.append(seq)
            rob_len += 1
            waiting.append(seq)
            if not pend:
                # Dispatch runs in ascending seq order and every earlier
                # insertion this cycle is older, so append keeps ``ready``
                # sorted.
                ready.append(seq)
            dispatch_ptr += 1
        dispatched = dispatch_ptr - dstart

        # ---- issue (dataflow select over the ready list) ---------------
        issued = 0
        squash_after = -1
        if ready:
            # Window boundary and port budget are fixed at cycle start,
            # like the scalar scan's candidate slice.
            wlimit = waiting[window - 1] if len(waiting) > window else _INF
            m_used = i_used = f_used = b_used = 0
            i = 0
            rlen = len(ready)
            while i < rlen:
                seq = ready[i]
                if seq > wlimit:
                    break                      # outside the window
                code = port_code[seq]
                if code == 1:                  # ALU: I port, M fallback
                    if i_used < i_ports:
                        i_used += 1
                    elif m_used < m_ports:
                        m_used += 1
                    else:
                        i += 1
                        continue
                elif code == 0:                # MEM
                    if m_used >= m_ports:
                        i += 1
                        continue
                    m_used += 1
                elif code == 3:                # BR
                    if b_used >= b_ports:
                        i += 1
                        continue
                    b_used += 1
                elif code == 2:                # FP / MULDIV
                    if f_used >= f_ports:
                        i += 1
                        continue
                    f_used += 1
                del ready[i]
                rlen -= 1
                if waiting[0] == seq:
                    del waiting[0]
                else:
                    del waiting[bisect_left(waiting, seq)]
                latency = d_lat[seq]
                miss = False
                if d_mem[seq]:
                    addr = d_addr[seq]
                    line = addr // l1d_line
                    cset = l1d_sets[line % l1d_nsets]
                    if cset is not None and line in cset:
                        # L1D hit: same stats/LRU updates as
                        # Cache.access; an in-flight fill serves with
                        # its remaining time and still counts as a
                        # miss, like the hierarchy's pending probe.
                        fill_wait = 0
                        if h_pending and now < \
                                hierarchy._pending_horizon:
                            key = (l1d_id, line)
                            r = h_pending.get(key)
                            if r is not None:
                                if r <= now:
                                    del h_pending[key]
                                else:
                                    fill_wait = r - now
                        l1d_cache.accesses += 1
                        clk = l1d_cache._clock + 1
                        l1d_cache._clock = clk
                        cset[line] = clk
                        l1d_cache.hits += 1
                        if d_load[seq]:
                            n_loads += 1
                            if fill_wait:
                                miss = True
                                n_load_misses += 1
                                load_wait[seq] = 1
                                if fill_wait > l1d_latency:
                                    latency = fill_wait
                                else:
                                    latency = l1d_latency
                            else:
                                latency = l1d_latency
                    elif d_load[seq]:
                        result = access(addr, now)
                        latency = result.latency
                        miss = result.l1_miss
                        n_loads += 1
                        if miss:
                            n_load_misses += 1
                            load_wait[seq] = 1
                    else:
                        access(addr, now, kind="store")
                unissued[seq] = 0
                rdy = now + latency
                ready_cycle[seq] = rdy
                visible = rdy + wakeup_delay
                value_ready[seq] = visible
                if cons_lists[seq]:
                    # (A producer with no static consumers could never
                    # decrement anything; don't schedule its wake-up.)
                    if visible - now < WHEEL:
                        wheel[visible & 63].append((seq, gen[seq]))
                    else:
                        heappush(heap, (visible, seq, gen[seq]))
                if has_queues:
                    queue_fill[queue_code[seq]] -= 1
                issued += 1
                if d_branch[seq]:
                    # Inline gshare.update + FrontEnd.redirect.
                    idx = (d_pc[seq] ^ bp_history) & bp_mask
                    counter = bp_counters[idx]
                    taken = d_taken[seq]
                    n_branches += 1
                    if taken:
                        bp_counters[idx] = BP_INC[counter]
                        bp_history = ((bp_history << 1) | 1) \
                            & bp_hist_mask
                        wrong = counter < 2
                    else:
                        bp_counters[idx] = BP_DEC[counter]
                        bp_history = (bp_history << 1) & bp_hist_mask
                        wrong = counter >= 2
                    if wrong:
                        n_bp_wrong += 1
                        frontend.redirects += 1
                        if f_fetched > seq + 1:
                            f_fetched = seq + 1
                        redirect_stall = now + mispredict_penalty
                        if redirect_stall > f_stall:
                            f_stall = redirect_stall
                        f_last = -1
                        n_mispredicts += 1
                        squash_after = seq
                        break
                if issued >= width:
                    break

        # ---- squash wrong-path work younger than the branch ------------
        if squash_after >= 0:
            pos = bisect_right(rob, squash_after, rob_head)
            for idx in range(pos, rob_len):
                s = rob[idx]
                gen[s] += 1                    # invalidate in-heap events
                value_ready[s] = 0
                load_wait[s] = 0
                if unissued[s]:
                    unissued[s] = 0
                    if has_queues:
                        queue_fill[queue_code[s]] -= 1
                # Forget squashed rename-table entries.  A register maps
                # beyond the squash point iff its most recent writer is
                # one of the squashed seqs, so visiting each squashed
                # seq's dispatch-time dests (the same dest set rename
                # used) covers exactly the slots the scalar loop's full
                # table sweep would reset.
                if merge_dests and d_pred[s]:
                    dests = d_sdests[s]
                else:
                    dests = d_dests[s]
                for dest in dests:
                    if last_writer[dest] > squash_after:
                        last_writer[dest] = -1
                        forgotten.add(dest)
            del rob[pos:]
            rob_len = pos
            del waiting[bisect_right(waiting, squash_after):]
            del ready[bisect_right(ready, squash_after):]
            dispatch_ptr = squash_after + 1

        # ---- commit ----------------------------------------------------
        committed = 0
        while rob_head < rob_len and committed < width:
            s = rob[rob_head]
            if unissued[s] or ready_cycle[s] > now:
                break
            rob_head += 1
            commit_ptr = s + 1
            if replay is not None:
                replay.commit(entries[s])
            committed += 1
        n_commits += committed
        if rob_head > 128:
            del rob[:rob_head]
            rob_len -= rob_head
            rob_head = 0

        # ---- attribution -----------------------------------------------
        if issued:
            c_exec += 1
        elif rob_head == rob_len:
            c_fe += 1
        else:
            h = rob[rob_head]
            if not unissued[h]:
                cause = LOAD if load_wait[h] else OTHER
            else:
                cause = OTHER
                for p in cprods[h]:
                    r = value_ready[p]
                    if r == 0 or r > now:
                        cause = LOAD if d_load[p] else OTHER
                        break
            if cause is LOAD:
                c_load += 1
            else:
                c_other += 1
        now += 1

        # ---- idle fast-forward ------------------------------------------
        # Whole-machine quiescence: nothing dispatched, issued or
        # committed this cycle.  Quiescence is *self-sustaining* until
        # the earliest in-flight completion/wakeup horizon: no issue
        # means no squash; no commit means the ROB (and any full issue
        # queue) stays blocked; the waiting list, window boundary and
        # port demands are frozen, so a zero-issue scan repeats
        # verbatim.  The only per-cycle actor left is fetch, so the
        # skip is gated on fetch being a no-op for the whole span —
        # the base-class clamp keyed on the (frozen) commit pointer.
        # This subsumes the scalar loop's stricter dispatch-pointer
        # veto: a capacity-blocked dispatch cannot unblock before a
        # commit, and the wake horizon bounds the first commit.  (The
        # heap cannot replace the horizon scan: an event landing
        # exactly on ``now`` has already been popped, yet must veto
        # the skip.)
        if not issued and not committed and not dispatched \
                and rob_head < rob_len:
            limit = commit_ptr + fetch_buffer
            if limit > n:
                limit = n
            if f_fetched >= limit:
                cap = _INF                 # fetch done or buffer full
            else:
                cap = f_stall               # I-stalled: skip to the fill
        else:
            cap = 0
        if cap > now:
            wake = _INF
            for idx in range(rob_head, rob_len):
                s = rob[idx]
                if unissued[s]:
                    continue
                r = ready_cycle[s]
                if r < now:
                    r += wakeup_delay
                    if r < now:
                        continue
                if r < wake:
                    wake = r
            skip_to = wake if wake < cap else cap
            if now < skip_to < _INF:
                # Same attribution rule, evaluated at the post-increment
                # cycle like the scalar loop.
                h = rob[rob_head]
                if not unissued[h]:
                    cause = LOAD if load_wait[h] else OTHER
                else:
                    cause = OTHER
                    for p in cprods[h]:
                        r = value_ready[p]
                        if r == 0 or r > now:
                            cause = LOAD if d_load[p] else OTHER
                            break
                if cause is LOAD:
                    c_load += skip_to - now
                else:
                    c_other += skip_to - now
                now = skip_to

    frontend.fetched_until = f_fetched
    frontend.stall_until = f_stall
    frontend._last_line = f_last
    predictor._history = bp_history
    predictor.predictions += n_branches
    predictor.mispredictions += n_bp_wrong
    stats.instructions += n_commits
    if n_loads:
        counters["loads_issued"] += n_loads
    if n_load_misses:
        counters["l1d_load_misses"] += n_load_misses
    if n_mispredicts:
        counters["mispredicts"] += n_mispredicts
    breakdown = stats.cycle_breakdown
    breakdown[EXECUTION] += c_exec
    breakdown[FRONT_END] += c_fe
    breakdown[LOAD] += c_load
    breakdown[OTHER] += c_other
    stats.cycles += c_exec + c_fe + c_load + c_other
    return core.finalize()
