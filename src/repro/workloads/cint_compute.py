"""Compute-flavoured CINT2000 kernels: bzip2, gzip, crafty.

``bzip2`` streams a block while doing multiply-heavy radix work — the
benchmark where Fig. 6 shows cache-miss savings partially offset by
exposed non-unit-latency ("other") stalls, and one of the three where
advance restart matters.  ``gzip`` probes LZ77 hash chains with
data-dependent match loops.  ``crafty`` is the cache-resident, high-ILP
bitboard benchmark where in-order already does well.
"""

from __future__ import annotations

from ..isa import P, R, WORD_SIZE
from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from .common import (Allocator, counted_loop, locality_address,
                     register, rng_for, scaled)


@register("bzip2", "CINT2000",
          "block-sort compression: sorted-order ptr[] walk (critical SCC), "
          "chained block-data loads and multiply-driven radix ranking")
def build_bzip2(scale: float = 1.0) -> Program:
    b = ProgramBuilder("bzip2")
    rng = rng_for("bzip2")
    alloc = Allocator()

    ring_size = scaled(1_400, scale, 64)        # sorted-order links
    data_words = scaled(400_000, scale, 1024)   # ~1.6 MB block data
    data_hot_words = scaled(10_000, scale, 256)
    iters = scaled(800, scale, 16)

    # bzip2's inverse-BWT walks the block in sorted order through the
    # ptr[] indirection: ring records [link_to_next_sorted, data_ptr]
    # stay cache resident; the data they point at is a mix of hot and
    # cold block regions.
    rec_words = 2
    block = alloc.alloc(ring_size * rec_words)
    data = alloc.alloc(data_words)
    freq = alloc.alloc(256)

    def rec_addr(i):
        return block + i * rec_words * WORD_SIZE

    data_refs = []
    order = list(range(1, ring_size))
    rng.shuffle(order)
    ring = [0] + order
    for pos, i in enumerate(ring):
        succ = ring[(pos + 1) % ring_size]
        ref = locality_address(rng, data, data_hot_words, data_words, 0.06)
        data_refs.append(ref)
        b.data_word(rec_addr(i), rec_addr(succ))              # sorted link
        b.data_word(rec_addr(i) + WORD_SIZE, ref)
    for ref in data_refs:
        b.data_word(ref, rng.randrange(1 << 30))

    ptr, acc, count, freq_base = R(1), R(2), R(3), R(4)
    tmp, warm_ptr, warm_end = R(5), R(6), R(7)
    data_ptr = [R(8 + k) for k in range(3)]
    datav = [R(11 + k) for k in range(3)]
    byte0 = [R(14 + k) for k in range(3)]
    byte1 = [R(17 + k) for k in range(3)]
    f_addr = [R(20 + k) for k in range(3)]
    f_val = [R(23 + k) for k in range(3)]
    rank = [R(26 + k) for k in range(3)]

    # Warming scan over the ring (bzip2 builds these tables first).
    b.movi(warm_ptr, block)
    b.movi(warm_end, block + ring_size * rec_words * WORD_SIZE)
    b.label("warm")
    b.ld(tmp, warm_ptr, 0)
    b.addi(warm_ptr, warm_ptr, 64)
    b.cmplt(P(5), warm_ptr, warm_end)
    b.br("warm", pred=P(5))

    b.movi(ptr, rec_addr(0))
    b.movi(freq_base, freq)
    b.movi(count, iters)
    b.movi(acc, 0)

    b.label("scan")
    # Three-way unrolled sorted-order traversal (OpenIMPACT unrolls and
    # schedules these bodies aggressively): the ptr[] chase stays serial
    # through the unrolled copies — it is the critical load SCC — while
    # the per-link work from different copies packs into wide groups.
    for k in range(3):
        dp, dv, b0, b1 = data_ptr[k], datav[k], byte0[k], byte1[k]
        fa, fv, rk = f_addr[k], f_val[k], rank[k]
        b.ld(ptr, ptr, 0)               # ptr = ptr->sorted_next (warm)
        b.ld(dp, ptr, WORD_SIZE)        # chained pointer (warm)
        b.ld(dv, dp, 0)                 # chained block-data load
        b.andi(b0, dv, 0xFF)
        b.shri(b1, dv, 8)
        b.andi(b1, b1, 0xFF)
        # Frequency update: load-modify-store on a resident table.
        b.shli(fa, b0, 2)
        b.add(fa, fa, freq_base)
        b.ld(fv, fa, 0)
        b.addi(fv, fv, 1)
        b.st(fv, fa, 0)
        # Radix ranking: multiplies dependent on the walked data expose
        # "other" stalls once the cache misses are tolerated.
        b.mul(rk, b0, b1)
        b.mul(rk, rk, rk)
        b.add(acc, acc, rk)
    counted_loop(b, "scan", count, P(3))
    b.st(acc, freq_base, 1024)
    b.halt()

    b.metadata.update(ring_size=ring_size, iters=iters,
                      data_words=data_words)
    return b.build()


@register("gzip", "CINT2000",
          "LZ77 deflate: rolling-hash head-table probes and "
          "data-dependent match-length loops")
def build_gzip(scale: float = 1.0) -> Program:
    b = ProgramBuilder("gzip")
    rng = rng_for("gzip")
    alloc = Allocator()

    window_words = scaled(100_000, scale, 256)   # ~400 KB window
    n_heads = scaled(32_768, scale, 64)
    iters = scaled(1_800, scale, 32)

    window = alloc.alloc(window_words)
    heads = alloc.alloc(n_heads)
    for i in range(0, window_words, 8):
        b.data_word(window + i * WORD_SIZE, rng.randrange(1 << 24))
    hot_window_words = scaled(4_000, scale, 256)
    for i in range(n_heads):
        # Head table: a previous window position for this hash.  Matches
        # cluster near recently-seen data (LZ77 locality).
        pos = locality_address(rng, window, hot_window_words,
                               window_words, 0.07)
        b.data_word(heads + i * WORD_SIZE, pos)

    ptr, cur, hashv, head_ptr, cand, cand_data = \
        R(1), R(2), R(3), R(4), R(5), R(6)
    match_len, best, count, heads_base, window_end, tmp = \
        R(7), R(8), R(9), R(10), R(11), R(12)
    limit, crc0, crc1, crc2, crc3 = R(13), R(14), R(15), R(16), R(17)

    b.movi(ptr, window)
    b.movi(window_end, window + window_words * WORD_SIZE)
    b.movi(heads_base, heads)
    b.movi(count, iters)
    b.movi(best, 0)
    b.movi(crc1, 0)
    b.movi(crc3, 0)

    b.label("deflate")
    b.ld(cur, ptr, 0)                   # current window word
    # Rolling hash of the lookahead.
    b.shri(hashv, cur, 5)
    b.xor(hashv, hashv, cur)
    b.andi(hashv, hashv, n_heads - 1)
    # Common substrings hash into a hot subset of the head table.
    b.andi(crc0, cur, 7)
    b.cmpnei(P(7), crc0, 0)
    b.andi(hashv, hashv, 255, pred=P(7))
    b.shli(hashv, hashv, 2)
    b.add(head_ptr, hashv, heads_base)
    b.ld(cand, head_ptr, 0)             # scattered head probe
    b.st(ptr, head_ptr, 0)              # update the chain head
    # Bounded match loop: compare up to 4 words, exit on mismatch.
    b.movi(match_len, 0)
    b.movi(limit, 4)
    b.label("match")
    b.ld(cand_data, cand, 0)            # scattered candidate data
    b.ld(tmp, ptr, 0)
    b.cmpne(P(1), cand_data, tmp)       # data-dependent exit
    b.br("endmatch", pred=P(1))
    b.addi(match_len, match_len, 1)
    b.addi(cand, cand, WORD_SIZE)
    b.subi(limit, limit, 1)
    b.cmpnei(P(2), limit, 0)
    b.br("match", pred=P(2))
    b.label("endmatch")
    b.cmplt(P(3), best, match_len)
    b.mov(best, match_len, pred=P(3))
    # Output-side CRC and bit-packing: independent integer work.
    b.shri(crc0, cur, 3)
    b.xor(crc1, crc1, cur)
    b.shli(crc2, match_len, 4)
    b.or_(crc1, crc1, crc0)
    b.add(crc3, crc3, crc2)
    b.andi(crc1, crc1, 0xFFFFFF)
    b.addi(crc3, crc3, 7)
    b.addi(ptr, ptr, 8 * WORD_SIZE)
    b.cmplt(P(4), ptr, window_end)
    b.movi(tmp, window)
    b.cmpeqi(P(5), P(4), 0)
    b.mov(ptr, tmp, pred=P(5))
    counted_loop(b, "deflate", count, P(6))
    b.st(best, heads_base, 0)
    b.halt()

    b.metadata.update(window_words=window_words, n_heads=n_heads,
                      iters=iters)
    return b.build()


@register("crafty", "CINT2000",
          "chess bitboards: cache-resident attack-table lookups and "
          "shift/mask popcount work with high static ILP")
def build_crafty(scale: float = 1.0) -> Program:
    b = ProgramBuilder("crafty")
    rng = rng_for("crafty")
    alloc = Allocator()

    table_words = 2_048                          # 8 KB: L1 resident
    iters = scaled(2_600, scale, 32)

    tables = alloc.alloc(table_words)
    for i in range(table_words):
        b.data_word(tables + i * WORD_SIZE, rng.getrandbits(31))

    board_lo, board_hi, attacks, occ, moves = R(1), R(2), R(3), R(4), R(5)
    idx, taddr, count, tab_base, popcnt = R(6), R(7), R(8), R(9), R(10)
    bit, tmp, tmp2, score = R(11), R(12), R(13), R(14)
    hmult, e0, e1, e2 = R(15), R(16), R(17), R(18)

    b.movi(tab_base, tables)
    b.movi(hmult, 1103515245)
    b.movi(board_lo, 0x12345678)
    b.movi(board_hi, 0x0F0F0F0F)
    b.movi(count, iters)
    b.movi(score, 0)
    b.movi(e1, 0)

    b.label("search")
    # Move-ordering hash (serial multiply recurrence bounds even ideal
    # dataflow scheduling, as crafty's real iteration dependences do).
    b.mul(board_lo, board_lo, hmult)
    b.addi(board_lo, board_lo, 9)
    # Two independent attack-table lookups (both L1 hits).
    b.andi(idx, board_lo, table_words - 1)
    b.shli(taddr, idx, 2)
    b.add(taddr, taddr, tab_base)
    b.ld(attacks, taddr, 0)
    b.shri(tmp, board_hi, 7)
    b.andi(tmp, tmp, table_words - 1)
    b.shli(tmp, tmp, 2)
    b.add(tmp, tmp, tab_base)
    b.ld(occ, tmp, 0)
    # Bitboard algebra: wide, independent ALU work.
    b.and_(moves, attacks, occ)
    b.xor(board_lo, board_lo, attacks)
    b.or_(board_hi, board_hi, occ)
    b.shli(tmp2, moves, 1)
    b.xor(moves, moves, tmp2)
    # Popcount via parallel nibble folding (dependent shift chain).
    b.shri(popcnt, moves, 1)
    b.andi(popcnt, popcnt, 0x55555555)
    b.sub(popcnt, moves, popcnt)
    b.shri(bit, popcnt, 2)
    b.andi(bit, bit, 0x33333333)
    b.andi(popcnt, popcnt, 0x33333333)
    b.add(popcnt, popcnt, bit)
    b.shri(bit, popcnt, 4)
    b.add(popcnt, popcnt, bit)
    b.andi(popcnt, popcnt, 0x0F0F0F0F)
    b.add(score, score, popcnt)
    # Independent evaluation strand (pawn-structure terms).
    b.shri(e0, occ, 3)
    b.xor(e1, e1, attacks)
    b.and_(e2, occ, attacks)
    b.or_(e1, e1, e0)
    b.add(e2, e2, e0)
    b.shli(e0, e2, 1)
    b.cmplti(P(1), score, 0)
    b.movi(score, 0, pred=P(1))
    counted_loop(b, "search", count, P(2))
    b.st(score, tab_base, 0)
    b.halt()

    b.metadata.update(table_words=table_words, iters=iters)
    return b.build()
