"""Synthetic SPEC CPU2000-like workload kernels.

Twelve C-language SPEC CPU2000 benchmarks stand behind the paper's
evaluation; each module here reproduces one benchmark's algorithmic
skeleton (memory-access pattern, dependence recurrences, branch behaviour
and functional-unit mix) in the target ISA.  See DESIGN.md for the
substitution rationale.
"""

from . import cfp, cint_branchy, cint_compute, cint_memory  # noqa: F401
from .common import Allocator, WorkloadSpec, registry, scaled

#: CINT2000-derived kernels.
CINT = ("bzip2", "crafty", "gap", "gzip", "mcf", "parser", "twolf", "vpr")
#: CFP2000-derived kernels.
CFP = ("ammp", "art", "equake", "mesa")
#: Evaluation order used by the figures (integer suite first).
ALL_WORKLOADS = CINT + CFP


def build_workload(name: str, scale: float = 1.0, verify: bool = True):
    """Build the named workload program at the given scale.

    Every built program is verified at seal time (``verify=False`` opts
    out): a workload generator that produces an illegal program fails
    fast here with a :class:`~repro.analysis.diagnostics.VerifierError`
    instead of corrupting a simulation downstream.
    """
    specs = registry()
    if name not in specs:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(specs)}")
    program = specs[name](scale)
    if verify:
        from ..analysis.verifier import assert_valid
        assert_valid(program)
    return program


__all__ = [
    "ALL_WORKLOADS", "Allocator", "CFP", "CINT", "WorkloadSpec",
    "build_workload", "registry", "scaled",
]
