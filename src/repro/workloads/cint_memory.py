"""Memory-bound CINT2000 kernels: mcf, gap, parser.

These three carry the paper's headline cache-miss behaviour: ``mcf`` is the
worst cache offender in CINT2000 (Fig. 6 shows a 56% memory-stall
reduction under multipass and names it as a benchmark where advance
restart matters), ``gap`` mixes chained dereferences with enough
independent work for preexecution, and ``parser`` walks short hash chains
with data-dependent exits.
"""

from __future__ import annotations

from ..isa import P, R, WORD_SIZE
from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from .common import (Allocator, counted_loop, locality_address,
                     register, rng_for, scaled)


@register("mcf", "CINT2000",
          "network-simplex arc pricing: a warm basis-tree chase (short "
          "L2 misses, the critical SCC) gating scattered long-latency "
          "node-potential loads — the paper's Fig. 1(d) structure")
def build_mcf(scale: float = 1.0) -> Program:
    b = ProgramBuilder("mcf")
    rng = rng_for("mcf")
    alloc = Allocator()

    # Basis ring: ~48 KB, L2-resident after a warming scan, so chase
    # loads are short L1-misses.  Node potentials live in a large cold
    # region whose loads go to main memory and are independent across
    # iterations — exactly the short-miss-gates-long-miss pattern that
    # advance restart exploits.
    n_basis = scaled(3_000, scale, 64)
    n_arcs = scaled(24_000, scale, 128)
    pot_region_words = scaled(1_100_000, scale, 4096)   # ~4.2 MB (> L3)
    pot_hot_words = scaled(12_000, scale, 512)          # ~48 KB hot set
    cold_fraction = 0.06
    outer_iters = scaled(32, scale, 4)
    price_iters = 32
    refresh_iters = 18

    node_words = 4
    basis_nodes = alloc.alloc(n_basis * node_words)
    potentials = alloc.alloc(pot_region_words)

    def node_addr(i: int) -> int:
        return basis_nodes + i * node_words * WORD_SIZE

    def random_pot_addr() -> int:
        return locality_address(rng, potentials, pot_hot_words,
                                pot_region_words, cold_fraction)

    order = list(range(1, n_basis))
    rng.shuffle(order)
    ring = [0] + order
    pot_refs = []
    for pos, i in enumerate(ring):
        succ = ring[(pos + 1) % n_basis]
        pot = random_pot_addr()
        pot_refs.append(pot)
        b.data_word(node_addr(i), pot)                        # data ptr
        b.data_word(node_addr(i) + WORD_SIZE, node_addr(succ))  # next
        b.data_word(node_addr(i) + 2 * WORD_SIZE,
                    rng.randrange(1, 50))                     # flow

    # Arc array: [tail_ptr, head_ptr, cost], scanned sequentially; tail
    # and head point into the big potential region.
    arc_words = 4
    arcs = alloc.alloc(n_arcs * arc_words)
    for i in range(n_arcs):
        base = arcs + i * arc_words * WORD_SIZE
        for off in (0, WORD_SIZE):
            pot = random_pot_addr()
            pot_refs.append(pot)
            b.data_word(base + off, pot)
        b.data_word(base + 2 * WORD_SIZE, rng.randrange(1, 100))
    # Only referenced potential words need initial values.
    for addr in pot_refs:
        b.data_word(addr, rng.randrange(1, 1000))

    arc_ptr, basis, count = R(1), R(2), R(3)
    tail, head, pot_t, pot_h, cost = R(4), R(5), R(6), R(7), R(8)
    reduced, acc, neg_count, node_pot, tmp = \
        R(9), R(10), R(11), R(12), R(13)
    arc_end, warm_ptr, warm_end, pot_ptr = R(14), R(15), R(16), R(17)
    depth, hashk, seen, span, flags = R(18), R(19), R(20), R(21), R(22)
    outer = R(23)

    # Warming scan: touch every basis line sequentially (overlapped
    # compulsory misses), standing in for mcf's setup passes.  The
    # touched words fold into the bookkeeping checksum so every load
    # destination has a use.
    b.movi(hashk, 0)
    b.movi(seen, 0)
    b.movi(flags, 0)
    b.movi(warm_ptr, basis_nodes)
    b.movi(warm_end, basis_nodes + n_basis * node_words * WORD_SIZE)
    b.label("warm")
    b.ld(tmp, warm_ptr, 0)
    b.add(seen, seen, tmp)
    b.addi(warm_ptr, warm_ptr, 64)
    b.cmplt(P(5), warm_ptr, warm_end)
    b.br("warm", pred=P(5))

    b.movi(arc_ptr, arcs)
    b.movi(arc_end, arcs + n_arcs * arc_words * WORD_SIZE)
    b.movi(basis, node_addr(0))
    b.movi(outer, outer_iters)
    b.movi(acc, 0)
    b.movi(neg_count, 0)

    # Real mcf alternates an arc-pricing scan (independent scattered
    # misses, plenty of MLP for any preexecution scheme) with
    # refresh_potential-style basis-tree walks (a serial chase where only
    # advance restart can pipeline the chained misses).
    b.label("outer")
    b.movi(count, price_iters)
    b.label("price")
    b.ld(tail, arc_ptr, 0)
    b.ld(head, arc_ptr, WORD_SIZE)
    b.ld(cost, arc_ptr, 2 * WORD_SIZE)
    b.ld(pot_t, tail, 0)               # scattered, independent
    b.ld(pot_h, head, 0)               # scattered, independent
    b.sub(reduced, pot_t, pot_h)
    b.add(reduced, reduced, cost)
    b.cmplti(P(1), reduced, 0)
    b.addi(neg_count, neg_count, 1, pred=P(1))
    b.add(acc, acc, reduced, pred=P(1))
    # Pricing bookkeeping: independent integer work the in-order machine
    # can pack into wide groups (real mcf does comparable list upkeep).
    b.shli(depth, cost, 1)
    b.xor(hashk, hashk, cost)
    b.addi(seen, seen, 1)
    b.shri(span, reduced, 3)
    b.or_(flags, flags, span)
    b.add(hashk, hashk, depth)
    b.andi(flags, flags, 0xFFFF)
    b.add(seen, seen, span)
    b.addi(arc_ptr, arc_ptr, arc_words * WORD_SIZE)
    b.cmplt(P(2), arc_ptr, arc_end)
    b.movi(tmp, arcs)
    b.cmpeqi(P(3), P(2), 0)
    b.mov(arc_ptr, tmp, pred=P(3))
    counted_loop(b, "price", count, P(4))

    # refresh_potential: everything depends on the basis chase; the chase
    # load is the critical SCC and receives the compiler RESTART.
    b.movi(count, refresh_iters)
    b.label("refresh")
    b.ld(basis, basis, WORD_SIZE)      # basis = basis->next (short miss)
    b.ld(pot_ptr, basis, 0)            # chained pointer
    b.ld(node_pot, pot_ptr, 0)         # chained long miss
    b.ld(tmp, basis, 2 * WORD_SIZE)    # flow field (warm)
    b.mul(node_pot, node_pot, tmp)     # flow-cost product
    b.add(acc, acc, node_pot)
    b.shri(tmp, node_pot, 5)
    b.xor(hashk, hashk, tmp)
    counted_loop(b, "refresh", count, P(6))
    counted_loop(b, "outer", outer, P(7))
    b.st(acc, arc_ptr, 0)
    b.halt()

    b.metadata.update(n_basis=n_basis, n_arcs=n_arcs,
                      outer_iters=outer_iters,
                      pot_region_words=pot_region_words)
    return b.build()


@register("gap", "CINT2000",
          "computational group theory: worklist of tagged objects with "
          "two-level (object -> handler -> payload) chained dereferences")
def build_gap(scale: float = 1.0) -> Program:
    b = ProgramBuilder("gap")
    rng = rng_for("gap")
    alloc = Allocator()

    n_objects = scaled(48_000, scale, 128)
    ring_size = scaled(450, scale, 32)       # workspace revisited each pass
    pay_hot_words = scaled(4_000, scale, 256)
    n_work = scaled(2_600, scale, 32)

    # Objects: [tag, payload_ptr]; payloads: [value, next_ptr].
    obj_words, pay_words = 2, 2
    objects = alloc.alloc(n_objects * obj_words)
    payloads = alloc.alloc(n_objects * pay_words)

    def obj_addr(i):
        return objects + i * obj_words * WORD_SIZE

    def pay_addr(i):
        return payloads + i * pay_words * WORD_SIZE

    pay_words_total = n_objects * pay_words

    def payload_ref() -> int:
        word = locality_address(rng, 0, pay_hot_words, pay_words_total,
                                0.08)
        return pay_addr(word // (pay_words * WORD_SIZE))

    for i in range(n_objects):
        b.data_word(obj_addr(i), rng.randrange(4))             # tag
        b.data_word(obj_addr(i) + WORD_SIZE, payload_ref())
        b.data_word(pay_addr(i), rng.randrange(1, 500))
        b.data_word(pay_addr(i) + WORD_SIZE, payload_ref())

    # Worklist: a random ring over a workspace subset of the objects.
    # The ring is revisited every ~ring_size dispatches, so its lines
    # warm into the L2 — gap's interpreter workspace behaves this way.
    worklist = alloc.alloc(n_objects)
    members = rng.sample(range(n_objects), ring_size)
    for pos, i in enumerate(members):
        succ = members[(pos + 1) % ring_size]
        b.data_word(worklist + i * WORD_SIZE, obj_addr(succ))
    first_obj = members[0]

    work, obj, tag, payload, value = R(1), R(2), R(3), R(4), R(5)
    acc0, acc1, nxt, count, wl_base = R(6), R(7), R(8), R(9), R(10)
    slot, tmp = R(11), R(12)
    h0, h1, h2, h3 = R(13), R(14), R(15), R(16)

    b.movi(wl_base, worklist)
    b.movi(obj, obj_addr(first_obj))
    b.movi(count, n_work)
    b.movi(acc0, 0)
    b.movi(acc1, 1)
    b.movi(h1, 0)
    b.movi(h2, 0)

    b.label("dispatch")
    b.ld(tag, obj, 0)                   # scattered object header load
    b.ld(payload, obj, WORD_SIZE)       # handler/payload pointer
    b.ld(value, payload, 0)             # chained dereference
    # Type dispatch: integers accumulate, lists multiply, rest count.
    b.cmpeqi(P(1), tag, 0)
    b.add(acc0, acc0, value, pred=P(1))
    b.cmpeqi(P(2), tag, 1)
    b.mul(acc1, acc1, value, pred=P(2))
    b.cmplei(P(3), tag, 1)
    b.cmpeqi(P(4), P(3), 0)
    b.addi(acc0, acc0, 1, pred=P(4))
    # Follow the payload list one step (second chained load).
    b.ld(nxt, payload, WORD_SIZE)
    b.ld(tmp, nxt, 0)
    b.add(acc0, acc0, tmp)
    # Interpreter bookkeeping: independent handle/refcount maintenance.
    b.shli(h0, value, 1)
    b.xor(h1, h1, value)
    b.addi(h2, h2, 3)
    b.shri(h3, tmp, 2)
    b.or_(h1, h1, h0)
    b.add(h2, h2, h3)
    b.andi(h1, h1, 0xFFFFF)
    # Serial worklist advance: obj_index ring via the worklist table.
    b.sub(slot, obj, R(0))              # slot = obj address
    b.subi(slot, slot, objects)
    b.shri(slot, slot, 3)               # -> object index (8-byte records)
    b.shli(slot, slot, 2)
    b.add(slot, slot, wl_base)
    b.ld(obj, slot, 0)                  # critical SCC: obj feeds everything
    counted_loop(b, "dispatch", count, P(5))
    b.st(acc0, wl_base, 0)
    b.halt()

    b.metadata.update(n_objects=n_objects, n_work=n_work,
                      ring_size=ring_size)
    return b.build()


@register("parser", "CINT2000",
          "link-grammar dictionary lookups: hash-bucket chains with "
          "data-dependent early exits")
def build_parser(scale: float = 1.0) -> Program:
    b = ProgramBuilder("parser")
    rng = rng_for("parser")
    alloc = Allocator()

    n_buckets = scaled(16_384, scale, 64)
    n_entries = scaled(40_000, scale, 128)
    n_lookups = scaled(1_500, scale, 32)

    # Entries: [key, next_ptr]; buckets: head pointer or 0.
    entry_words = 2
    entries = alloc.alloc(n_entries * entry_words)
    buckets = alloc.alloc(n_buckets)

    def entry_addr(i):
        return entries + i * entry_words * WORD_SIZE

    heads = [0] * n_buckets
    for i in range(n_entries):
        bucket = rng.randrange(n_buckets)
        b.data_word(entry_addr(i), rng.randrange(1 << 20))
        b.data_word(entry_addr(i) + WORD_SIZE, heads[bucket])
        heads[bucket] = entry_addr(i)
    for j, head in enumerate(heads):
        b.data_word(buckets + j * WORD_SIZE, head)

    seed, hashv, bucket_ptr, entry, key = R(1), R(2), R(3), R(4), R(5)
    found, probes, count, bucket_base, target = R(6), R(7), R(8), R(9), R(10)
    mult, tmp2, w0, w1, w2 = R(11), R(12), R(13), R(14), R(15)

    b.movi(bucket_base, buckets)
    b.movi(seed, 0x1234567)
    b.movi(count, n_lookups)
    b.movi(found, 0)
    b.movi(probes, 0)
    b.movi(mult, 1103515245)
    b.movi(w1, 0)
    b.movi(w2, 0)

    b.label("lookup")
    # Hash the "word" (LCG step): a multiply feeds the address chain.
    b.mul(seed, seed, mult)
    b.addi(seed, seed, 12345)
    b.shri(hashv, seed, 8)
    b.andi(hashv, hashv, n_buckets - 1)
    # Most lookups are common words: skew them into 64 hot buckets whose
    # chains stay cache resident (real dictionaries behave like this).
    b.andi(tmp2, seed, 7)
    b.cmpnei(P(5), tmp2, 0)
    b.andi(hashv, hashv, 63, pred=P(5))
    b.shli(hashv, hashv, 2)
    b.add(bucket_ptr, hashv, bucket_base)
    b.ld(entry, bucket_ptr, 0)          # scattered bucket-head load
    b.shri(target, seed, 4)
    b.andi(target, target, (1 << 20) - 1)
    b.label("chain")
    b.cmpeqi(P(1), entry, 0)            # end of chain?
    b.br("miss", pred=P(1))
    b.ld(key, entry, 0)                 # serial chain load (short SCC)
    b.addi(probes, probes, 1)
    b.cmpeq(P(2), key, target)          # data-dependent exit
    b.br("hit", pred=P(2))
    b.ld(entry, entry, WORD_SIZE)       # entry = entry->next
    b.jmp("chain")
    b.label("hit")
    b.addi(found, found, 1)
    b.label("miss")
    # Post-lookup word processing (morphology flags): independent work.
    b.shli(w0, target, 1)
    b.xor(w1, w1, target)
    b.addi(w2, w2, 1)
    b.or_(w1, w1, w0)
    b.shri(w0, w1, 3)
    b.add(w2, w2, w0)
    counted_loop(b, "lookup", count, P(3))
    b.st(probes, bucket_base, 0)
    b.halt()

    b.metadata.update(n_buckets=n_buckets, n_entries=n_entries,
                      n_lookups=n_lookups)
    return b.build()
