"""CFP2000 kernels: art, equake, ammp, mesa.

The paper notes the CFP2000 benchmarks have fewer chained misses and fewer
critical strongly-connected components, so advance restart contributes
little there — their miss behaviour is streaming (``art``, ``mesa``),
indexed-gather (``equake``), or drowned under long floating-point latency
(``ammp``).
"""

from __future__ import annotations

from ..isa import F, P, R, WORD_SIZE
from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from .common import (Allocator, counted_loop, locality_address,
                     register, rng_for, scaled)


@register("art", "CFP2000",
          "adaptive-resonance neural match: L2-resident weight-block MACs "
          "with periodic uncommitted-prototype fetches from far memory")
def build_art(scale: float = 1.0) -> Program:
    b = ProgramBuilder("art")
    rng = rng_for("art")
    alloc = Allocator()

    n_weights = scaled(8_000, scale, 256)       # 32 KB: L2-resident block
    iters = scaled(2_400, scale, 32)

    weights = alloc.alloc(n_weights)
    inputs = alloc.alloc(1_024)
    for i in range(0, n_weights, 4):
        b.data_word(weights + i * WORD_SIZE, rng.random())
    for i in range(1_024):
        b.data_word(inputs + i * WORD_SIZE, rng.random())

    w_ptr, x_ptr, count, w_end, tmp = R(1), R(2), R(3), R(4), R(5)
    x_idx, x_base = R(6), R(7)
    seed, mult, tmp2, far_base, far_addr = R(8), R(9), R(10), R(11), R(12)
    far_words = 1 << 21                         # uncommitted F2 prototypes
    w0, w1, x0, x1, acc0, acc1, prod0, prod1 = \
        F(1), F(2), F(3), F(4), F(5), F(6), F(7), F(8)
    match0, match1 = F(9), F(10)

    b.movi(w_ptr, weights)
    b.movi(w_end, weights + n_weights * WORD_SIZE)
    b.movi(x_ptr, inputs)
    b.movi(x_base, inputs)
    b.movi(x_idx, 0)
    b.movi(count, iters)
    b.movi(seed, 0xFEDCBA)
    b.movi(mult, 1103515245)
    b.movi(far_base, alloc.alloc(far_words))
    b.fmovi(acc0, 0.0)
    b.fmovi(acc1, 0.0)

    b.label("f1")
    # Two-way unrolled streaming MAC: independent misses + FP latency.
    b.fld(w0, w_ptr, 0)
    b.fld(w1, w_ptr, 8 * WORD_SIZE)
    # Every eighth step compares against an uncommitted prototype row:
    # a fresh main-memory miss.
    b.mul(seed, seed, mult)
    b.addi(seed, seed, 12345)
    b.andi(tmp2, seed, 7)
    b.cmpeqi(P(4), tmp2, 0)
    b.shri(far_addr, seed, 3)
    b.andi(far_addr, far_addr, far_words - 1)
    b.shli(far_addr, far_addr, 2)
    b.add(far_addr, far_addr, far_base)
    b.fld(w0, far_addr, 0, pred=P(4))
    b.fld(x0, x_ptr, 0)
    b.fld(x1, x_ptr, WORD_SIZE)
    b.fmul(prod0, w0, x0)
    b.fmul(prod1, w1, x1)
    b.fadd(match0, w0, x0)
    b.fmul(match1, match0, prod0)
    b.fadd(prod1, prod1, match1)
    b.fadd(acc0, acc0, prod0)
    b.fadd(acc1, acc1, prod1)
    b.addi(w_ptr, w_ptr, 16 * WORD_SIZE)
    b.cmplt(P(1), w_ptr, w_end)
    b.movi(tmp, weights)
    b.cmpeqi(P(2), P(1), 0)
    b.mov(w_ptr, tmp, pred=P(2))
    b.addi(x_idx, x_idx, 2)
    b.andi(x_idx, x_idx, 1_023)
    b.shli(tmp, x_idx, 2)
    b.add(x_ptr, tmp, x_base)
    counted_loop(b, "f1", count, P(3))
    b.fadd(acc0, acc0, acc1)
    b.fst(acc0, w_ptr, 0)
    b.halt()

    b.metadata.update(n_weights=n_weights, iters=iters,
                      inputs_base=inputs)
    return b.build()


@register("equake", "CFP2000",
          "seismic FEM: CSR sparse matrix-vector product with scattered "
          "x[col[k]] gathers and serial FP accumulation")
def build_equake(scale: float = 1.0) -> Program:
    b = ProgramBuilder("equake")
    rng = rng_for("equake")
    alloc = Allocator()

    n_cols = scaled(120_000, scale, 256)        # ~480 KB vector
    n_nnz = scaled(500, scale, 64)              # row block, reused per step
    iters = scaled(2_600, scale, 32)

    values = alloc.alloc(n_nnz)
    colidx = alloc.alloc(n_nnz)
    xvec = alloc.alloc(n_cols)
    for i in range(n_nnz):
        b.data_word(values + i * WORD_SIZE, rng.random())
        b.data_word(colidx + i * WORD_SIZE, rng.randrange(n_cols))
    for i in range(0, n_cols, 4):
        b.data_word(xvec + i * WORD_SIZE, rng.random())

    k_ptr, col, x_addr, count, nnz_end, tmp = \
        R(1), R(2), R(3), R(4), R(5), R(6)
    x_base, val_off = R(7), R(8)
    seed, mult, tmp2, far_base = R(9), R(10), R(11), R(12)
    far_words = 1 << 21                         # 8 MB remote-node region
    a_val, x_val, prod, rowsum = F(1), F(2), F(3), F(4)
    disp, vel, rowsum2 = F(5), F(6), F(7)

    b.movi(k_ptr, colidx)
    b.movi(nnz_end, colidx + n_nnz * WORD_SIZE)
    b.movi(x_base, xvec)
    b.movi(val_off, values - colidx)
    b.movi(count, iters)
    b.movi(seed, 0x2468ACE)
    b.movi(mult, 1103515245)
    b.movi(far_base, alloc.alloc(far_words))
    b.fmovi(rowsum, 0.0)
    b.fmovi(rowsum2, 0.0)

    b.label("spmv")
    b.ld(col, k_ptr, 0)                 # sequential column index
    b.add(tmp, k_ptr, val_off)
    b.fld(a_val, tmp, 0)                # matching matrix value
    b.shli(x_addr, col, 2)
    b.add(x_addr, x_addr, x_base)
    # Every eighth element touches a remote mesh node: a fresh
    # main-memory miss (the unbounded part of equake's working set).
    b.mul(seed, seed, mult)
    b.addi(seed, seed, 12345)
    b.andi(tmp2, seed, 7)
    b.cmpeqi(P(4), tmp2, 0)
    b.shri(tmp2, seed, 3)
    b.andi(tmp2, tmp2, far_words - 1)
    b.shli(tmp2, tmp2, 2)
    b.add(tmp2, tmp2, far_base, pred=P(4))
    b.mov(x_addr, tmp2, pred=P(4))
    b.fld(x_val, x_addr, 0)             # scattered gather: x[col[k]]
    # Element update: several FP operations hang off every gathered
    # value (stiffness x displacement, damping, time integration).
    b.fmul(prod, a_val, x_val)
    b.fadd(disp, x_val, a_val)
    b.fmul(vel, disp, prod)
    b.fadd(prod, prod, vel)
    b.fmul(disp, disp, disp)
    b.fadd(vel, vel, disp)
    b.fadd(rowsum, rowsum, prod)        # serial FP recurrence
    b.fadd(rowsum2, rowsum2, vel)
    b.addi(k_ptr, k_ptr, WORD_SIZE)
    b.cmplt(P(1), k_ptr, nnz_end)
    b.movi(tmp, colidx)
    b.cmpeqi(P(2), P(1), 0)
    b.mov(k_ptr, tmp, pred=P(2))
    counted_loop(b, "spmv", count, P(3))
    b.fst(rowsum, x_base, 0)
    b.halt()

    b.metadata.update(n_cols=n_cols, n_nnz=n_nnz, iters=iters)
    return b.build()


@register("ammp", "CFP2000",
          "molecular dynamics: neighbor-list force computation with "
          "scattered coordinate loads and FP divides")
def build_ammp(scale: float = 1.0) -> Program:
    b = ProgramBuilder("ammp")
    rng = rng_for("ammp")
    alloc = Allocator()

    n_atoms = scaled(50_000, scale, 128)        # ~400 KB coordinates
    n_pairs = scaled(1_500, scale, 32)

    coords = alloc.alloc(n_atoms * 2)           # [x, y] per atom
    pairs = alloc.alloc(n_pairs * 2)
    for i in range(n_atoms):
        b.data_word(coords + i * 2 * WORD_SIZE, rng.random() * 100.0)
        b.data_word(coords + (i * 2 + 1) * WORD_SIZE, rng.random() * 100.0)
    hot_atoms = scaled(4_000, scale, 64)
    for i in range(n_pairs):
        # Neighbour lists are spatially local: most partners come from
        # the hot shell, a few from far-away atoms.
        for slot in (0, 1):
            addr = locality_address(rng, 0, hot_atoms, n_atoms, 0.05)
            b.data_word(pairs + (i * 2 + slot) * WORD_SIZE,
                        addr // WORD_SIZE)

    pair_ptr, ai, aj, addr_i, addr_j, count, tmp = \
        R(1), R(2), R(3), R(4), R(5), R(6), R(7)
    coord_base, seed, mult, tmp2, far_base = R(8), R(9), R(10), R(11), R(12)
    far_words = 1 << 21                         # 8 MB far-shell region
    xi, yi, xj, yj, dx, dy = F(1), F(2), F(3), F(4), F(5), F(6)
    r2, force, energy, one = F(7), F(8), F(9), F(10)
    cutoff, virial = F(11), F(12)

    b.movi(pair_ptr, pairs)
    b.movi(coord_base, coords)
    b.movi(count, n_pairs)
    b.movi(seed, 0x13579BD)
    b.movi(mult, 1103515245)
    b.movi(far_base, alloc.alloc(far_words))
    b.fmovi(energy, 0.0)
    b.fmovi(one, 1.0)
    b.fmovi(cutoff, 5000.0)
    b.fmovi(virial, 0.0)

    b.label("force")
    b.ld(ai, pair_ptr, 0)               # sequential neighbor-list reads
    b.ld(aj, pair_ptr, WORD_SIZE)
    b.shli(addr_i, ai, 3)
    b.add(addr_i, addr_i, coord_base)
    b.shli(addr_j, aj, 3)
    b.add(addr_j, addr_j, coord_base)
    # Occasional far-shell partner: fresh main-memory miss.
    b.mul(seed, seed, mult)
    b.addi(seed, seed, 12345)
    b.andi(tmp2, seed, 7)
    b.cmpeqi(P(2), tmp2, 0)
    b.shri(tmp2, seed, 3)
    b.andi(tmp2, tmp2, far_words - 8)
    b.shli(tmp2, tmp2, 2)
    b.add(tmp2, tmp2, far_base, pred=P(2))
    b.mov(addr_j, tmp2, pred=P(2))
    b.fld(xi, addr_i, 0)                # scattered coordinate gathers
    b.fld(yi, addr_i, WORD_SIZE)
    b.fld(xj, addr_j, 0)
    b.fld(yj, addr_j, WORD_SIZE)
    b.fsub(dx, xi, xj)
    b.fsub(dy, yi, yj)
    b.fmul(dx, dx, dx)
    b.fmul(dy, dy, dy)
    b.fadd(r2, dx, dy)
    b.fadd(r2, r2, one)                 # avoid r2 == 0
    b.fdiv(force, one, r2)              # long-latency divide ("other")
    # Cutoff: pairs beyond the interaction radius contribute nothing.
    b.fcmplt(P(3), r2, cutoff)
    b.fadd(energy, energy, force, pred=P(3))
    b.fadd(virial, virial, r2, pred=P(3))
    b.addi(pair_ptr, pair_ptr, 2 * WORD_SIZE)
    counted_loop(b, "force", count, P(1))
    b.fst(energy, coord_base, 0)
    b.halt()

    b.metadata.update(n_atoms=n_atoms, n_pairs=n_pairs)
    return b.build()


@register("mesa", "CFP2000",
          "software 3D rasterizer front end: 4x4 vertex transforms over "
          "a sequential vertex buffer (cache-friendly, high FP ILP)")
def build_mesa(scale: float = 1.0) -> Program:
    b = ProgramBuilder("mesa")
    rng = rng_for("mesa")
    alloc = Allocator()

    n_vertices = scaled(1_100, scale, 32)
    n_frames = 3                                # buffer reused per frame
    vertex_words = 4                            # x, y, z, w

    vertices = alloc.alloc(n_vertices * vertex_words)
    matrix = alloc.alloc(16)
    for i in range(n_vertices * vertex_words):
        b.data_word(vertices + i * WORD_SIZE, rng.random() * 2.0 - 1.0)
    for i in range(16):
        b.data_word(matrix + i * WORD_SIZE, rng.random())

    v_ptr, count, mat_base, frame = R(1), R(2), R(3), R(4)
    m0, m1, m2, m3 = F(1), F(2), F(3), F(4)
    lit = F(5)
    vx = [F(6), F(7)]
    vy = [F(8), F(9)]
    vz = [F(10), F(11)]
    vw = [F(12), F(13)]
    tx = [F(14), F(15)]
    ty = [F(16), F(17)]
    t0 = [F(18), F(19)]
    t1 = [F(20), F(21)]

    b.movi(mat_base, matrix)
    b.movi(frame, n_frames)
    b.fmovi(lit, 0.0)
    # The matrix row used for both dot products stays register resident.
    b.fld(m0, mat_base, 0)
    b.fld(m1, mat_base, WORD_SIZE)
    b.fld(m2, mat_base, 2 * WORD_SIZE)
    b.fld(m3, mat_base, 3 * WORD_SIZE)

    b.label("frame")
    b.movi(v_ptr, vertices)
    b.movi(count, n_vertices // 2)
    b.label("xform")
    # Two vertices per scheduled body (the compiler unrolls and
    # interleaves the independent transform trees).
    for k in range(2):
        off = k * vertex_words * WORD_SIZE
        vx_, vy_, vz_, vw_ = vx[k], vy[k], vz[k], vw[k]
        tx_, ty_, t0_, t1_ = tx[k], ty[k], t0[k], t1[k]
        b.fld(vx_, v_ptr, off)          # sequential vertex fetch
        b.fld(vy_, v_ptr, off + WORD_SIZE)
        b.fld(vz_, v_ptr, off + 2 * WORD_SIZE)
        b.fld(vw_, v_ptr, off + 3 * WORD_SIZE)
        # Two dot products with independent trees: high FP ILP.
        b.fmul(t0_, vx_, m0)
        b.fmul(t1_, vy_, m1)
        b.fadd(tx_, t0_, t1_)
        b.fmul(t0_, vz_, m2)
        b.fmul(t1_, vw_, m3)
        b.fadd(ty_, t0_, t1_)
        b.fadd(tx_, tx_, ty_)
        b.fmul(ty_, vx_, m2)
        b.fadd(ty_, ty_, tx_)
        b.fadd(lit, lit, ty_)           # serial lighting accumulation
        # Clip/cull: predicated per-vertex rejection.
        b.fcmplt(P(3 + k), tx_, m3)
        b.fadd(tx_, tx_, m0, pred=P(3 + k))
        b.fst(tx_, v_ptr, off)          # write back transformed x
        b.fst(ty_, v_ptr, off + WORD_SIZE)
    b.addi(v_ptr, v_ptr, 2 * vertex_words * WORD_SIZE)
    counted_loop(b, "xform", count, P(1))
    counted_loop(b, "frame", frame, P(2))
    b.fst(lit, mat_base, 0)
    b.halt()

    b.metadata.update(n_vertices=n_vertices, n_frames=n_frames)
    return b.build()
