"""Shared infrastructure for the synthetic SPEC CPU2000-like workloads.

Each workload implements the *algorithmic skeleton* of its namesake
benchmark in the target ISA — the memory-access pattern (pointer chasing,
hash probing, streaming, indexed gathers), the dependence structure
(recurrences that become critical SCCs), the branch behaviour and the
functional-unit mix are what the paper's evaluation exercises, so those are
reproduced; the surrounding application logic is not.

Workloads accept a ``scale`` factor so tests can run miniature versions
while benchmarks use the calibrated defaults.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..isa.builder import ProgramBuilder
from ..isa.program import WORD_SIZE, Program


@dataclass(frozen=True)
class WorkloadSpec:
    """Registry entry for one benchmark kernel."""

    name: str
    suite: str            # "CINT2000" or "CFP2000"
    description: str
    build: Callable[[float], Program]

    def __call__(self, scale: float = 1.0) -> Program:
        return self.build(scale)


class Allocator:
    """Bump allocator for laying out data regions in the flat memory."""

    def __init__(self, base: int = 0x1000, align: int = 64):
        self._next = base
        self.align = align

    def alloc(self, n_words: int, align: Optional[int] = None) -> int:
        """Reserve ``n_words`` 4-byte words; returns the base byte address."""
        align = align or self.align
        base = (self._next + align - 1) // align * align
        self._next = base + n_words * WORD_SIZE
        return base


def scaled(value: int, scale: float, minimum: int = 1) -> int:
    """Scale an iteration count / footprint knob, with a floor."""
    return max(minimum, int(round(value * scale)))


def rng_for(name: str) -> random.Random:
    """Deterministic per-workload random source (reproducible builds)."""
    return random.Random(f"repro-flea-flicker:{name}")


def counted_loop(b: ProgramBuilder, label: str, counter_reg: int,
                 pred: int) -> None:
    """Emit the standard loop back edge: decrement, compare-nonzero, branch.

    The counter register must hold the remaining iteration count when the
    back edge is reached; the loop body runs ``initial count`` times.
    """
    b.subi(counter_reg, counter_reg, 1)
    b.cmpnei(pred, counter_reg, 0)
    b.br(label, pred=pred)


def locality_address(rng: random.Random, base: int, hot_words: int,
                     total_words: int, cold_fraction: float) -> int:
    """Pick a byte address with SPEC-like temporal locality.

    With probability ``1 - cold_fraction`` the address falls in the hot
    prefix of the region (sized to sit in a particular cache level);
    otherwise it falls in the cold remainder.  Workload generators use
    this to set realistic hit/miss mixes: all-cold scattered accesses
    would make every kernel far more memory-bound than its SPEC namesake.
    """
    if total_words <= hot_words:
        return base + rng.randrange(total_words) * 4
    if rng.random() < cold_fraction:
        return base + rng.randrange(hot_words, total_words) * 4
    return base + rng.randrange(hot_words) * 4


_REGISTRY: Dict[str, WorkloadSpec] = {}


def register(name: str, suite: str, description: str):
    """Decorator adding a build function to the workload registry."""
    def wrap(fn: Callable[[float], Program]) -> Callable[[float], Program]:
        _REGISTRY[name] = WorkloadSpec(name, suite, description, fn)
        return fn
    return wrap


def registry() -> Dict[str, WorkloadSpec]:
    """All registered workloads (importing the package registers them)."""
    return dict(_REGISTRY)
