"""Branch-heavy CINT2000 kernels: twolf, vpr.

``twolf`` (standard-cell placement by simulated annealing) is dominated by
data-dependent accept/reject branches over a scattered cell array — the
benchmark where Fig. 6 reports a 29% *front-end* stall reduction from
pre-executed branches.  ``vpr`` (FPGA place & route) gathers routing costs
through index arrays with more regular control flow.
"""

from __future__ import annotations

from ..isa import P, R, WORD_SIZE
from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from .common import (Allocator, counted_loop, locality_address,
                     register, rng_for, scaled)


@register("twolf", "CINT2000",
          "simulated-annealing placement: random cell swaps with "
          "unpredictable accept/reject branches")
def build_twolf(scale: float = 1.0) -> Program:
    b = ProgramBuilder("twolf")
    rng = rng_for("twolf")
    alloc = Allocator()

    n_cells = 1 << max(7, (scaled(65_536, scale, 128)).bit_length() - 1)
    # power of two: cell indices come from masking LCG draws
    iters = scaled(2_000, scale, 32)

    cells = alloc.alloc(n_cells * 2)            # [x, y] per cell
    for i in range(n_cells):
        b.data_word(cells + i * 2 * WORD_SIZE, rng.randrange(4096))
        b.data_word(cells + (i * 2 + 1) * WORD_SIZE, rng.randrange(4096))

    seed, idx_a, idx_b, addr_a, addr_b = R(1), R(2), R(3), R(4), R(5)
    xa, ya, xb, yb, dx, dy = R(6), R(7), R(8), R(9), R(10), R(11)
    delta, accepted, count, cell_base, mult, tmp = \
        R(12), R(13), R(14), R(15), R(16), R(17)
    cost, w0, w1, w2 = R(18), R(19), R(20), R(21)

    b.movi(cell_base, cells)
    b.movi(seed, 0xBEEF)
    b.movi(count, iters)
    b.movi(accepted, 0)
    b.movi(cost, 0)
    b.movi(mult, 1103515245)
    b.movi(w1, 0)
    b.movi(w2, 0)

    b.label("anneal")
    # Two LCG draws pick the candidate swap pair (serial multiply chain).
    b.mul(seed, seed, mult)
    b.addi(seed, seed, 12345)
    b.shri(idx_a, seed, 8)
    b.mul(seed, seed, mult)
    b.addi(seed, seed, 12345)
    b.shri(idx_b, seed, 8)
    b.andi(idx_a, idx_a, n_cells - 1)
    b.andi(idx_b, idx_b, n_cells - 1)
    # Most swap candidates come from the neighbourhood being optimized
    # (a hot window of cells); occasional global moves go cold.
    b.andi(tmp, seed, 7)
    b.cmpnei(P(5), tmp, 0)
    b.andi(idx_a, idx_a, 1023, pred=P(5))
    b.andi(idx_b, idx_b, 1023, pred=P(5))
    b.shli(addr_a, idx_a, 3)
    b.add(addr_a, addr_a, cell_base)
    b.shli(addr_b, idx_b, 3)
    b.add(addr_b, addr_b, cell_base)
    b.ld(xa, addr_a, 0)                 # scattered cell loads
    b.ld(ya, addr_a, WORD_SIZE)
    b.ld(xb, addr_b, 0)
    b.ld(yb, addr_b, WORD_SIZE)
    # Wire-length delta: |xa-xb| + |ya-yb| via predicated negation.
    b.sub(dx, xa, xb)
    b.cmplti(P(1), dx, 0)
    b.sub(dx, R(0), dx, pred=P(1))
    b.sub(dy, ya, yb)
    b.cmplti(P(2), dy, 0)
    b.sub(dy, R(0), dy, pred=P(2))
    b.add(delta, dx, dy)
    # Bounding-box bookkeeping: independent integer work per move.
    b.shli(w0, dx, 1)
    b.xor(w1, w1, dy)
    b.add(w2, w2, dx)
    b.or_(w1, w1, w0)
    b.shri(w0, w2, 2)
    b.add(w2, w2, w0)
    # Accept/reject on a pseudo-random threshold: unpredictable branch.
    b.andi(tmp, seed, 0xFFF)
    b.cmplt(P(3), tmp, delta)
    b.br("reject", pred=P(3))
    b.addi(accepted, accepted, 1)
    b.st(xb, addr_a, 0)                 # commit the swap
    b.st(xa, addr_b, 0)
    b.add(cost, cost, delta)
    b.label("reject")
    counted_loop(b, "anneal", count, P(4))
    b.st(accepted, cell_base, 0)
    b.halt()

    b.metadata.update(n_cells=n_cells, iters=iters)
    return b.build()


@register("vpr", "CINT2000",
          "FPGA routing: fanout index arrays driving scattered "
          "routing-cost gathers and min-cost updates")
def build_vpr(scale: float = 1.0) -> Program:
    b = ProgramBuilder("vpr")
    rng = rng_for("vpr")
    alloc = Allocator()

    n_rr_nodes = scaled(70_000, scale, 128)     # ~280 KB cost array
    n_edges = scaled(900, scale, 64)            # fanout list, re-traversed
    hot_nodes = scaled(3_000, scale, 128)
    iters = scaled(2_400, scale, 32)

    costs = alloc.alloc(n_rr_nodes)
    edges = alloc.alloc(n_edges)
    for i in range(n_rr_nodes):
        b.data_word(costs + i * WORD_SIZE, rng.randrange(1, 10_000))
    for i in range(n_edges):
        # Routing explores a neighbourhood: mostly hot nodes, some cold.
        addr = locality_address(rng, 0, hot_nodes, n_rr_nodes, 0.10)
        b.data_word(edges + i * WORD_SIZE, addr // WORD_SIZE)

    edge_ptr, node_idx, cost_addr, cost, best = R(1), R(2), R(3), R(4), R(5)
    total, count, edge_base, edge_end, cost_base = \
        R(6), R(7), R(8), R(9), R(10)
    tmp, congestion = R(11), R(12)
    w0, w1, w2, w3 = R(13), R(14), R(15), R(16)

    b.movi(edge_base, edges)
    b.movi(edge_end, edges + n_edges * WORD_SIZE)
    b.movi(edge_ptr, edges)
    b.movi(cost_base, costs)
    b.movi(count, iters)
    b.movi(best, 0x7FFFFFFF)
    b.movi(total, 0)
    b.movi(w1, 0)
    b.movi(w3, 0)

    b.label("route")
    b.ld(node_idx, edge_ptr, 0)          # sequential fanout index
    b.shli(cost_addr, node_idx, 2)
    b.add(cost_addr, cost_addr, cost_base)
    b.ld(cost, cost_addr, 0)             # scattered cost gather
    b.addi(congestion, cost, 17)
    b.add(total, total, congestion)
    # Timing-analysis terms: independent integer work per edge.
    b.shli(w0, cost, 1)
    b.xor(w1, w1, node_idx)
    b.shri(w2, congestion, 3)
    b.or_(w1, w1, w0)
    b.add(w3, w3, w2)
    b.andi(w1, w1, 0xFFFFF)
    b.add(w3, w3, w0)
    # Min-cost tracking: moderately predictable branch.
    b.cmple(P(1), best, congestion)
    b.br("noupdate", pred=P(1))
    b.mov(best, congestion)
    b.st(best, cost_addr, 0)             # relax the node's cost
    b.jmp("skip")
    b.label("noupdate")
    b.addi(total, total, 1)
    b.label("skip")
    b.addi(edge_ptr, edge_ptr, WORD_SIZE)
    b.cmplt(P(2), edge_ptr, edge_end)
    b.movi(tmp, edges)
    b.cmpeqi(P(3), P(2), 0)
    b.mov(edge_ptr, tmp, pred=P(3))
    counted_loop(b, "route", count, P(4))
    b.st(total, cost_base, 0)
    b.halt()

    b.metadata.update(n_rr_nodes=n_rr_nodes, n_edges=n_edges, iters=iters)
    return b.build()
