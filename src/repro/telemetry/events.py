"""Typed cycle-level events and the per-core tracing facade.

The telemetry subsystem is event based: instrumented cores describe what
happened each cycle to a :class:`Tracer`, which turns the calls into
:class:`Event` records and hands them to a sink (see
:mod:`repro.telemetry.sinks`).  The taxonomy covers everything the
paper's evidence relies on:

* ``FETCH`` / ``ISSUE`` / ``COMMIT`` — per-instruction pipeline
  milestones (``ISSUE`` carries the issuing mode, so advance-mode
  preexecution is distinguishable from architectural issue);
* ``STALL_BEGIN`` / ``STALL_END`` — spans of consecutive non-execution
  cycles, labelled with the Figure 6 :class:`StallCategory` and the
  static instruction (``pc``) the stall is attributed to;
* ``MODE`` — one event per completed multipass mode span
  (architectural / advance / rally), emitted at the transition;
* ``RESTART`` — an advance-pass rewind (compiler ``RESTART`` or the
  footnote-1 hardware detector);
* ``RS_HIT`` — a result-store merge (advance- or rally-side);
* ``CACHE_MISS`` — an L1-missing demand access, labelled with the
  level that served it.

Overhead contract: a core holds either a live :class:`Tracer`
(``enabled`` is True) or the shared :data:`NULL_TRACER`; every
instrumentation site is guarded by one ``enabled`` attribute check, so
disabled tracing costs exactly that check and nothing else.  The
tier-1 golden tests pin that stats are bit-identical either way.
"""

from __future__ import annotations

import enum
from typing import Optional

from ..pipeline.stats import StallCategory


class EventKind(enum.Enum):
    """Every event the instrumented cores can emit."""

    FETCH = "fetch"
    ISSUE = "issue"
    COMMIT = "commit"
    STALL_BEGIN = "stall_begin"
    STALL_END = "stall_end"
    MODE = "mode"
    RESTART = "restart"
    RS_HIT = "rs_hit"
    CACHE_MISS = "cache_miss"


class Event:
    """One telemetry record.

    Attributes:
        kind: the :class:`EventKind`.
        cycle: the cycle the event describes.  Span events use it as
            follows: ``STALL_BEGIN``/``MODE`` carry the span's *start*
            cycle, ``STALL_END`` the span's *end* cycle (exclusive).
        seq: dynamic trace sequence number, ``-1`` when not applicable.
        pc: static instruction index in the program, ``-1`` when not
            applicable.  Stall spans carry the pc of the instruction
            the stall is attributed to (for multipass advance-mode
            cycles that is the *triggering* load, matching the stats
            taxonomy's charging rule).
        category: the Figure 6 stall category (stall events only).
        mode: issuing/occupying mode name (``ISSUE``/``MODE`` events).
        level: memory level that served a miss (``CACHE_MISS`` only).
        cycles: span length for ``STALL_END``/``MODE``, else 1.
    """

    __slots__ = ("kind", "cycle", "seq", "pc", "category", "mode",
                 "level", "cycles")

    def __init__(self, kind: EventKind, cycle: int, seq: int = -1,
                 pc: int = -1, category: Optional[StallCategory] = None,
                 mode: str = "", level: str = "", cycles: int = 1):
        self.kind = kind
        self.cycle = cycle
        self.seq = seq
        self.pc = pc
        self.category = category
        self.mode = mode
        self.level = level
        self.cycles = cycles

    def to_dict(self) -> dict:
        """Compact JSON-able rendering (omits inapplicable fields)."""
        record = {"kind": self.kind.value, "cycle": self.cycle}
        if self.seq >= 0:
            record["seq"] = self.seq
        if self.pc >= 0:
            record["pc"] = self.pc
        if self.category is not None:
            record["category"] = self.category.value
        if self.mode:
            record["mode"] = self.mode
        if self.level:
            record["level"] = self.level
        if self.cycles != 1:
            record["cycles"] = self.cycles
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event({self.to_dict()!r})"


class Tracer:
    """Per-core event constructor with span bookkeeping.

    Cores call one method per interesting occurrence; the tracer
    coalesces consecutive same-category, same-pc stall charges into
    spans and consecutive same-mode cycles into mode spans, so sinks
    see clean begin/end pairs instead of one event per stalled cycle.
    """

    enabled = True

    def __init__(self, sink):
        self.sink = sink
        # Open stall span: (category, pc, seq, start, end-exclusive).
        self._stall: Optional[list] = None
        # Open mode span: (mode name, start cycle).
        self._mode: Optional[str] = None
        self._mode_start = 0
        self._finished = False

    # -- per-instruction milestones -------------------------------------

    def fetch(self, cycle: int, seq: int, pc: int) -> None:
        self.sink.emit(Event(EventKind.FETCH, cycle, seq=seq, pc=pc))

    def issue(self, cycle: int, seq: int, pc: int, mode: str = "") -> None:
        self.sink.emit(Event(EventKind.ISSUE, cycle, seq=seq, pc=pc,
                             mode=mode))

    def commit(self, cycle: int, seq: int, pc: int) -> None:
        self.sink.emit(Event(EventKind.COMMIT, cycle, seq=seq, pc=pc))

    # -- point events ---------------------------------------------------

    def restart(self, cycle: int, seq: int, pc: int) -> None:
        self.sink.emit(Event(EventKind.RESTART, cycle, seq=seq, pc=pc))

    def rs_hit(self, cycle: int, seq: int, pc: int,
               mode: str = "") -> None:
        self.sink.emit(Event(EventKind.RS_HIT, cycle, seq=seq, pc=pc,
                             mode=mode))

    def cache_miss(self, cycle: int, seq: int, pc: int,
                   level: str) -> None:
        self.sink.emit(Event(EventKind.CACHE_MISS, cycle, seq=seq, pc=pc,
                             level=level))

    # -- cycle attribution (stall spans) --------------------------------

    def charge(self, cycle: int, category: StallCategory, seq: int = -1,
               pc: int = -1, cycles: int = 1) -> None:
        """Mirror of ``SimStats.charge`` with attribution context.

        Execution charges close any open stall span; non-execution
        charges open, extend or replace one.
        """
        if category is StallCategory.EXECUTION:
            if self._stall is not None:
                self._end_stall()
            return
        span = self._stall
        if span is not None and span[0] is category and span[1] == pc:
            span[4] = cycle + cycles
            return
        if span is not None:
            self._end_stall()
        self.sink.emit(Event(EventKind.STALL_BEGIN, cycle, seq=seq,
                             pc=pc, category=category))
        self._stall = [category, pc, seq, cycle, cycle + cycles]

    def _end_stall(self) -> None:
        category, pc, seq, start, end = self._stall
        self._stall = None
        self.sink.emit(Event(EventKind.STALL_END, end, seq=seq, pc=pc,
                             category=category, cycles=end - start))

    # -- mode spans -----------------------------------------------------

    def mode(self, cycle: int, mode: str) -> None:
        """Record the mode occupying ``cycle``; coalesces into spans."""
        if mode == self._mode:
            return
        if self._mode is not None and cycle > self._mode_start:
            self.sink.emit(Event(EventKind.MODE, self._mode_start,
                                 mode=self._mode,
                                 cycles=cycle - self._mode_start))
        self._mode = mode
        self._mode_start = cycle

    # -- wrap-up --------------------------------------------------------

    def finish(self, cycle: int) -> None:
        """Close open spans at end of simulation and close the sink."""
        if self._finished:
            return
        self._finished = True
        if self._stall is not None:
            self._end_stall()
        if self._mode is not None and cycle > self._mode_start:
            self.sink.emit(Event(EventKind.MODE, self._mode_start,
                                 mode=self._mode,
                                 cycles=cycle - self._mode_start))
            self._mode = None
        self.sink.close()


class NullTracer:
    """Disabled tracing: every method is a no-op.

    Cores never call past the ``enabled`` guard, but the methods exist
    so un-guarded call sites degrade to a cheap no-op instead of an
    ``AttributeError``.
    """

    enabled = False

    def fetch(self, *args, **kwargs) -> None:
        pass

    def issue(self, *args, **kwargs) -> None:
        pass

    def commit(self, *args, **kwargs) -> None:
        pass

    def restart(self, *args, **kwargs) -> None:
        pass

    def rs_hit(self, *args, **kwargs) -> None:
        pass

    def cache_miss(self, *args, **kwargs) -> None:
        pass

    def charge(self, *args, **kwargs) -> None:
        pass

    def mode(self, *args, **kwargs) -> None:
        pass

    def finish(self, *args, **kwargs) -> None:
        pass


#: Shared do-nothing tracer installed in every un-traced core.
NULL_TRACER = NullTracer()
