"""Metrics registry: counters, histograms and interval timeseries.

Where :mod:`repro.telemetry.sinks` stores *events*, this module
aggregates them into bounded-size summaries that are cheap enough to
collect for every cell of a sweep: plain counters, power-of-two-bucket
histograms, and per-interval timeseries whose resolution adapts (by
interval doubling) so memory stays bounded no matter how long a run is
— the sampling knob the telemetry overhead budget relies on.

:class:`MetricsSink` is the standard consumer: a telemetry sink that
folds the event stream into a registry on the fly (no event storage)
and renders a JSON-able :meth:`~MetricsSink.summary` — the per-cell
payload the parallel sweep engine attaches to its report.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .events import Event, EventKind
from .sinks import TelemetrySink


class Histogram:
    """Power-of-two bucketed histogram of non-negative integers.

    Bucket ``i`` counts values in ``(2**(i-1), 2**i]`` (bucket 0 counts
    zeros and ones), so any value range is covered by ~64 buckets.
    """

    def __init__(self):
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.max = 0

    def record(self, value: int, n: int = 1) -> None:
        bucket = max(0, int(value) - 1).bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + n
        self.count += n
        self.total += value * n
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "max": self.max,
            "mean": round(self.mean, 3),
            "buckets": {f"<={2 ** b}": n
                        for b, n in sorted(self.buckets.items())},
        }


class IntervalSeries:
    """Per-interval counts over the cycle axis, with bounded points.

    ``record(cycle, n)`` adds ``n`` to the interval containing
    ``cycle``.  When a run outgrows ``max_points`` intervals the series
    doubles its interval length and merges adjacent pairs, so the
    memory footprint — and the per-event cost — stays O(max_points)
    regardless of run length, at the price of coarser resolution.
    """

    def __init__(self, interval: int = 1024, max_points: int = 256):
        if interval < 1 or max_points < 2:
            raise ValueError("interval >= 1 and max_points >= 2 required")
        self.interval = interval
        self.max_points = max_points
        self.points: List[int] = []

    def record(self, cycle: int, n: int = 1) -> None:
        index = cycle // self.interval
        while index >= self.max_points:
            self._coarsen()
            index = cycle // self.interval
        while len(self.points) <= index:
            self.points.append(0)
        self.points[index] += n

    def record_span(self, start: int, cycles: int, n: int = 1) -> None:
        """Distribute ``n`` per cycle across ``[start, start+cycles)``."""
        end = start + cycles
        while start < end:
            boundary = (start // self.interval + 1) * self.interval
            chunk = min(end, boundary) - start
            self.record(start, chunk * n)
            start += chunk

    def _coarsen(self) -> None:
        self.interval *= 2
        merged = []
        for i in range(0, len(self.points), 2):
            pair = self.points[i:i + 2]
            merged.append(sum(pair))
        self.points = merged

    def to_dict(self) -> dict:
        return {"interval": self.interval, "points": list(self.points)}


class MetricsRegistry:
    """Named counters, histograms and series for one traced run."""

    def __init__(self):
        self.counters: Dict[str, int] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.series: Dict[str, IntervalSeries] = {}

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def histogram(self, name: str) -> Histogram:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        return hist

    def timeseries(self, name: str, interval: int = 1024,
                   max_points: int = 256) -> IntervalSeries:
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = IntervalSeries(interval,
                                                        max_points)
        return series

    def snapshot(self) -> dict:
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {name: h.to_dict() for name, h
                           in sorted(self.histograms.items())},
            "series": {name: s.to_dict() for name, s
                       in sorted(self.series.items())},
        }


class MetricsSink(TelemetrySink):
    """Aggregate the event stream into a :class:`MetricsRegistry`.

    Collected per run:

    * ``events.<kind>`` counters for every event kind;
    * ``stall_cycles.<category>`` counters and a ``stall_span_cycles``
      histogram (from ``STALL_END`` spans);
    * ``mode_cycles.<mode>`` occupancy counters;
    * ``cache_miss.<level>`` counters;
    * ``commits`` and ``issues`` interval series (per-interval IPC is
      ``points[i] / interval``) and a ``mode.<mode>`` occupancy series.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 interval: int = 1024, max_points: int = 256):
        super().__init__()
        self.registry = registry or MetricsRegistry()
        self._interval = interval
        self._max_points = max_points
        self.last_cycle = 0

    def _series(self, name: str) -> IntervalSeries:
        return self.registry.timeseries(name, self._interval,
                                        self._max_points)

    def emit(self, event: Event) -> None:
        reg = self.registry
        kind = event.kind
        reg.count(f"events.{kind.value}")
        if event.cycle > self.last_cycle:
            self.last_cycle = event.cycle
        if kind is EventKind.COMMIT:
            self._series("commits").record(event.cycle)
        elif kind is EventKind.ISSUE:
            self._series("issues").record(event.cycle)
        elif kind is EventKind.STALL_END:
            reg.count(f"stall_cycles.{event.category.value}",
                      event.cycles)
            reg.histogram("stall_span_cycles").record(event.cycles)
        elif kind is EventKind.MODE:
            reg.count(f"mode_cycles.{event.mode}", event.cycles)
            self._series(f"mode.{event.mode}").record_span(
                event.cycle, event.cycles)
        elif kind is EventKind.CACHE_MISS:
            reg.count(f"cache_miss.{event.level}")

    def summary(self) -> dict:
        """JSON/pickle-safe per-run payload (sweep cell attachment)."""
        payload = self.registry.snapshot()
        payload["last_cycle"] = self.last_cycle
        return payload
