"""Trace exporters: Chrome trace-event JSON and a Konata-style pipeview.

Both exporters consume a list of :class:`~repro.telemetry.events.Event`
records (typically from a
:class:`~repro.telemetry.sinks.RingBufferSink`) after the run finishes.

* :func:`chrome_trace` produces the Trace Event Format consumed by
  Perfetto / ``chrome://tracing``: mode and stall spans as complete
  (``"X"``) events on their own tracks, restarts / result-store merges
  / cache misses as instants.  One simulated cycle maps to one
  microsecond of trace time.
* :func:`render_pipeview` produces a Konata-style text pipeline view:
  one row per dynamic instruction, one column per cycle, with
  per-stage milestone characters — the quickest way to *see* advance
  passes overlapping an architectural stall.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..isa.trace import Trace
from .events import Event, EventKind

#: Track (``tid``) layout of the Chrome trace.
_TID_MODE = 1
_TID_STALL = 2
_TID_EVENTS = 3
_TID_MEMORY = 4


def chrome_trace(events: Iterable[Event], model: str = "",
                 workload: str = "") -> dict:
    """Convert events to a Trace Event Format document (a JSON dict)."""
    name = "/".join(p for p in (workload, model) if p) or "repro"
    trace_events: List[dict] = [
        {"ph": "M", "name": "process_name", "pid": 1, "tid": 0,
         "args": {"name": name}},
        {"ph": "M", "name": "thread_name", "pid": 1, "tid": _TID_MODE,
         "args": {"name": "mode"}},
        {"ph": "M", "name": "thread_name", "pid": 1, "tid": _TID_STALL,
         "args": {"name": "stalls"}},
        {"ph": "M", "name": "thread_name", "pid": 1, "tid": _TID_EVENTS,
         "args": {"name": "events"}},
        {"ph": "M", "name": "thread_name", "pid": 1, "tid": _TID_MEMORY,
         "args": {"name": "memory"}},
    ]
    for event in events:
        kind = event.kind
        if kind is EventKind.MODE:
            trace_events.append({
                "ph": "X", "cat": "mode", "name": event.mode,
                "pid": 1, "tid": _TID_MODE,
                "ts": event.cycle, "dur": event.cycles,
            })
        elif kind is EventKind.STALL_END:
            trace_events.append({
                "ph": "X", "cat": "stall",
                "name": event.category.value,
                "pid": 1, "tid": _TID_STALL,
                "ts": event.cycle - event.cycles, "dur": event.cycles,
                "args": {"pc": event.pc, "seq": event.seq},
            })
        elif kind is EventKind.RESTART:
            trace_events.append({
                "ph": "i", "cat": "multipass", "name": "restart",
                "pid": 1, "tid": _TID_EVENTS, "ts": event.cycle,
                "s": "t", "args": {"pc": event.pc, "seq": event.seq},
            })
        elif kind is EventKind.RS_HIT:
            trace_events.append({
                "ph": "i", "cat": "multipass", "name": "rs_hit",
                "pid": 1, "tid": _TID_EVENTS, "ts": event.cycle,
                "s": "t",
                "args": {"pc": event.pc, "seq": event.seq,
                         "mode": event.mode},
            })
        elif kind is EventKind.CACHE_MISS:
            trace_events.append({
                "ph": "i", "cat": "memory",
                "name": f"miss:{event.level}",
                "pid": 1, "tid": _TID_MEMORY, "ts": event.cycle,
                "s": "t", "args": {"pc": event.pc, "seq": event.seq},
            })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms",
            "otherData": {"model": model, "workload": workload,
                          "time_unit": "1 cycle = 1us"}}


#: Pipeview milestone characters, in increasing display precedence.
_CHAR_FETCH = "F"
_CHAR_ADVANCE = "A"      # advance-mode (pre)execution
_CHAR_EXECUTE = "E"      # architectural/rally execution
_CHAR_MERGE = "M"        # result-store merge
_CHAR_COMMIT = "C"
_PRECEDENCE = {_CHAR_FETCH: 0, _CHAR_ADVANCE: 1, _CHAR_EXECUTE: 2,
               _CHAR_MERGE: 3, _CHAR_COMMIT: 4}


class _Row:
    __slots__ = ("seq", "pc", "marks")

    def __init__(self, seq: int, pc: int):
        self.seq = seq
        self.pc = pc
        self.marks = {}

    def mark(self, cycle: int, char: str) -> None:
        current = self.marks.get(cycle)
        if current is None or _PRECEDENCE[char] > _PRECEDENCE[current]:
            self.marks[cycle] = char


def render_pipeview(events: Sequence[Event], trace: Trace,
                    max_cycles: int = 240,
                    max_rows: int = 200) -> str:
    """Render a Konata-style text pipeline diagram.

    One row per dynamic instruction (``seq``), one column per cycle.
    ``F`` fetch, ``A`` advance (pre)execution, ``E`` architectural or
    rally execution, ``M`` result-store merge, ``C`` commit; ``.``
    fills the in-flight window between the first and last milestone.
    The cycle window starts at the first milestone in ``events`` (so a
    ring-buffered suffix trace renders its own range, not emptiness)
    and is clipped to ``max_cycles`` columns and ``max_rows`` rows
    with an explicit truncation note, so the view stays terminal-sized.
    """
    rows: dict = {}

    def row(seq: int, pc: int) -> _Row:
        entry = rows.get(seq)
        if entry is None:
            entry = rows[seq] = _Row(seq, pc)
        return entry

    last_cycle = 0
    for event in events:
        kind = event.kind
        if event.cycle > last_cycle:
            last_cycle = event.cycle
        if kind is EventKind.FETCH:
            row(event.seq, event.pc).mark(event.cycle, _CHAR_FETCH)
        elif kind is EventKind.ISSUE:
            char = (_CHAR_ADVANCE if event.mode == "advance"
                    else _CHAR_EXECUTE)
            row(event.seq, event.pc).mark(event.cycle, char)
        elif kind is EventKind.RS_HIT:
            row(event.seq, event.pc).mark(event.cycle, _CHAR_MERGE)
        elif kind is EventKind.COMMIT:
            row(event.seq, event.pc).mark(event.cycle, _CHAR_COMMIT)

    base = min((min(r.marks) for r in rows.values() if r.marks),
               default=0)
    width = min(last_cycle + 1 - base, max_cycles)
    entries = trace.entries
    instructions = trace.program.instructions
    lines = [
        f"pipeview: {trace.program.name} — {len(rows)} instruction(s), "
        f"{last_cycle + 1} cycle(s)",
        "F=fetch A=advance E=execute M=merge C=commit",
        "",
    ]
    ruler = ["cycle".rjust(5) + " " * 36]
    tick_row = list(" " * width)
    for tick in range(0, width, 10):
        label = str(base + tick)
        for offset, char in enumerate(label):
            if tick + offset < width:
                tick_row[tick + offset] = char
    ruler[0] += "|" + "".join(tick_row)
    lines.extend(ruler)

    clipped_rows = 0
    for seq in sorted(rows):
        if len(lines) - 4 >= max_rows:
            clipped_rows += 1
            continue
        entry_row = rows[seq]
        if seq < len(entries):
            asm = instructions[entry_row.pc].render()
        else:  # pragma: no cover - defensive
            asm = "?"
        if len(asm) > 30:
            asm = asm[:27] + "..."
        cells = list(" " * width)
        marks = {c - base: ch for c, ch in entry_row.marks.items()
                 if c - base < width}
        if marks:
            first, last = min(marks), max(marks)
            for cycle in range(first, last):
                cells[cycle] = "."
            for cycle, char in marks.items():
                cells[cycle] = char
        label = f"{seq:>5} {asm:<35}"
        lines.append(label + "|" + "".join(cells).rstrip())

    notes = []
    if last_cycle + 1 - base > max_cycles:
        notes.append(f"clipped to cycles {base}..{base + max_cycles - 1} "
                     f"of {last_cycle + 1}")
    if clipped_rows:
        notes.append(f"omitted {clipped_rows} later row(s)")
    if notes:
        lines.append("")
        lines.append("note: " + "; ".join(notes))
    return "\n".join(lines) + "\n"


def write_chrome_trace(events: Sequence[Event], stream, model: str = "",
                       workload: str = "") -> None:
    """Serialize :func:`chrome_trace` output to a text stream."""
    import json

    json.dump(chrome_trace(events, model=model, workload=workload),
              stream, indent=1)
    stream.write("\n")


__all__ = ["chrome_trace", "render_pipeview", "write_chrome_trace"]
