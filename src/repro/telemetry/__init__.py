"""Telemetry subsystem: cycle-level tracing, metrics and profiling.

Layering (see docs/architecture.md §10):

* :mod:`~repro.telemetry.events` — the typed event taxonomy and the
  :class:`Tracer` facade cores emit through (``NULL_TRACER`` when
  tracing is off: one attribute check, zero other cost);
* :mod:`~repro.telemetry.sinks` — where events go (null, ring buffer,
  streaming JSONL, tee);
* :mod:`~repro.telemetry.metrics` — bounded aggregation: counters,
  histograms, adaptive interval timeseries, and the per-cell
  :class:`MetricsSink` summaries the sweep engine attaches;
* :mod:`~repro.telemetry.export` — Chrome trace-event (Perfetto) and
  Konata-style pipeline-view exporters;
* :mod:`~repro.telemetry.profile` — the stall-attribution profiler
  behind ``repro profile``.
"""

from .events import NULL_TRACER, Event, EventKind, NullTracer, Tracer
from .export import chrome_trace, render_pipeview, write_chrome_trace
from .metrics import (Histogram, IntervalSeries, MetricsRegistry,
                      MetricsSink)
from .profile import StallProfileSink, profile_model, render_profile
from .sinks import (JsonlSink, NullSink, RingBufferSink, TeeSink,
                    TelemetrySink)

__all__ = [
    "Event", "EventKind", "Histogram", "IntervalSeries", "JsonlSink",
    "MetricsRegistry", "MetricsSink", "NULL_TRACER", "NullSink",
    "NullTracer", "RingBufferSink", "StallProfileSink", "TeeSink",
    "TelemetrySink", "Tracer", "chrome_trace", "profile_model",
    "render_pipeview", "render_profile", "write_chrome_trace",
]
