"""Stall-attribution profiler: where do the cycles actually go?

Figure 6 answers that question in aggregate; this module answers it
per static instruction.  :class:`StallProfileSink` folds the traced
stall spans into ``(category, pc)`` cycle totals during the run (no
event storage), and :func:`render_profile` prints a flamegraph-style
text tree — workload → stall category → hottest static sites — with
the cross-model comparison the paper's story rests on: the in-order
baseline spends the plurality of its cycles stalled on loads, and
multipass converts much of that share into overlap.

Attribution matches the stats taxonomy exactly: every non-execution
cycle a core charges is attributed to the static instruction the core
blamed (for multipass advance-mode cycles, the *triggering* load), so
per-category profile totals reconcile with ``SimStats.cycle_breakdown``
to the cycle — a property the telemetry tests pin.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..isa.trace import Trace
from ..machine import MachineConfig
from ..pipeline.stats import SimStats, StallCategory
from .events import Event, EventKind, Tracer
from .sinks import TelemetrySink


class StallProfileSink(TelemetrySink):
    """Aggregate stall spans into per-(category, pc) cycle totals."""

    def __init__(self):
        super().__init__()
        #: (StallCategory, pc) -> stalled cycles.
        self.cells: Dict[Tuple[StallCategory, int], int] = {}
        self.restarts = 0
        self.cache_misses: Dict[str, int] = {}

    def emit(self, event: Event) -> None:
        kind = event.kind
        if kind is EventKind.STALL_END:
            key = (event.category, event.pc)
            self.cells[key] = self.cells.get(key, 0) + event.cycles
        elif kind is EventKind.RESTART:
            self.restarts += 1
        elif kind is EventKind.CACHE_MISS:
            self.cache_misses[event.level] = \
                self.cache_misses.get(event.level, 0) + 1

    def category_totals(self) -> Dict[StallCategory, int]:
        totals: Dict[StallCategory, int] = {}
        for (category, _pc), cycles in self.cells.items():
            totals[category] = totals.get(category, 0) + cycles
        return totals

    def hottest(self, category: StallCategory, top: int = 10
                ) -> List[Tuple[int, int]]:
        """Top ``(pc, cycles)`` sites for one category, hottest first."""
        sites = [(pc, cycles) for (cat, pc), cycles
                 in self.cells.items() if cat is category]
        sites.sort(key=lambda item: (-item[1], item[0]))
        return sites[:top]


def profile_model(model: str, trace: Trace,
                  config: Optional[MachineConfig] = None
                  ) -> Tuple[SimStats, StallProfileSink]:
    """Run ``model`` over ``trace`` with stall profiling attached."""
    from ..harness.experiment import run_model

    sink = StallProfileSink()
    stats = run_model(model, trace, config, tracer=Tracer(sink))
    return stats, sink


def _render_site(pc: int, cycles: int, category_total: int,
                 trace: Trace, connector: str) -> str:
    if 0 <= pc < len(trace.program.instructions):
        asm = trace.program.instructions[pc].render()
    else:
        asm = "(unattributed)"
    if len(asm) > 34:
        asm = asm[:31] + "..."
    share = cycles / category_total if category_total else 0.0
    return (f"    {connector} pc {pc:>4}  {asm:<34} "
            f"{cycles:>9} cycles  {share:6.1%}")


def render_profile(results: Sequence[Tuple[SimStats, StallProfileSink]],
                   trace: Trace, top: int = 10) -> str:
    """Flamegraph-style text tree: workload → category → static site."""
    workload = trace.program.name
    lines = [f"stall attribution — {workload} "
             f"({len(trace)} dynamic instructions), "
             f"top {top} site(s) per category", ""]
    for stats, sink in results:
        total = stats.cycles or 1
        lines.append(
            f"{stats.model}: {stats.cycles} cycles, IPC {stats.ipc:.2f}, "
            f"{stats.stall_cycles} stalled "
            f"({stats.stall_cycles / total:.1%})")
        totals = sink.category_totals()
        ordered = sorted(
            (c for c in StallCategory if c is not StallCategory.EXECUTION),
            key=lambda c: -totals.get(c, 0))
        for category in ordered:
            category_total = totals.get(category, 0)
            if not category_total:
                continue
            lines.append(f"  {category.value:<10} "
                         f"{category_total:>9} cycles  "
                         f"{category_total / total:6.1%} of all cycles")
            sites = sink.hottest(category, top)
            for i, (pc, cycles) in enumerate(sites):
                connector = "└─" if i == len(sites) - 1 else "├─"
                lines.append(_render_site(pc, cycles, category_total,
                                          trace, connector))
        if sink.restarts:
            lines.append(f"  advance restarts: {sink.restarts}")
        if sink.cache_misses:
            misses = ", ".join(f"{level} {count}" for level, count
                               in sorted(sink.cache_misses.items()))
            lines.append(f"  L1-missing accesses by serving level: "
                         f"{misses}")
        lines.append("")

    if len(results) > 1:
        lines.append("load-stall share of all cycles:")
        baseline_share = None
        for stats, _sink in results:
            share = (stats.load_stall_cycles / stats.cycles
                     if stats.cycles else 0.0)
            delta = ""
            if baseline_share is None:
                baseline_share = share
            else:
                delta = (f"  ({share - baseline_share:+.1%} vs "
                         f"{results[0][0].model})")
            lines.append(f"  {stats.model:>20}: {share:6.1%}{delta}")
    return "\n".join(lines).rstrip() + "\n"


__all__ = ["StallProfileSink", "profile_model", "render_profile"]
