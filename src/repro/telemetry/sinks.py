"""Telemetry sinks: where traced events go.

All sinks share a two-method contract — ``emit(event)`` during the run
and ``close()`` at :meth:`Tracer.finish` time — plus an ``enabled``
class attribute that instrumentation sites check before constructing
events.  Aggregating consumers (the metrics registry, the stall
profiler) implement the same contract, so anything that accepts a sink
composes with them.
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, List, Optional

from .events import Event


class TelemetrySink:
    """Base sink: keeps every event in an unbounded list."""

    enabled = True

    def __init__(self):
        self.events: List[Event] = []

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass


class NullSink(TelemetrySink):
    """Zero-overhead disabled sink: drops everything.

    A core with a :data:`~repro.telemetry.events.NULL_TRACER` never
    reaches a sink at all, but a ``NullSink`` additionally lets callers
    keep a live :class:`~repro.telemetry.events.Tracer` wired to
    nothing (e.g. to exercise instrumentation without storage).
    """

    enabled = False

    def __init__(self):
        super().__init__()

    def emit(self, event: Event) -> None:
        pass


class RingBufferSink(TelemetrySink):
    """In-memory sink bounded to the most recent ``capacity`` events.

    The ring keeps tracing affordable on long runs: memory is bounded,
    the oldest events are dropped first, and ``dropped`` records how
    many were discarded so exporters can say the trace is a suffix.
    ``capacity=None`` keeps everything.
    """

    def __init__(self, capacity: Optional[int] = None):
        super().__init__()
        self.capacity = capacity
        self.dropped = 0
        if capacity is not None:
            self._ring = deque(maxlen=capacity)
        else:
            self._ring = None

    def emit(self, event: Event) -> None:
        if self._ring is None:
            self.events.append(event)
            return
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(event)

    def close(self) -> None:
        if self._ring is not None:
            self.events = list(self._ring)


class JsonlSink(TelemetrySink):
    """Streaming sink: one JSON object per event, one event per line.

    Events are serialized as they arrive, so arbitrarily long traces
    stream to disk without residency.  ``limit`` stops writing (and
    counts ``suppressed``) after that many events — the simulation is
    unaffected, only the file is truncated.
    """

    def __init__(self, stream: IO[str], limit: Optional[int] = None):
        super().__init__()
        self.stream = stream
        self.limit = limit
        self.emitted = 0
        self.suppressed = 0

    def emit(self, event: Event) -> None:
        if self.limit is not None and self.emitted >= self.limit:
            self.suppressed += 1
            return
        self.stream.write(json.dumps(event.to_dict(), sort_keys=True))
        self.stream.write("\n")
        self.emitted += 1

    def close(self) -> None:
        self.stream.flush()


class TeeSink(TelemetrySink):
    """Fan one event stream out to several sinks (e.g. ring + metrics)."""

    def __init__(self, *sinks: TelemetrySink):
        super().__init__()
        self.sinks = sinks

    def emit(self, event: Event) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
