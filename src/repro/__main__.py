"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``simulate`` — run one workload through one or more timing models
  (``--check`` enables runtime invariant checking; ``--json`` emits a
  machine-readable report; ``--parallel`` / ``--results-cache`` route
  through the sharded experiment engine).
* ``sweep``    — run a (models x workloads) cell grid through the
  parallel engine with fault handling and the on-disk result cache
  (``--smoke`` is the fast end-to-end variant used by check.sh).
* ``trace``    — run one (workload, model) cell with cycle-level event
  tracing and export it as JSONL, a Chrome/Perfetto trace, or a
  Konata-style text pipeline view.
* ``profile``  — stall-attribution profile: which static instructions
  the stalled cycles are charged to, per category, across models.
* ``bench``    — wall-clock benchmark of the timing models over a fixed
  matrix; writes/compares JSON records (``--against`` + perf gate).
* ``serve``    — run the sweep service: a long-lived asyncio HTTP/JSON
  job server that shards submitted sweeps over a persistent worker
  fleet, dedupes identical in-flight cells across clients and serves
  repeats from a shared (optionally size-bounded LRU) result cache.
* ``submit``   — send a sweep spec to a running service and follow its
  JSONL event stream; results are bit-identical to ``repro sweep``.
* ``cache``    — inspect (``stats``, ``--json`` for machines) or empty
  (``clear``) a result cache directory.
* ``compare``  — race all primary models on one workload.
* ``workloads`` — list the packaged SPEC-like kernels.
* ``models``    — list the available timing models.
* ``figures``   — regenerate a paper figure/table by name.
* ``lint``      — run the static program verifier over workloads
  (``--json`` for machine-readable output; exit code 1 only for
  errors, or for warnings too under ``--strict``).
* ``audit``     — assert the static cycle lower bound against the
  simulated cycles of every model x workload cell (``--smoke`` for the
  fast check.sh variant, ``--slack`` for per-instruction slack/
  ineffectuality profiles).
* ``diffcheck`` — differentially execute all simulators and assert
  identical final architectural state (and per-model cycle-bound
  soundness).

``--parallel`` defaults to ``$REPRO_JOBS`` (``auto`` = one worker per
CPU) and ``--results-cache`` to ``$REPRO_RESULTS_CACHE``; both default
off so serial behaviour is unchanged.
"""

from __future__ import annotations

import argparse
import sys

from .harness import (ABLATION_FACTORIES, MODEL_FACTORIES, TraceCache,
                      figure6, figure7, figure8, realistic_ooo_comparison,
                      run_model, runahead_comparison, table1)
from .workloads import ALL_WORKLOADS, registry

_FIGURES = {
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "table1": table1,
    "runahead": runahead_comparison,
    "realistic-ooo": realistic_ooo_comparison,
}


def _cmd_workloads(_args) -> int:
    for name, spec in sorted(registry().items()):
        print(f"{name:>8}  [{spec.suite}]  {spec.description}")
    return 0


def _cmd_models(_args) -> int:
    print("primary models:")
    for name in MODEL_FACTORIES:
        print(f"  {name}")
    print("ablations / extensions:")
    for name in ABLATION_FACTORIES:
        print(f"  {name}")
    return 0


def _cmd_simulate(args) -> int:
    if (args.parallel or args.results_cache) and not args.check \
            and not args.slow:
        from .harness import run_matrix
        matrix = run_matrix(args.models, (args.workload,),
                            scale=args.scale, parallel=args.parallel,
                            results_cache=args.results_cache)
        results = [matrix.get(args.workload, m) for m in args.models]
        if args.json:
            _print_simulate_json(args, results)
            return 0
        print(f"{args.workload} (scale {args.scale})\n")
        for stats in results:
            print(stats.summary())
            print()
        return 0
    cache = TraceCache(args.scale)
    trace = cache.trace(args.workload)
    results = [run_model(model, trace, check=args.check, slow=args.slow)
               for model in args.models]
    if args.json:
        _print_simulate_json(args, results,
                             instructions=len(trace))
        return 0
    print(f"{args.workload}: {len(trace)} dynamic instructions "
          f"(scale {args.scale})\n")
    for stats in results:
        print(stats.summary())
        print()
    if args.check:
        print("runtime invariant checks passed for all models")
    return 0


def _print_simulate_json(args, results, instructions=None) -> None:
    import json

    doc = {
        "workload": args.workload,
        "scale": args.scale,
        "results": [stats.to_dict() for stats in results],
    }
    if instructions is not None:
        doc["dynamic_instructions"] = instructions
    print(json.dumps(doc, indent=2, sort_keys=True))


def _render_cell_grid(report, models, scale) -> str:
    """The cycles-per-cell table shared by ``sweep`` and ``submit``.

    Failed cells show the exception class in place of a cycle count.
    """
    matrix = report.matrix
    failed = {(f.workload, f.model):
              (f.error or "FAILED").split(":", 1)[0]
              for f in report.failures}
    lines = [f"cycles per (workload, model) cell at scale {scale}",
             f"{'workload':>9}" + "".join(f" {m:>14}" for m in models)]
    rows = sorted({w for w, _ in matrix.results} | {w for w, _ in failed})
    for workload in rows:
        cells = ""
        for m in models:
            if (workload, m) in matrix.results:
                cells += f" {matrix.get(workload, m).cycles:>14}"
            else:
                label = failed.get((workload, m), "FAILED")[:14]
                cells += f" {label:>14}"
        lines.append(f"{workload:>9}{cells}")
    return "\n".join(lines)


def _cmd_sweep(args) -> int:
    from .harness.parallel import sweep

    models = args.models
    workloads = args.workloads
    scale = args.scale
    jobs = args.parallel
    if args.smoke:
        # Fast end-to-end exercise of the parallel path for check.sh.
        models = models or ["inorder", "multipass"]
        workloads = workloads or ["vpr", "parser"]
        scale = scale if scale is not None else 0.05
        jobs = jobs if jobs is not None else 2
    models = models or sorted({**MODEL_FACTORIES, **ABLATION_FACTORIES}
                              if args.ablations else MODEL_FACTORIES)
    workloads = workloads or list(ALL_WORKLOADS)
    scale = scale if scale is not None else 1.0

    report = sweep(models, workloads, scale=scale, jobs=jobs,
                   results_cache=args.results_cache,
                   timeout=args.timeout, telemetry=args.telemetry,
                   audit=args.audit)
    print(_render_cell_grid(report, models, scale))
    print()
    print(report.summary())
    if args.telemetry and report.telemetry:
        print(f"\ntelemetry summaries collected for "
              f"{len(report.telemetry)} cell(s):")
        for (workload, model), summary in sorted(report.telemetry.items()):
            counters = summary.get("counters", {})
            stalls = {k.split(".", 1)[1]: v for k, v in counters.items()
                      if k.startswith("stall_cycles.")}
            worst = max(stalls, key=stalls.get) if stalls else "-"
            print(f"  {workload}/{model}: last cycle "
                  f"{summary.get('last_cycle', 0)}, "
                  f"dominant stall {worst}")
    return 0 if report.ok else 1


def _cmd_bench(args) -> int:
    from .harness.bench import (BENCH_MODELS, SMOKE_WORKLOADS,
                                compare_bench, compare_speedups,
                                load_record, profile_bench, render_bench,
                                render_profile, run_bench, write_record)

    workloads = args.workloads
    if workloads is None:
        workloads = (list(SMOKE_WORKLOADS) if not args.full
                     else list(ALL_WORKLOADS))
    models = args.models or list(BENCH_MODELS)
    if args.profile:
        cells = profile_bench(models, workloads, scale=args.scale,
                              top=args.top)
        print(render_profile(cells))
        return 0
    record = run_bench(models, workloads, scale=args.scale,
                       repeats=args.repeats, slow=args.slow)
    baseline = load_record(args.against) if args.against else None
    print(render_bench(record, baseline))
    if args.out:
        write_record(record, args.out)
        print(f"\nbench: record written to {args.out}")
    status = 0
    if baseline is not None:
        findings = compare_bench(record, baseline,
                                 max_regression=args.max_regression)
        if findings:
            print("\nbench: REGRESSION against "
                  f"{args.against}:", file=sys.stderr)
            for finding in findings:
                print(f"  {finding}", file=sys.stderr)
            status = 1
        else:
            print(f"\nbench: within {args.max_regression:.0%} of "
                  f"baseline {args.against}")
    if args.compare:
        reference = load_record(args.compare)
        lines, regressions = compare_speedups(
            record, reference, max_regression=args.max_regression)
        print(f"\nbench: per-model speedup vs {args.compare}")
        for line in lines:
            print(f"  {line}")
        if regressions:
            print(f"\nbench: THROUGHPUT REGRESSION vs "
                  f"{args.compare}:", file=sys.stderr)
            for finding in regressions:
                print(f"  {finding}", file=sys.stderr)
            status = 1
    return status


def _cmd_cache(args) -> int:
    from .harness.results_cache import resolve_results_cache

    store = resolve_results_cache(args.results_cache)
    if store is None:
        print("repro cache: no cache directory; pass --results-cache DIR "
              "or set REPRO_RESULTS_CACHE", file=sys.stderr)
        return 2
    if args.action == "stats":
        if args.json:
            import json

            print(json.dumps(store.describe_dict(), indent=2,
                             sort_keys=True))
        else:
            print(store.describe())
    else:
        removed = store.clear()
        print(f"removed {removed} cached result(s) from {store.root}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .service import DEFAULT_PORT, SweepService, serve_async

    port = DEFAULT_PORT if args.port is None else args.port
    service = SweepService(jobs=args.parallel,
                           results_cache=args.results_cache,
                           cache_max_bytes=args.cache_max_bytes,
                           timeout=args.timeout)
    try:
        asyncio.run(serve_async(service, args.host, port,
                                port_file=args.port_file))
    except KeyboardInterrupt:
        pass
    return 0


def _build_submit_spec(args):
    from .service.spec import JobSpec

    if args.spec:
        import json

        with open(args.spec) as handle:
            return JobSpec.from_dict(json.load(handle))
    models = args.models
    workloads = args.workloads
    scale = args.scale
    if args.smoke:
        # Same grid as `repro sweep --smoke`, so their caches interop.
        models = models or ["inorder", "multipass"]
        workloads = workloads or ["vpr", "parser"]
        scale = scale if scale is not None else 0.05
    models = models or sorted(MODEL_FACTORIES)
    workloads = workloads or list(ALL_WORKLOADS)
    scale = scale if scale is not None else 1.0
    return JobSpec(workloads=tuple(workloads), models=tuple(models),
                   scale=scale, timeout=args.timeout)


def _format_event(event) -> str:
    kind = event.get("kind")
    if kind == "job":
        return (f"job {event.get('id')}: {event.get('cells')} cell(s) "
                f"on {event.get('workers')} worker(s) "
                f"[key {str(event.get('key', ''))[:12]}]")
    if kind == "cell":
        source = "dedup" if event.get("dedup") else event.get("source")
        detail = (f"{event.get('duration', 0.0):.2f}s"
                  if event.get("status") == "ok"
                  else str(event.get("error")))
        return (f"  {event.get('workload')}/{event.get('model')}: "
                f"{event.get('status')} via {source} ({detail})")
    if kind == "done":
        return (f"job {event.get('id')}: done in "
                f"{event.get('elapsed', 0.0):.1f}s")
    return str(event)


def _cmd_submit(args) -> int:
    import json

    from .service import DEFAULT_PORT, ServiceClient, ServiceError
    from .service.spec import SpecError

    try:
        spec = _build_submit_spec(args)
    except (OSError, ValueError) as err:  # SpecError is a ValueError
        print(f"repro submit: bad spec: {err}", file=sys.stderr)
        return 2

    port = DEFAULT_PORT if args.port is None else args.port
    client = ServiceClient(args.host, port)
    events = []

    def on_event(event):
        if args.json:
            events.append(event)
        elif args.follow:
            print(_format_event(event), flush=True)

    try:
        report = client.run(spec, on_event=on_event)
    except (ServiceError, SpecError) as err:
        print(f"repro submit: {err}", file=sys.stderr)
        return 1

    if args.json:
        doc = {
            "job": report.job_id,
            "key": report.job_key,
            "events": events,
            "report": {
                "cells": report.cells,
                "simulated": report.simulated,
                "cache_hits": report.cache_hits,
                "deduped": report.deduped,
                "failures": len(report.failures),
                "elapsed": report.elapsed,
            },
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        if args.follow:
            print()
        print(_render_cell_grid(report, list(spec.models), spec.scale))
        print()
        print(report.summary())
    return 1 if report.failures else 0


def _cmd_lint(args) -> int:
    from .analysis import diagnostics as dc
    from .analysis.verifier import verify_compiled, verify_program
    from .compiler import CompileOptions, compile_program
    from .workloads import build_workload

    workloads = args.workloads or list(ALL_WORKLOADS)
    unknown = [w for w in workloads if w not in ALL_WORKLOADS]
    if unknown:
        print(f"repro lint: unknown workload(s) {unknown}; "
              f"available: {sorted(ALL_WORKLOADS)}", file=sys.stderr)
        return 2
    n_errors = n_warnings = 0
    doc = {"scale": args.scale, "workloads": {}}
    for name in workloads:
        program = build_workload(name, args.scale, verify=False)
        diags = list(verify_program(program))
        compiled = compile_program(program, CompileOptions())
        diags += [d for d in verify_compiled(compiled)]
        n_errors += len(dc.errors(diags))
        n_warnings += len(dc.warnings(diags))
        if args.json:
            doc["workloads"][name] = {
                "source_instructions": len(program),
                "compiled_instructions": len(compiled),
                "diagnostics": [d.to_dict() for d in diags],
            }
            continue
        for diag in diags:
            print(diag.render(name))
        status = "ok" if not diags else f"{len(diags)} finding(s)"
        print(f"{name:>8}: {len(program)} source / {len(compiled)} "
              f"compiled instructions — {status}")
    if args.json:
        import json

        doc["errors"] = n_errors
        doc["warnings"] = n_warnings
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(f"\nlint: {n_errors} error(s), {n_warnings} warning(s) "
              f"across {len(workloads)} workload(s)")
    if n_errors:
        return 1
    return 1 if (n_warnings and args.strict) else 0


def _cmd_audit(args) -> int:
    from .analysis.audit import audit_matrix

    models = args.models
    workloads = args.workloads
    scale = args.scale
    if args.smoke:
        # Fast end-to-end exercise of the oracle for check.sh.
        models = models or ["inorder", "multipass"]
        workloads = workloads or ["vpr", "parser"]
        scale = scale if scale is not None else 0.05
    models = models or sorted(MODEL_FACTORIES)
    workloads = workloads or list(ALL_WORKLOADS)
    scale = scale if scale is not None else 0.1
    unknown = [w for w in workloads if w not in ALL_WORKLOADS]
    if unknown:
        print(f"repro audit: unknown workload(s) {unknown}; "
              f"available: {sorted(ALL_WORKLOADS)}", file=sys.stderr)
        return 2

    report = audit_matrix(models, workloads, scale=scale,
                          parallel=args.parallel,
                          results_cache=args.results_cache,
                          slack_workloads=args.slack or ())
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    if report.violations:
        return 1
    return 1 if (report.unverified and args.strict) else 0


def _cmd_diffcheck(args) -> int:
    from .analysis.equivalence import DEFAULT_MODELS, check_workload

    workloads = args.workloads or list(ALL_WORKLOADS)
    unknown = [w for w in workloads if w not in ALL_WORKLOADS]
    if unknown:
        print(f"repro diffcheck: unknown workload(s) {unknown}; "
              f"available: {sorted(ALL_WORKLOADS)}", file=sys.stderr)
        return 2
    models = args.models or list(DEFAULT_MODELS)
    failures = 0
    for name in workloads:
        report = check_workload(name, models=models, scale=args.scale)
        print(report.render())
        if not report.ok:
            failures += 1
    print(f"\ndiffcheck: {len(workloads) - failures}/{len(workloads)} "
          f"workload(s) equivalent across {len(models) + 2} executions "
          f"each")
    return 1 if failures else 0


def _cmd_trace(args) -> int:
    from .telemetry import (JsonlSink, RingBufferSink, TelemetrySink,
                            Tracer, render_pipeview, write_chrome_trace)

    cache = TraceCache(args.scale)
    trace = cache.trace(args.workload)
    out = open(args.out, "w") if args.out else sys.stdout
    try:
        if args.format == "jsonl":
            sink = JsonlSink(out, limit=args.max_events)
            run_model(args.model, trace, tracer=Tracer(sink))
            sink.close()
            if sink.suppressed:
                print(f"trace: wrote {sink.emitted} event(s); "
                      f"{sink.suppressed} over --max-events suppressed",
                      file=sys.stderr)
        else:
            sink = (RingBufferSink(args.max_events)
                    if args.max_events else TelemetrySink())
            run_model(args.model, trace, tracer=Tracer(sink))
            sink.close()
            if getattr(sink, "dropped", 0):
                print(f"trace: ring buffer kept the last "
                      f"{len(sink.events)} event(s), dropped "
                      f"{sink.dropped} older", file=sys.stderr)
            if args.format == "chrome":
                write_chrome_trace(sink.events, out, model=args.model,
                                   workload=args.workload)
            else:
                out.write(render_pipeview(sink.events, trace))
    finally:
        if out is not sys.stdout:
            out.close()
            print(f"trace: {args.format} written to {args.out}",
                  file=sys.stderr)
    return 0


def _cmd_profile(args) -> int:
    from .telemetry import profile_model, render_profile

    models = args.models
    if args.all_models:
        models = list(MODEL_FACTORIES)
    models = models or ["inorder", "multipass"]
    cache = TraceCache(args.scale)
    trace = cache.trace(args.workload)
    results = [profile_model(model, trace) for model in models]
    print(render_profile(results, trace, top=args.top), end="")
    return 0


def _cmd_compare(args) -> int:
    cache = TraceCache(args.scale)
    trace = cache.trace(args.workload)
    base = run_model("inorder", trace)
    print(f"{args.workload}: {len(trace)} dynamic instructions\n")
    print(f"{'model':>20} {'cycles':>10} {'IPC':>6} {'speedup':>8}")
    models = ["inorder", "multipass", "runahead", "twopass",
              "ooo", "ooo-realistic"]
    for model in models:
        stats = base if model == "inorder" else run_model(model, trace)
        print(f"{model:>20} {stats.cycles:>10} {stats.ipc:>6.2f} "
              f"{base.cycles / stats.cycles:>7.2f}x")
    return 0


def _cmd_figures(args) -> int:
    driver = _FIGURES[args.name]
    result = driver(scale=args.scale, parallel=args.parallel,
                    results_cache=args.results_cache)
    print(result.text)
    return 0


def _add_engine_flags(parser) -> None:
    parser.add_argument("--parallel", metavar="N", default=None,
                        help="worker processes ('auto' = one per CPU; "
                             "default: $REPRO_JOBS, else serial)")
    parser.add_argument("--results-cache", metavar="DIR", default=None,
                        help="persistent result cache directory "
                             "(default: $REPRO_RESULTS_CACHE, else off)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads").set_defaults(fn=_cmd_workloads)
    sub.add_parser("models").set_defaults(fn=_cmd_models)

    sim = sub.add_parser("simulate")
    sim.add_argument("workload", choices=ALL_WORKLOADS)
    sim.add_argument("--models", nargs="+", default=["multipass"],
                     choices=sorted({**MODEL_FACTORIES,
                                     **ABLATION_FACTORIES}))
    sim.add_argument("--scale", type=float, default=0.25)
    sim.add_argument("--check", action="store_true",
                     help="enable runtime invariant checking")
    sim.add_argument("--slow", action="store_true",
                     help="run the cycle-by-cycle reference loop (no "
                          "stall fast-forwarding); stats are identical "
                          "to the default fast path")
    sim.add_argument("--json", action="store_true",
                     help="emit a machine-readable JSON report instead "
                          "of the text summary")
    _add_engine_flags(sim)
    sim.set_defaults(fn=_cmd_simulate)

    trc = sub.add_parser("trace")
    trc.add_argument("workload", choices=ALL_WORKLOADS)
    trc.add_argument("--model", default="multipass",
                     choices=sorted({**MODEL_FACTORIES,
                                     **ABLATION_FACTORIES}))
    trc.add_argument("--scale", type=float, default=0.05)
    trc.add_argument("--format", default="jsonl",
                     choices=("jsonl", "chrome", "pipeview"),
                     help="jsonl: one event per line; chrome: "
                          "Perfetto/chrome://tracing JSON; pipeview: "
                          "Konata-style text pipeline diagram")
    trc.add_argument("--out", metavar="FILE", default=None,
                     help="output file (default: stdout)")
    trc.add_argument("--max-events", type=int, default=None,
                     help="bound the exported event count (jsonl keeps "
                          "the first N, chrome/pipeview the last N)")
    trc.set_defaults(fn=_cmd_trace)

    prof = sub.add_parser("profile")
    prof.add_argument("workload", choices=ALL_WORKLOADS)
    prof.add_argument("--models", nargs="+",
                      choices=sorted({**MODEL_FACTORIES,
                                      **ABLATION_FACTORIES}),
                      help="models to profile (default: inorder "
                           "multipass)")
    prof.add_argument("--all-models", action="store_true",
                      help="profile every primary model")
    prof.add_argument("--top", type=int, default=10,
                      help="static sites listed per stall category")
    prof.add_argument("--scale", type=float, default=0.25)
    prof.set_defaults(fn=_cmd_profile)

    swp = sub.add_parser("sweep")
    swp.add_argument("--models", nargs="+",
                     choices=sorted({**MODEL_FACTORIES,
                                     **ABLATION_FACTORIES}))
    swp.add_argument("--workloads", nargs="+", choices=ALL_WORKLOADS)
    swp.add_argument("--ablations", action="store_true",
                     help="default the model list to primaries + "
                          "ablations")
    swp.add_argument("--scale", type=float, default=None)
    swp.add_argument("--timeout", type=float, default=None,
                     help="per-cell timeout in seconds")
    swp.add_argument("--smoke", action="store_true",
                     help="fast two-workload, two-model sweep at scale "
                          "0.05 with 2 workers (check.sh target)")
    swp.add_argument("--telemetry", action="store_true",
                     help="collect aggregated telemetry per simulated "
                          "cell (skips result-cache reads)")
    swp.add_argument("--audit", action="store_true",
                     help="post-check every cell against the static "
                          "cycle lower bound; violations become "
                          "AuditViolation failure rows (skips "
                          "result-cache reads)")
    _add_engine_flags(swp)
    swp.set_defaults(fn=_cmd_sweep)

    bench = sub.add_parser("bench")
    bench.add_argument("--models", nargs="+",
                       choices=sorted({**MODEL_FACTORIES,
                                       **ABLATION_FACTORIES}),
                       help="models to time (default: the five primary "
                            "models)")
    bench.add_argument("--workloads", nargs="+", choices=ALL_WORKLOADS,
                       help="workloads to time (default: the fixed "
                            "3-workload smoke matrix)")
    bench.add_argument("--full", action="store_true",
                       help="time the full 12-workload matrix")
    bench.add_argument("--smoke", action="store_true",
                       help="fixed 3-workload matrix (the default; "
                            "spelled out for check.sh)")
    bench.add_argument("--scale", type=float, default=0.1)
    bench.add_argument("--repeats", type=int, default=3,
                       help="timing passes per model; the best is kept")
    bench.add_argument("--slow", action="store_true",
                       help="benchmark the cycle-by-cycle reference "
                            "loop instead of the fast path")
    bench.add_argument("--out", metavar="FILE", default=None,
                       help="write the JSON benchmark record here")
    bench.add_argument("--against", metavar="FILE", default=None,
                       help="compare against a recorded baseline and "
                            "fail on regression")
    bench.add_argument("--compare", metavar="FILE", default=None,
                       help="print per-model cycles/second speedup "
                            "ratios vs a recorded baseline (may use a "
                            "different workload matrix) and fail if any "
                            "model's throughput regresses beyond "
                            "--max-regression")
    bench.add_argument("--max-regression", type=float, default=0.25,
                       help="allowed fractional wall-clock regression "
                            "vs --against (default 0.25)")
    bench.add_argument("--profile", action="store_true",
                       help="cProfile each (model, workload) cell and "
                            "print its hotspot table instead of timing "
                            "(profiled seconds are not comparable with "
                            "bench records)")
    bench.add_argument("--top", type=int, default=10,
                       help="hotspot rows per cell with --profile "
                            "(default 10)")
    bench.set_defaults(fn=_cmd_bench)

    serve = sub.add_parser("serve")
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default: loopback)")
    serve.add_argument("--port", type=int, default=None,
                       help="port to bind (0 = pick a free one; "
                            "default: 8734)")
    serve.add_argument("--port-file", metavar="FILE", default=None,
                       help="write the bound port here once listening "
                            "(rendezvous for --port 0)")
    serve.add_argument("--timeout", type=float, default=None,
                       help="default per-cell wall-clock budget in "
                            "seconds (specs may override)")
    serve.add_argument("--cache-max-bytes", metavar="SIZE", default=None,
                       help="LRU size bound for the result cache, e.g. "
                            "512M or 2GiB (default: unbounded)")
    _add_engine_flags(serve)
    serve.set_defaults(fn=_cmd_serve)

    submit = sub.add_parser("submit")
    submit.add_argument("--spec", metavar="FILE", default=None,
                        help="JSON job spec file (overrides the grid "
                             "flags below)")
    submit.add_argument("--models", nargs="+",
                        choices=sorted({**MODEL_FACTORIES,
                                        **ABLATION_FACTORIES}))
    submit.add_argument("--workloads", nargs="+", choices=ALL_WORKLOADS)
    submit.add_argument("--scale", type=float, default=None)
    submit.add_argument("--timeout", type=float, default=None,
                        help="per-cell wall-clock budget in seconds")
    submit.add_argument("--smoke", action="store_true",
                        help="the check.sh smoke grid: inorder+multipass "
                             "on vpr+parser at scale 0.05")
    submit.add_argument("--host", default="127.0.0.1",
                        help="service host (default: loopback)")
    submit.add_argument("--port", type=int, default=None,
                        help="service port (default: 8734)")
    submit.add_argument("--follow", action="store_true",
                        help="print each event as the job streams")
    submit.add_argument("--json", action="store_true",
                        help="emit the full event stream and report "
                             "as JSON")
    submit.set_defaults(fn=_cmd_submit)

    cache_parser = sub.add_parser("cache")
    cache_parser.add_argument("action", choices=("stats", "clear"))
    cache_parser.add_argument("--json", action="store_true",
                              help="machine-readable stats (implies "
                                   "'stats')")
    cache_parser.add_argument("--results-cache", metavar="DIR",
                              default=None,
                              help="cache directory (default: "
                                   "$REPRO_RESULTS_CACHE)")
    cache_parser.set_defaults(fn=_cmd_cache)

    lint = sub.add_parser("lint")
    lint.add_argument("workloads", nargs="*", metavar="workload",
                      help="workloads to lint (default: all)")
    lint.add_argument("--scale", type=float, default=0.05)
    lint.add_argument("--json", action="store_true",
                      help="emit machine-readable JSON diagnostics")
    lint.add_argument("--strict", action="store_true",
                      help="exit nonzero on warnings too, not just "
                           "errors")
    lint.set_defaults(fn=_cmd_lint)

    audit = sub.add_parser("audit")
    audit.add_argument("workloads", nargs="*", metavar="workload",
                       help="workloads to audit (default: all)")
    audit.add_argument("--models", nargs="+",
                       choices=sorted({**MODEL_FACTORIES,
                                       **ABLATION_FACTORIES}),
                       help="models to audit (default: the five "
                            "primary models)")
    audit.add_argument("--scale", type=float, default=None,
                       help="workload scale (default 0.1)")
    audit.add_argument("--smoke", action="store_true",
                       help="fast two-workload, two-model audit at "
                            "scale 0.05 (check.sh target)")
    audit.add_argument("--slack", nargs="+", metavar="WORKLOAD",
                       choices=ALL_WORKLOADS,
                       help="also print the per-instruction slack/"
                            "ineffectuality profile of these workloads")
    audit.add_argument("--json", action="store_true",
                       help="emit a machine-readable JSON report")
    audit.add_argument("--strict", action="store_true",
                       help="exit nonzero when cells could not be "
                            "verified (simulation failures), not just "
                            "on bound violations")
    _add_engine_flags(audit)
    audit.set_defaults(fn=_cmd_audit)

    diff = sub.add_parser("diffcheck")
    diff.add_argument("workloads", nargs="*", metavar="workload",
                      help="workloads to check (default: all)")
    diff.add_argument("--models", nargs="+",
                      choices=sorted({**MODEL_FACTORIES,
                                      **ABLATION_FACTORIES}))
    diff.add_argument("--scale", type=float, default=0.05)
    diff.set_defaults(fn=_cmd_diffcheck)

    cmp_parser = sub.add_parser("compare")
    cmp_parser.add_argument("workload", choices=ALL_WORKLOADS)
    cmp_parser.add_argument("--scale", type=float, default=0.25)
    cmp_parser.set_defaults(fn=_cmd_compare)

    figures = sub.add_parser("figures")
    figures.add_argument("name", choices=sorted(_FIGURES))
    figures.add_argument("--scale", type=float, default=1.0)
    _add_engine_flags(figures)
    figures.set_defaults(fn=_cmd_figures)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
