"""Decoded-trace cache: precomputed per-entry hot fields.

The timing cores replay the same :class:`~repro.isa.trace.Trace` tens of
thousands of cycles at a time, and the fields they consult every cycle —
functional-unit class, source/destination register tuples, latency, the
``is_load``/``is_store``/``is_restart`` flags — all live behind Python
property calls and an ``OP_SPECS`` dictionary lookup
(``entry.inst.spec``).  :class:`DecodedTrace` flattens those fields once
per trace into parallel lists indexed by dynamic sequence number, so the
simulation inner loops become plain list indexing.

The decode is built lazily on first use (``trace.decoded``) and cached on
the :class:`~repro.isa.trace.Trace` instance.  Because the experiment
harness shares one ``Trace`` object per workload across all timing models
(see :class:`~repro.harness.experiment.TraceCache`), a five-model sweep
decodes each workload exactly once, and process-pool workers — which keep
a per-process trace cache — rebuild it once per worker, not per cell.

Everything here is *derived* read-only data: a ``DecodedTrace`` never
changes simulation semantics, it only removes interpretation overhead.
The invariant ``decoded field == per-entry property`` is pinned by
``tests/isa/test_decoded.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Tuple

from .opcodes import OP_SPECS, FUClass, Opcode, OpSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .trace import Trace


class DecodedTrace:
    """Flat parallel lists of per-entry hot fields, indexed by ``seq``.

    Attributes (all lists of length ``n``, shared read-only):
        fu: static :class:`FUClass` of the instruction.
        issue_fu: FU class the entry *occupies* at issue —
            :data:`FUClass.NONE` when predicate-nullified (mirrors
            :meth:`~repro.pipeline.base.BaseCore.issue_fu`).
        srcs / dests: the dynamic register id tuples of the entry.
        static_dests: the instruction's static destination tuple (used
            by the non-ideal OOO rename path for predicated writes).
        latency: fixed execution latency (loads get theirs from the
            caches at issue time).
        pc: static instruction index in the program.
        stop: EPIC stop bit (issue-group boundary).
        executed / is_load / is_store / is_branch / is_restart:
            the per-entry flags, with the same nullification semantics
            as the ``TraceEntry`` properties.
        mem_exec: ``executed and (is_load or is_store)`` — the guard
            for performing a timed cache access.
        is_predicated: instruction is guarded by a real predicate.
        addr / value / taken: dynamic effective address, value and
            branch outcome (same objects as the entries').
    """

    __slots__ = ("n", "fu", "issue_fu", "srcs", "dests", "static_dests",
                 "latency", "pc", "stop", "executed", "is_load", "is_store",
                 "is_branch", "is_restart", "mem_exec", "is_predicated",
                 "addr", "value", "taken", "_columns")

    def __init__(self, trace: "Trace"):
        entries = trace.entries
        n = len(entries)
        self.n = n
        self.fu = [FUClass.NONE] * n
        self.issue_fu = [FUClass.NONE] * n
        self.srcs: list = [()] * n
        self.dests: list = [()] * n
        self.static_dests: list = [()] * n
        self.latency = [1] * n
        self.pc = [0] * n
        self.stop = [False] * n
        self.executed = [True] * n
        self.is_load = [False] * n
        self.is_store = [False] * n
        self.is_branch = [False] * n
        self.is_restart = [False] * n
        self.mem_exec = [False] * n
        self.is_predicated = [False] * n
        self.addr = [None] * n
        self.value = [None] * n
        self.taken = [False] * n
        # Columnar-kernel column cache (repro.isa.columns), built lazily.
        self._columns = None

        # One spec lookup per opcode, not per entry.
        specs: Dict[Opcode, Tuple[OpSpec, bool]] = {}
        none_fu = FUClass.NONE
        restart = Opcode.RESTART
        for seq, entry in enumerate(entries):
            inst = entry.inst
            opcode = inst.opcode
            cached = specs.get(opcode)
            if cached is None:
                spec = OP_SPECS[opcode]
                cached = (spec, spec.is_load or spec.is_store)
                specs[opcode] = cached
            spec, is_mem = cached
            executed = entry.executed
            self.fu[seq] = spec.fu
            self.issue_fu[seq] = spec.fu if executed else none_fu
            self.srcs[seq] = entry.srcs
            self.dests[seq] = entry.dests
            self.static_dests[seq] = inst.dests
            self.latency[seq] = spec.latency
            self.pc[seq] = inst.index
            self.stop[seq] = inst.stop
            self.executed[seq] = executed
            self.is_load[seq] = executed and spec.is_load
            self.is_store[seq] = executed and spec.is_store
            self.is_branch[seq] = spec.is_branch
            self.is_restart[seq] = opcode is restart
            self.mem_exec[seq] = executed and is_mem
            self.is_predicated[seq] = inst.is_predicated
            self.addr[seq] = entry.addr
            self.value[seq] = entry.value
            self.taken[seq] = entry.taken

    def __len__(self) -> int:
        return self.n


def decode(trace: "Trace") -> DecodedTrace:
    """Return (building on first use) the decoded cache for ``trace``."""
    return trace.decoded
