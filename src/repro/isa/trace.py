"""Dynamic-trace representation consumed by all timing models.

The reproduction is *trace driven*: the functional simulator executes a
program once (the golden run) and records one :class:`TraceEntry` per
retired instruction.  Timing models (in-order, multipass, runahead,
out-of-order) replay the entries, which carry everything timing needs —
register dependences, effective memory addresses and values, and branch
outcomes.  Replaying the architected path is the standard trace-driven
approximation; wrong-path effects of advance execution are modelled by the
cores themselves (see :mod:`repro.multipass.core`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .instruction import Instruction
from .opcodes import FUClass, Opcode
from .program import Program


class TraceEntry:
    """One dynamically retired instruction.

    Attributes:
        inst: the static instruction.
        seq: dynamic sequence number (position in the trace).
        dests: registers actually written (empty when predicated off).
        srcs: registers actually read, including the qualifying predicate.
        addr: effective byte address for executed memory operations.
        value: value loaded (loads) or stored (stores).
        taken: branch outcome (branches only).
        executed: False when the qualifying predicate nullified the
            instruction; nullified instructions occupy issue slots but have
            no dataflow effects beyond reading their predicate.
    """

    __slots__ = ("inst", "seq", "dests", "srcs", "addr", "value", "taken",
                 "executed")

    def __init__(self, inst: Instruction, seq: int,
                 dests: Tuple[int, ...], srcs: Tuple[int, ...],
                 addr: Optional[int] = None, value: object = None,
                 taken: bool = False, executed: bool = True):
        self.inst = inst
        self.seq = seq
        self.dests = dests
        self.srcs = srcs
        self.addr = addr
        self.value = value
        self.taken = taken
        self.executed = executed

    @property
    def is_load(self) -> bool:
        return self.executed and self.inst.spec.is_load

    @property
    def is_store(self) -> bool:
        return self.executed and self.inst.spec.is_store

    @property
    def is_branch(self) -> bool:
        return self.inst.spec.is_branch

    @property
    def is_restart(self) -> bool:
        return self.inst.opcode is Opcode.RESTART

    @property
    def latency(self) -> int:
        """Fixed execution latency; loads get theirs from the caches."""
        return self.inst.spec.latency

    @property
    def fu(self) -> FUClass:
        return self.inst.spec.fu

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = "" if self.executed else " [nullified]"
        return f"<#{self.seq} {self.inst.render()}{tag}>"


class Trace:
    """A complete golden-run trace plus final architectural state."""

    def __init__(self, program: Program, entries: List[TraceEntry],
                 final_registers: Dict[int, object],
                 final_memory: Dict[int, object],
                 truncated: bool = False):
        self.program = program
        self.entries = entries
        self.final_registers = final_registers
        self.final_memory = final_memory
        self.truncated = truncated
        self._decoded = None

    @property
    def decoded(self):
        """Decoded-trace cache (flat per-entry hot fields), built lazily.

        Shared read-only by every timing core replaying this trace; the
        harness' per-workload trace cache therefore amortizes one decode
        across a whole model sweep.
        """
        if self._decoded is None:
            from .decoded import DecodedTrace
            self._decoded = DecodedTrace(self)
        return self._decoded

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __getitem__(self, idx: int) -> TraceEntry:
        return self.entries[idx]

    def dynamic_counts(self) -> Dict[str, int]:
        """Summary counts by instruction kind (for workload inspection)."""
        counts = {"total": len(self.entries), "loads": 0, "stores": 0,
                  "branches": 0, "fp": 0, "muldiv": 0, "nullified": 0,
                  "restarts": 0}
        for e in self.entries:
            if not e.executed:
                counts["nullified"] += 1
            if e.is_load:
                counts["loads"] += 1
            elif e.is_store:
                counts["stores"] += 1
            elif e.is_branch:
                counts["branches"] += 1
            if e.fu is FUClass.FP:
                counts["fp"] += 1
            elif e.fu is FUClass.MULDIV:
                counts["muldiv"] += 1
            if e.is_restart:
                counts["restarts"] += 1
        return counts
