"""Golden functional simulator.

Executes a :class:`~repro.isa.program.Program` to completion under ILP32
semantics (32-bit two's-complement integers, Table 2 of the paper) and
records the dynamic :class:`~repro.isa.trace.Trace` that all timing models
replay.  This is also the reference against which multipass result
preservation is verified: every value the multipass core merges from its
result store must equal the value recorded here.
"""

from __future__ import annotations

from typing import Dict, Optional

from .instruction import Instruction
from .opcodes import Opcode
from .program import Program, check_alignment
from .registers import TRUE_PRED, ZERO_REG, is_pred_reg
from .trace import Trace, TraceEntry

_MASK32 = 0xFFFFFFFF
_SIGN32 = 0x80000000


def to_int32(value: int) -> int:
    """Wrap an int to 32-bit two's-complement (ILP32 data model)."""
    value &= _MASK32
    return value - (1 << 32) if value & _SIGN32 else value


class ExecutionLimitExceeded(Exception):
    """The program ran past ``max_instructions`` without halting."""


class FunctionalSimulator:
    """Executes programs and emits golden traces."""

    def __init__(self, program: Program, max_instructions: int = 2_000_000):
        self.program = program
        self.max_instructions = max_instructions
        self.registers: Dict[int, object] = {}
        self.memory: Dict[int, object] = dict(program.memory_image)
        self.pc = 0

    # -- register/memory accessors ------------------------------------------

    def read_reg(self, reg: int) -> object:
        if reg == ZERO_REG:
            return 0
        if reg == TRUE_PRED:
            return True
        if is_pred_reg(reg):
            return self.registers.get(reg, False)
        return self.registers.get(reg, 0)

    def write_reg(self, reg: int, value: object) -> None:
        if reg in (ZERO_REG, TRUE_PRED):
            return
        self.registers[reg] = value

    def read_mem(self, addr: int) -> object:
        check_alignment(addr, self.program.name)
        return self.memory.get(addr, 0)

    def write_mem(self, addr: int, value: object) -> None:
        check_alignment(addr, self.program.name)
        self.memory[addr] = value

    # -- execution -------------------------------------------------------------

    def run(self, truncate_ok: bool = False) -> Trace:
        """Execute until HALT (or the instruction limit) and return the trace.

        Args:
            truncate_ok: when True, hitting ``max_instructions`` yields a
                truncated trace instead of raising.  Workload generators use
                this deliberately for open-ended kernels.
        """
        entries = []
        program = self.program
        n_static = len(program)
        truncated = False
        while True:
            if self.pc >= n_static:
                raise ExecutionLimitExceeded(
                    f"{program.name}: fell off the end of the program at "
                    f"pc={self.pc}"
                )
            if len(entries) >= self.max_instructions:
                if truncate_ok:
                    truncated = True
                    break
                raise ExecutionLimitExceeded(
                    f"{program.name}: exceeded {self.max_instructions} "
                    f"dynamic instructions"
                )
            inst = program[self.pc]
            if inst.opcode is Opcode.HALT:
                entries.append(TraceEntry(inst, len(entries), (), ()))
                break
            entry = self._step(inst, len(entries))
            entries.append(entry)
        return Trace(program, entries, dict(self.registers),
                     dict(self.memory), truncated=truncated)

    def step(self, seq: int) -> TraceEntry:
        """Execute the instruction at the current pc and return its entry.

        Single-step interface used by the runtime invariant checker
        (:class:`repro.analysis.invariants.ArchReplay`) to re-execute the
        committed instruction stream independently of the golden trace.
        ``HALT`` yields its trace entry without advancing the pc.
        """
        inst = self.program[self.pc]
        if inst.opcode is Opcode.HALT:
            return TraceEntry(inst, seq, (), ())
        return self._step(inst, seq)

    def _step(self, inst: Instruction, seq: int) -> TraceEntry:
        """Execute one instruction and advance the pc."""
        op = inst.opcode
        pred_true = bool(self.read_reg(inst.pred))
        if not pred_true:
            # Nullified: reads only its predicate, writes nothing, falls
            # through (a nullified branch is not taken).
            self.pc += 1
            srcs = (inst.pred,) if inst.is_predicated else ()
            return TraceEntry(inst, seq, (), srcs, executed=False)

        srcs = inst.read_regs()
        dests = inst.dests
        next_pc = self.pc + 1
        addr: Optional[int] = None
        value: object = None
        taken = False

        if op in _ALU_BINOPS:
            a = self.read_reg(inst.srcs[0])
            b = self.read_reg(inst.srcs[1])
            self.write_reg(dests[0], _ALU_BINOPS[op](a, b))
        elif op in _ALU_IMMOPS:
            a = self.read_reg(inst.srcs[0])
            self.write_reg(dests[0], _ALU_IMMOPS[op](a, inst.imm))
        elif op is Opcode.MOV:
            self.write_reg(dests[0], self.read_reg(inst.srcs[0]))
        elif op is Opcode.MOVI:
            self.write_reg(dests[0], to_int32(inst.imm))
        elif op is Opcode.FMOV:
            self.write_reg(dests[0], self.read_reg(inst.srcs[0]))
        elif op is Opcode.FMOVI:
            self.write_reg(dests[0], float(inst.imm))
        elif op is Opcode.CVTIF:
            self.write_reg(dests[0], float(self.read_reg(inst.srcs[0])))
        elif op is Opcode.CVTFI:
            self.write_reg(dests[0], to_int32(int(self.read_reg(inst.srcs[0]))))
        elif op in (Opcode.LD, Opcode.FLD):
            addr = to_int32(self.read_reg(inst.srcs[0]) + inst.imm) & _MASK32
            value = self.read_mem(addr)
            self.write_reg(dests[0], value)
        elif op in (Opcode.ST, Opcode.FST):
            addr = to_int32(self.read_reg(inst.srcs[1]) + inst.imm) & _MASK32
            value = self.read_reg(inst.srcs[0])
            self.write_mem(addr, value)
        elif op is Opcode.BR:
            taken = True
            next_pc = self.program.target_index(inst)
        elif op is Opcode.JMP:
            taken = True
            next_pc = self.program.target_index(inst)
        elif op in (Opcode.NOP, Opcode.RESTART):
            pass
        else:  # pragma: no cover - opcode table is exhaustive
            raise NotImplementedError(f"unhandled opcode {op}")

        self.pc = next_pc
        return TraceEntry(inst, seq, dests, srcs, addr=addr, value=value,
                          taken=taken)


def _shift_amount(b: int) -> int:
    return b & 31


_ALU_BINOPS = {
    Opcode.ADD: lambda a, b: to_int32(a + b),
    Opcode.SUB: lambda a, b: to_int32(a - b),
    Opcode.AND: lambda a, b: to_int32(a & b),
    Opcode.OR: lambda a, b: to_int32(a | b),
    Opcode.XOR: lambda a, b: to_int32(a ^ b),
    Opcode.SHL: lambda a, b: to_int32(a << _shift_amount(b)),
    Opcode.SHR: lambda a, b: to_int32((a & _MASK32) >> _shift_amount(b)),
    Opcode.CMPEQ: lambda a, b: a == b,
    Opcode.CMPNE: lambda a, b: a != b,
    Opcode.CMPLT: lambda a, b: a < b,
    Opcode.CMPLE: lambda a, b: a <= b,
    Opcode.MUL: lambda a, b: to_int32(a * b),
    Opcode.DIV: lambda a, b: to_int32(_int_div(a, b)),
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: a * b,
    Opcode.FDIV: lambda a, b: a / b if b else 0.0,
    Opcode.FCMPLT: lambda a, b: a < b,
    Opcode.FCMPLE: lambda a, b: a <= b,
}

_ALU_IMMOPS = {
    Opcode.ADDI: lambda a, i: to_int32(a + i),
    Opcode.SUBI: lambda a, i: to_int32(a - i),
    Opcode.ANDI: lambda a, i: to_int32(a & i),
    Opcode.XORI: lambda a, i: to_int32(a ^ i),
    Opcode.SHLI: lambda a, i: to_int32(a << _shift_amount(i)),
    Opcode.SHRI: lambda a, i: to_int32((a & _MASK32) >> _shift_amount(i)),
    Opcode.CMPEQI: lambda a, i: a == i,
    Opcode.CMPNEI: lambda a, i: a != i,
    Opcode.CMPLTI: lambda a, i: a < i,
    Opcode.CMPLEI: lambda a, i: a <= i,
}


def _int_div(a: int, b: int) -> int:
    """C-style truncating division; divide-by-zero yields zero."""
    if b == 0:
        return 0
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def execute(program: Program, max_instructions: int = 2_000_000,
            truncate_ok: bool = False) -> Trace:
    """Convenience wrapper: run ``program`` and return its golden trace."""
    sim = FunctionalSimulator(program, max_instructions=max_instructions)
    return sim.run(truncate_ok=truncate_ok)
