"""Register namespace for the EPIC target ISA.

The simulated architecture (modelled loosely on Itanium 2, per the paper's
Section 4) exposes 128 integer registers, 128 floating-point registers and
64 predicate registers.  All three classes share a single flat numeric
namespace so that scoreboards, rename maps and A-bit vectors can be plain
arrays indexed by register id:

* ``0 .. 127``    integer registers ``r0..r127`` (``r0`` is hard-wired zero)
* ``128 .. 255``  floating-point registers ``f0..f127``
* ``256 .. 319``  predicate registers ``p0..p63`` (``p0`` is hard-wired true)
"""

from __future__ import annotations

NUM_INT_REGS = 128
NUM_FP_REGS = 128
NUM_PRED_REGS = 64

INT_BASE = 0
FP_BASE = NUM_INT_REGS
PRED_BASE = NUM_INT_REGS + NUM_FP_REGS

#: Total size of the flat register namespace.
NUM_REGS = NUM_INT_REGS + NUM_FP_REGS + NUM_PRED_REGS

#: ``r0`` — architecturally reads as integer zero and ignores writes.
ZERO_REG = INT_BASE
#: ``p0`` — architecturally reads as true and ignores writes.
TRUE_PRED = PRED_BASE

#: Register ids whose value is architecturally constant.
HARDWIRED = frozenset((ZERO_REG, TRUE_PRED))


def R(index: int) -> int:
    """Return the flat register id of integer register ``r<index>``."""
    if not 0 <= index < NUM_INT_REGS:
        raise ValueError(f"integer register index out of range: {index}")
    return INT_BASE + index


def F(index: int) -> int:
    """Return the flat register id of floating-point register ``f<index>``."""
    if not 0 <= index < NUM_FP_REGS:
        raise ValueError(f"fp register index out of range: {index}")
    return FP_BASE + index


def P(index: int) -> int:
    """Return the flat register id of predicate register ``p<index>``."""
    if not 0 <= index < NUM_PRED_REGS:
        raise ValueError(f"predicate register index out of range: {index}")
    return PRED_BASE + index


def is_int_reg(reg: int) -> bool:
    """True if ``reg`` names an integer register."""
    return INT_BASE <= reg < FP_BASE


def is_fp_reg(reg: int) -> bool:
    """True if ``reg`` names a floating-point register."""
    return FP_BASE <= reg < PRED_BASE


def is_pred_reg(reg: int) -> bool:
    """True if ``reg`` names a predicate register."""
    return PRED_BASE <= reg < NUM_REGS


def reg_name(reg: int) -> str:
    """Render a flat register id in assembly syntax (``r3``/``f9``/``p2``)."""
    if is_int_reg(reg):
        return f"r{reg - INT_BASE}"
    if is_fp_reg(reg):
        return f"f{reg - FP_BASE}"
    if is_pred_reg(reg):
        return f"p{reg - PRED_BASE}"
    raise ValueError(f"not a register id: {reg}")


def parse_reg(text: str) -> int:
    """Parse assembly syntax (``r3``/``f9``/``p2``) into a flat register id."""
    if len(text) < 2 or text[0] not in "rfp" or not text[1:].isdigit():
        raise ValueError(f"not a register name: {text!r}")
    index = int(text[1:])
    if text[0] == "r":
        return R(index)
    if text[0] == "f":
        return F(index)
    return P(index)
