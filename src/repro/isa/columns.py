"""Columnar trace data: flat int-array columns and static dependence CSR.

Second stage of the decode pipeline (after :mod:`repro.isa.decoded`): the
timing-core columnar kernels operate on *preallocated flat int arrays*
indexed by dynamic sequence number, with no per-entry Python objects in
the simulation hot loops.  This module derives those columns once per
trace and caches them on the :class:`~repro.isa.decoded.DecodedTrace`.

Two kinds of columns live here:

* **Issue-resource columns** — ``port_code`` (the
  :data:`~repro.resources.PORT_CODE` small-int class of each entry) and
  ``queue_code`` (which decentralized issue queue the entry occupies on
  the realistic OOO model).  Every core used to rebuild ``port_code``
  with a per-run list comprehension; sharing it here means one build per
  trace across a whole sweep.

* **The static dependence graph** — per-seq producer and consumer lists
  in CSR form (``prod_off``/``prod_seq`` and ``cons_off``/``cons_seq``).

The dependence graph is *exact*, not an approximation, because every
timing model replays the architecturally correct trace in sequence
order: dispatch always walks seqs ``0, 1, 2, ...`` (a branch squash only
rolls the dispatch pointer back and replays the same seqs), so the
rename-table state observed when seq ``i`` dispatches is a pure function
of the trace prefix ``[0, i)``.  The producers of ``i`` — the last
writers of its source registers (plus, on the merged-destination variant
used by the non-ideal OOO rename path, the last writers of a predicated
instruction's static destinations) — can therefore be computed once,
here, instead of being rediscovered at every dispatch.  Producer order
matches the dispatch-time dict construction (source order, first
occurrence wins), which the stall-attribution rules depend on.

Like :class:`~repro.isa.decoded.DecodedTrace`, everything here is
derived read-only data: columns never change simulation semantics.  The
equivalence of the static producer sets with the dynamic rename-table
walk is pinned by ``tests/isa/test_columns.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..resources import PORT_CODE
from .opcodes import FUClass
from .registers import NUM_REGS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .decoded import DecodedTrace

#: Decentralized-issue-queue class per FU (realistic OOO model):
#: 0 = memory queue, 1 = integer queue (ALU/BR/slot-only), 2 = FP queue.
QUEUE_CODE = {
    FUClass.MEM: 0,
    FUClass.ALU: 1,
    FUClass.BR: 1,
    FUClass.NONE: 1,
    FUClass.FP: 2,
    FUClass.MULDIV: 2,
}


class DependenceGraph:
    """Static producer/consumer CSR arrays for one rename discipline.

    ``prod_seq[prod_off[i]:prod_off[i + 1]]`` lists the in-trace
    producers of seq ``i`` — the last prior writer of each of its source
    registers — deduplicated, in first-occurrence source order.  The
    transpose, ``cons_seq[cons_off[p]:cons_off[p + 1]]``, lists every
    seq that names ``p`` as a producer, in ascending seq order.

    ``merged_dests=True`` reproduces the conventional-predication rename
    rule (no predicate renaming): a predicated instruction additionally
    depends on the prior writers of its *static* destinations, and its
    static destinations (rather than the dynamically written ones)
    become the new last-writers.
    """

    __slots__ = ("merged_dests", "prod_off", "prod_seq",
                 "cons_off", "cons_seq", "_prod_tuples", "_cons_tuples")

    def __init__(self, dec: "DecodedTrace", merged_dests: bool):
        self.merged_dests = merged_dests
        n = dec.n
        d_srcs = dec.srcs
        d_dests = dec.dests
        d_sdests = dec.static_dests
        d_pred = dec.is_predicated

        last_writer = [-1] * NUM_REGS
        prod_off = [0] * (n + 1)
        prod_seq: List[int] = []
        append = prod_seq.append
        for seq in range(n):
            base = len(prod_seq)
            for src in d_srcs[seq]:
                p = last_writer[src]
                if p >= 0:
                    k = base
                    top = len(prod_seq)
                    while k < top and prod_seq[k] != p:
                        k += 1
                    if k == top:
                        append(p)
            if merged_dests and d_pred[seq]:
                dest_iter = d_sdests[seq]
                for dest in dest_iter:
                    p = last_writer[dest]
                    if p >= 0:
                        k = base
                        top = len(prod_seq)
                        while k < top and prod_seq[k] != p:
                            k += 1
                        if k == top:
                            append(p)
            else:
                dest_iter = d_dests[seq]
            for dest in dest_iter:
                last_writer[dest] = seq
            prod_off[seq + 1] = len(prod_seq)
        self.prod_off = prod_off
        self.prod_seq = prod_seq

        # Transpose to consumer lists (counting sort keeps seq order).
        counts = [0] * (n + 1)
        for p in prod_seq:
            counts[p + 1] += 1
        for i in range(1, n + 1):
            counts[i] += counts[i - 1]
        cons_off = list(counts)
        cons_seq = [0] * len(prod_seq)
        cursor = list(counts)
        for seq in range(n):
            for k in range(prod_off[seq], prod_off[seq + 1]):
                p = prod_seq[k]
                cons_seq[cursor[p]] = seq
                cursor[p] += 1
        self.cons_off = cons_off
        self.cons_seq = cons_seq
        self._prod_tuples = None
        self._cons_tuples = None

    def prod_tuples(self) -> List[Tuple[int, ...]]:
        """Per-seq producer tuples (CSR rows materialized, cached)."""
        tuples = self._prod_tuples
        if tuples is None:
            off = self.prod_off
            seqs = self.prod_seq
            tuples = [tuple(seqs[off[i]:off[i + 1]])
                      for i in range(len(off) - 1)]
            self._prod_tuples = tuples
        return tuples

    def cons_tuples(self) -> List[Tuple[int, ...]]:
        """Per-seq consumer tuples (CSR rows materialized, cached)."""
        tuples = self._cons_tuples
        if tuples is None:
            off = self.cons_off
            seqs = self.cons_seq
            tuples = [tuple(seqs[off[i]:off[i + 1]])
                      for i in range(len(off) - 1)]
            self._cons_tuples = tuples
        return tuples

    def producers(self, seq: int) -> Tuple[int, ...]:
        """The producer seqs of ``seq`` (convenience, not hot-path)."""
        return tuple(self.prod_seq[self.prod_off[seq]:
                                   self.prod_off[seq + 1]])


class TraceColumns:
    """Shared flat columns + lazily built dependence graphs."""

    __slots__ = ("n", "port_code", "queue_code", "_dec", "_graphs",
                 "_fetch_lines", "_fetch_runs", "_mp_kind", "_issue_kind",
                 "_ev_pairs")

    def __init__(self, dec: "DecodedTrace"):
        self.n = dec.n
        port = PORT_CODE
        queue = QUEUE_CODE
        self.port_code = [port[fu] for fu in dec.issue_fu]
        self.queue_code = [queue[fu] for fu in dec.issue_fu]
        self._dec = dec
        self._graphs: Dict[bool, DependenceGraph] = {}
        self._fetch_lines: Dict[Tuple[int, int], List[int]] = {}
        self._fetch_runs: Dict[Tuple[int, int], List[int]] = {}
        self._mp_kind: Optional[List[int]] = None
        self._issue_kind: Dict[bool, bytes] = {}
        self._ev_pairs: Optional[List[Tuple[int, int]]] = None

    def dependences(self, merged_dests: bool = False) -> DependenceGraph:
        """The static dependence graph for one rename discipline."""
        graph = self._graphs.get(merged_dests)
        if graph is None:
            graph = DependenceGraph(self._dec, merged_dests)
            self._graphs[merged_dests] = graph
        return graph

    def fetch_lines(self, inst_bytes: int, line_size: int) -> List[int]:
        """Per-seq I-cache line id column (``pc * inst_bytes // line``).

        The front end walks this instead of chasing
        ``entry.inst.index`` per fetched entry; cached per geometry so
        a whole model sweep shares one build.
        """
        key = (inst_bytes, line_size)
        lines = self._fetch_lines.get(key)
        if lines is None:
            lines = [pc * inst_bytes // line_size for pc in self._dec.pc]
            self._fetch_lines[key] = lines
        return lines

    def fetch_runs(self, inst_bytes: int, line_size: int) -> List[int]:
        """Per-seq same-line run ends over :meth:`fetch_lines`.

        ``runs[i]`` is the first seq past ``i`` whose cache line
        differs, so a front end whose current line is already hot can
        advance to the run end in one step instead of per-seq.
        """
        key = (inst_bytes, line_size)
        runs = self._fetch_runs.get(key)
        if runs is None:
            lines = self.fetch_lines(inst_bytes, line_size)
            n = self.n
            runs = [n] * n
            for i in range(n - 2, -1, -1):
                if lines[i] != lines[i + 1]:
                    runs[i] = i + 1
                else:
                    runs[i] = runs[i + 1]
            self._fetch_runs[key] = runs
        return runs

    def issue_kind(self, merged_dests: bool = False) -> bytes:
        """Packed per-seq issue-path flags for the OOO kernel.

        Bit 0: memory-executing, bit 1: branch, bit 2: has static
        consumers under the given rename discipline.  One subscript in
        the issue tail replaces three flag-column probes (and the
        common plain-ALU-with-consumers shape tests as a single byte).
        """
        kind = self._issue_kind.get(merged_dests)
        if kind is None:
            dec = self._dec
            d_mem = dec.mem_exec
            d_branch = dec.is_branch
            off = self.dependences(merged_dests).cons_off
            kind = bytes(
                (1 if d_mem[s] else 0)
                | (2 if d_branch[s] else 0)
                | (4 if off[s] != off[s + 1] else 0)
                for s in range(self.n))
            self._issue_kind[merged_dests] = kind
        return kind

    def event_pairs(self) -> List[Tuple[int, int]]:
        """Generation-zero ``(seq, gen)`` wheel entries, one per seq.

        The OOO kernel copies this list and re-points an entry only
        when a squash bumps that seq's generation, so the hot event
        push appends a prebuilt pair instead of building a tuple.
        """
        pairs = self._ev_pairs
        if pairs is None:
            pairs = [(s, 0) for s in range(self.n)]
            self._ev_pairs = pairs
        return pairs

    def multipass_kind(self) -> List[int]:
        """Advance-dispatch class per seq for the multipass kernel.

        ``0`` = executed ALU/FP/other, ``1`` = predicate-nullified,
        ``2`` = executed branch, ``3`` = executed store, ``4`` =
        executed load — one subscript in place of the
        executed/branch/store/load flag cascade of the advance execute
        dispatch (the flags are trace-static, so the cascade's outcome
        is too).
        """
        kind = self._mp_kind
        if kind is None:
            dec = self._dec
            executed = dec.executed
            is_branch = dec.is_branch
            is_store = dec.is_store
            is_load = dec.is_load
            kind = [0] * self.n
            for seq in range(self.n):
                if not executed[seq]:
                    kind[seq] = 1
                elif is_branch[seq]:
                    kind[seq] = 2
                elif is_store[seq]:
                    kind[seq] = 3
                elif is_load[seq]:
                    kind[seq] = 4
            self._mp_kind = kind
        return kind


def columns_of(dec: "DecodedTrace") -> TraceColumns:
    """Return (building on first use) the column set of a decoded trace."""
    cols = dec._columns
    if cols is None:
        cols = TraceColumns(dec)
        dec._columns = cols
    return cols
