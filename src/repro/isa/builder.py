"""Fluent assembler API for constructing :class:`~repro.isa.program.Program`.

Workload generators and tests use this builder instead of writing raw
:class:`Instruction` lists.  Example::

    b = ProgramBuilder("sum")
    b.movi(R(1), 0)          # acc = 0
    b.movi(R(2), 0x1000)     # ptr = base
    b.movi(R(3), 100)        # n = 100
    b.label("loop")
    b.ld(R(4), R(2), 0)
    b.add(R(1), R(1), R(4))
    b.addi(R(2), R(2), 4)
    b.subi(R(3), R(3), 1)
    b.cmpnei(P(1), R(3), 0)
    b.br("loop", pred=P(1))   # loop while the counter is non-zero
    b.halt()
    program = b.build()

Branches: ``br(target, pred=...)`` branches when the predicate is *true*.
Compare opcodes write the predicate directly, so loops typically compute
``cmplt p1, i, n`` and ``br("loop", pred=p1)``.
"""

from __future__ import annotations

from typing import Dict, List

from .instruction import Immediate, Instruction
from .opcodes import Opcode
from .program import WORD_SIZE, Program, ProgramError
from .registers import TRUE_PRED


class ProgramBuilder:
    """Incrementally assembles a :class:`Program`."""

    def __init__(self, name: str):
        self.name = name
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._memory: Dict[int, object] = {}
        self.metadata: Dict[str, object] = {}

    # -- structure ---------------------------------------------------------

    def label(self, name: str) -> None:
        """Define ``name`` at the current position."""
        if name in self._labels:
            raise ProgramError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)

    def emit(self, inst: Instruction) -> Instruction:
        """Append a pre-built instruction."""
        self._instructions.append(inst)
        return inst

    def build(self) -> Program:
        """Seal and return the program."""
        return Program(
            name=self.name,
            instructions=list(self._instructions),
            labels=dict(self._labels),
            memory_image=dict(self._memory),
            metadata=dict(self.metadata),
        )

    def __len__(self) -> int:
        return len(self._instructions)

    # -- data memory -------------------------------------------------------

    def data_word(self, addr: int, value: object) -> None:
        """Place one initial-memory word at byte address ``addr``."""
        if addr % WORD_SIZE != 0:
            raise ProgramError(f"unaligned data word at {addr}")
        self._memory[addr] = value

    def data_words(self, base: int, values) -> int:
        """Place consecutive words starting at ``base``; return end address."""
        addr = base
        for value in values:
            self.data_word(addr, value)
            addr += WORD_SIZE
        return addr

    # -- generic emit helpers ----------------------------------------------

    def _op3(self, opcode: Opcode, rd: int, rs1: int, rs2: int,
             pred: int = TRUE_PRED) -> Instruction:
        return self.emit(Instruction(opcode, (rd,), (rs1, rs2), pred=pred))

    def _opi(self, opcode: Opcode, rd: int, rs1: int, imm: Immediate,
             pred: int = TRUE_PRED) -> Instruction:
        return self.emit(
            Instruction(opcode, (rd,), (rs1,), imm=imm, pred=pred)
        )

    # -- integer ALU ---------------------------------------------------------

    def add(self, rd, rs1, rs2, pred=TRUE_PRED):
        return self._op3(Opcode.ADD, rd, rs1, rs2, pred)

    def addi(self, rd, rs1, imm, pred=TRUE_PRED):
        return self._opi(Opcode.ADDI, rd, rs1, imm, pred)

    def sub(self, rd, rs1, rs2, pred=TRUE_PRED):
        return self._op3(Opcode.SUB, rd, rs1, rs2, pred)

    def subi(self, rd, rs1, imm, pred=TRUE_PRED):
        return self._opi(Opcode.SUBI, rd, rs1, imm, pred)

    def and_(self, rd, rs1, rs2, pred=TRUE_PRED):
        return self._op3(Opcode.AND, rd, rs1, rs2, pred)

    def andi(self, rd, rs1, imm, pred=TRUE_PRED):
        return self._opi(Opcode.ANDI, rd, rs1, imm, pred)

    def or_(self, rd, rs1, rs2, pred=TRUE_PRED):
        return self._op3(Opcode.OR, rd, rs1, rs2, pred)

    def xor(self, rd, rs1, rs2, pred=TRUE_PRED):
        return self._op3(Opcode.XOR, rd, rs1, rs2, pred)

    def xori(self, rd, rs1, imm, pred=TRUE_PRED):
        return self._opi(Opcode.XORI, rd, rs1, imm, pred)

    def shl(self, rd, rs1, rs2, pred=TRUE_PRED):
        return self._op3(Opcode.SHL, rd, rs1, rs2, pred)

    def shli(self, rd, rs1, imm, pred=TRUE_PRED):
        return self._opi(Opcode.SHLI, rd, rs1, imm, pred)

    def shr(self, rd, rs1, rs2, pred=TRUE_PRED):
        return self._op3(Opcode.SHR, rd, rs1, rs2, pred)

    def shri(self, rd, rs1, imm, pred=TRUE_PRED):
        return self._opi(Opcode.SHRI, rd, rs1, imm, pred)

    def mov(self, rd, rs, pred=TRUE_PRED):
        return self.emit(Instruction(Opcode.MOV, (rd,), (rs,), pred=pred))

    def movi(self, rd, imm, pred=TRUE_PRED):
        return self.emit(Instruction(Opcode.MOVI, (rd,), (), imm=imm,
                                     pred=pred))

    # -- compares ------------------------------------------------------------

    def cmpeq(self, pd, rs1, rs2, pred=TRUE_PRED):
        return self._op3(Opcode.CMPEQ, pd, rs1, rs2, pred)

    def cmpne(self, pd, rs1, rs2, pred=TRUE_PRED):
        return self._op3(Opcode.CMPNE, pd, rs1, rs2, pred)

    def cmplt(self, pd, rs1, rs2, pred=TRUE_PRED):
        return self._op3(Opcode.CMPLT, pd, rs1, rs2, pred)

    def cmple(self, pd, rs1, rs2, pred=TRUE_PRED):
        return self._op3(Opcode.CMPLE, pd, rs1, rs2, pred)

    def cmpeqi(self, pd, rs1, imm, pred=TRUE_PRED):
        return self._opi(Opcode.CMPEQI, pd, rs1, imm, pred)

    def cmpnei(self, pd, rs1, imm, pred=TRUE_PRED):
        return self._opi(Opcode.CMPNEI, pd, rs1, imm, pred)

    def cmplti(self, pd, rs1, imm, pred=TRUE_PRED):
        return self._opi(Opcode.CMPLTI, pd, rs1, imm, pred)

    def cmplei(self, pd, rs1, imm, pred=TRUE_PRED):
        return self._opi(Opcode.CMPLEI, pd, rs1, imm, pred)

    # -- multi-cycle integer ---------------------------------------------------

    def mul(self, rd, rs1, rs2, pred=TRUE_PRED):
        return self._op3(Opcode.MUL, rd, rs1, rs2, pred)

    def div(self, rd, rs1, rs2, pred=TRUE_PRED):
        return self._op3(Opcode.DIV, rd, rs1, rs2, pred)

    # -- floating point ---------------------------------------------------------

    def fadd(self, fd, fs1, fs2, pred=TRUE_PRED):
        return self._op3(Opcode.FADD, fd, fs1, fs2, pred)

    def fsub(self, fd, fs1, fs2, pred=TRUE_PRED):
        return self._op3(Opcode.FSUB, fd, fs1, fs2, pred)

    def fmul(self, fd, fs1, fs2, pred=TRUE_PRED):
        return self._op3(Opcode.FMUL, fd, fs1, fs2, pred)

    def fdiv(self, fd, fs1, fs2, pred=TRUE_PRED):
        return self._op3(Opcode.FDIV, fd, fs1, fs2, pred)

    def fmov(self, fd, fs, pred=TRUE_PRED):
        return self.emit(Instruction(Opcode.FMOV, (fd,), (fs,), pred=pred))

    def fmovi(self, fd, imm, pred=TRUE_PRED):
        return self.emit(Instruction(Opcode.FMOVI, (fd,), (), imm=float(imm),
                                     pred=pred))

    def fcmplt(self, pd, fs1, fs2, pred=TRUE_PRED):
        return self._op3(Opcode.FCMPLT, pd, fs1, fs2, pred)

    def fcmple(self, pd, fs1, fs2, pred=TRUE_PRED):
        return self._op3(Opcode.FCMPLE, pd, fs1, fs2, pred)

    def cvtif(self, fd, rs, pred=TRUE_PRED):
        return self.emit(Instruction(Opcode.CVTIF, (fd,), (rs,), pred=pred))

    def cvtfi(self, rd, fs, pred=TRUE_PRED):
        return self.emit(Instruction(Opcode.CVTFI, (rd,), (fs,), pred=pred))

    # -- memory ---------------------------------------------------------------

    def ld(self, rd, base, offset=0, pred=TRUE_PRED):
        """Integer load: ``rd = MEM[base + offset]``."""
        return self.emit(Instruction(Opcode.LD, (rd,), (base,), imm=offset,
                                     pred=pred))

    def st(self, data, base, offset=0, pred=TRUE_PRED):
        """Integer store: ``MEM[base + offset] = data``."""
        return self.emit(Instruction(Opcode.ST, (), (data, base), imm=offset,
                                     pred=pred))

    def fld(self, fd, base, offset=0, pred=TRUE_PRED):
        return self.emit(Instruction(Opcode.FLD, (fd,), (base,), imm=offset,
                                     pred=pred))

    def fst(self, data, base, offset=0, pred=TRUE_PRED):
        return self.emit(Instruction(Opcode.FST, (), (data, base), imm=offset,
                                     pred=pred))

    # -- control ---------------------------------------------------------------

    def br(self, target: str, pred=TRUE_PRED):
        """Branch to ``target`` when ``pred`` is true."""
        return self.emit(Instruction(Opcode.BR, (), (), pred=pred,
                                     target=target))

    def jmp(self, target: str):
        return self.emit(Instruction(Opcode.JMP, (), (), target=target))

    def halt(self):
        return self.emit(Instruction(Opcode.HALT))

    def nop(self):
        return self.emit(Instruction(Opcode.NOP))

    def restart(self, rs, pred=TRUE_PRED):
        """Advance-restart directive consuming ``rs`` (paper Section 3.3)."""
        return self.emit(Instruction(Opcode.RESTART, (), (rs,), pred=pred))
