"""Opcode definitions, latencies and functional-unit classes.

Latencies follow the experimental machine of the paper (Table 2): a 6-issue
EPIC core with an Itanium-2-like functional-unit distribution.  Single-cycle
integer ALU operations, multi-cycle multiplies/divides and floating-point
arithmetic (whose stalls the paper attributes to the *other* category), and
variable-latency loads (the *load* category).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FUClass(enum.Enum):
    """Functional-unit class an opcode executes on.

    The dispersal model mirrors Itanium 2's port structure: memory ops
    require an M port, integer ALU ops can use M or I ports, floating point
    uses F ports and branches use B ports.
    """

    ALU = "alu"        # single-cycle integer
    MULDIV = "muldiv"  # multi-cycle integer (executes on the FP unit)
    MEM = "mem"        # loads/stores
    FP = "fp"          # floating-point arithmetic
    BR = "br"          # branches
    NONE = "none"      # NOP / RESTART / HALT — consume an issue slot only


@dataclass(frozen=True)
class OpSpec:
    """Static properties of one opcode."""

    mnemonic: str
    fu: FUClass
    latency: int
    is_load: bool = False
    is_store: bool = False
    is_branch: bool = False
    writes_pred: bool = False
    has_imm: bool = False

    @property
    def variable_latency(self) -> bool:
        """True for operations whose latency depends on run-time state."""
        return self.is_load

    @property
    def multi_cycle(self) -> bool:
        """True for fixed-latency operations longer than one cycle."""
        return self.latency > 1 and not self.is_load


class Opcode(enum.Enum):
    """All opcodes of the target ISA."""

    # Integer ALU (1 cycle).
    ADD = enum.auto()
    ADDI = enum.auto()
    SUB = enum.auto()
    SUBI = enum.auto()
    AND = enum.auto()
    ANDI = enum.auto()
    OR = enum.auto()
    XOR = enum.auto()
    XORI = enum.auto()
    SHL = enum.auto()
    SHLI = enum.auto()
    SHR = enum.auto()
    SHRI = enum.auto()
    MOV = enum.auto()
    MOVI = enum.auto()
    # Integer compares — write a predicate register.
    CMPEQ = enum.auto()
    CMPNE = enum.auto()
    CMPLT = enum.auto()
    CMPLE = enum.auto()
    CMPEQI = enum.auto()
    CMPNEI = enum.auto()
    CMPLTI = enum.auto()
    CMPLEI = enum.auto()
    # Multi-cycle integer (issue on the FP/long-latency pipe).
    MUL = enum.auto()
    DIV = enum.auto()
    # Floating point.
    FADD = enum.auto()
    FSUB = enum.auto()
    FMUL = enum.auto()
    FDIV = enum.auto()
    FMOV = enum.auto()
    FMOVI = enum.auto()
    FCMPLT = enum.auto()
    FCMPLE = enum.auto()
    CVTIF = enum.auto()  # int -> fp
    CVTFI = enum.auto()  # fp -> int (truncating)
    # Memory (32-bit words; fp loads/stores move one fp value).
    LD = enum.auto()
    ST = enum.auto()
    FLD = enum.auto()
    FST = enum.auto()
    # Control.
    BR = enum.auto()    # branch to label if qualifying predicate is true
    JMP = enum.auto()   # unconditional branch
    HALT = enum.auto()
    # Pipeline directives.
    NOP = enum.auto()
    RESTART = enum.auto()  # multipass advance-restart marker (Section 3.3)


_ALU = FUClass.ALU
_MEM = FUClass.MEM
_FP = FUClass.FP
_BR = FUClass.BR
_MD = FUClass.MULDIV
_NONE = FUClass.NONE

#: Latency of fixed multi-cycle operations, tunable per machine config but
#: given sensible Itanium-2-flavoured defaults here.
MUL_LATENCY = 4
DIV_LATENCY = 16
FP_LATENCY = 4
FDIV_LATENCY = 16

OP_SPECS: dict[Opcode, OpSpec] = {
    Opcode.ADD: OpSpec("add", _ALU, 1),
    Opcode.ADDI: OpSpec("addi", _ALU, 1, has_imm=True),
    Opcode.SUB: OpSpec("sub", _ALU, 1),
    Opcode.SUBI: OpSpec("subi", _ALU, 1, has_imm=True),
    Opcode.AND: OpSpec("and", _ALU, 1),
    Opcode.ANDI: OpSpec("andi", _ALU, 1, has_imm=True),
    Opcode.OR: OpSpec("or", _ALU, 1),
    Opcode.XOR: OpSpec("xor", _ALU, 1),
    Opcode.XORI: OpSpec("xori", _ALU, 1, has_imm=True),
    Opcode.SHL: OpSpec("shl", _ALU, 1),
    Opcode.SHLI: OpSpec("shli", _ALU, 1, has_imm=True),
    Opcode.SHR: OpSpec("shr", _ALU, 1),
    Opcode.SHRI: OpSpec("shri", _ALU, 1, has_imm=True),
    Opcode.MOV: OpSpec("mov", _ALU, 1),
    Opcode.MOVI: OpSpec("movi", _ALU, 1, has_imm=True),
    Opcode.CMPEQ: OpSpec("cmpeq", _ALU, 1, writes_pred=True),
    Opcode.CMPNE: OpSpec("cmpne", _ALU, 1, writes_pred=True),
    Opcode.CMPLT: OpSpec("cmplt", _ALU, 1, writes_pred=True),
    Opcode.CMPLE: OpSpec("cmple", _ALU, 1, writes_pred=True),
    Opcode.CMPEQI: OpSpec("cmpeqi", _ALU, 1, writes_pred=True, has_imm=True),
    Opcode.CMPNEI: OpSpec("cmpnei", _ALU, 1, writes_pred=True, has_imm=True),
    Opcode.CMPLTI: OpSpec("cmplti", _ALU, 1, writes_pred=True, has_imm=True),
    Opcode.CMPLEI: OpSpec("cmplei", _ALU, 1, writes_pred=True, has_imm=True),
    Opcode.MUL: OpSpec("mul", _MD, MUL_LATENCY),
    Opcode.DIV: OpSpec("div", _MD, DIV_LATENCY),
    Opcode.FADD: OpSpec("fadd", _FP, FP_LATENCY),
    Opcode.FSUB: OpSpec("fsub", _FP, FP_LATENCY),
    Opcode.FMUL: OpSpec("fmul", _FP, FP_LATENCY),
    Opcode.FDIV: OpSpec("fdiv", _FP, FDIV_LATENCY),
    Opcode.FMOV: OpSpec("fmov", _FP, 1),
    Opcode.FMOVI: OpSpec("fmovi", _FP, 1, has_imm=True),
    Opcode.FCMPLT: OpSpec("fcmplt", _FP, 1, writes_pred=True),
    Opcode.FCMPLE: OpSpec("fcmple", _FP, 1, writes_pred=True),
    Opcode.CVTIF: OpSpec("cvtif", _FP, FP_LATENCY),
    Opcode.CVTFI: OpSpec("cvtfi", _FP, FP_LATENCY),
    Opcode.LD: OpSpec("ld", _MEM, 1, is_load=True, has_imm=True),
    Opcode.ST: OpSpec("st", _MEM, 1, is_store=True, has_imm=True),
    Opcode.FLD: OpSpec("fld", _MEM, 1, is_load=True, has_imm=True),
    Opcode.FST: OpSpec("fst", _MEM, 1, is_store=True, has_imm=True),
    Opcode.BR: OpSpec("br", _BR, 1, is_branch=True),
    Opcode.JMP: OpSpec("jmp", _BR, 1, is_branch=True),
    Opcode.HALT: OpSpec("halt", _NONE, 1),
    Opcode.NOP: OpSpec("nop", _NONE, 1),
    Opcode.RESTART: OpSpec("restart", _NONE, 1),
}

#: mnemonic -> Opcode, for the assembler round-trip.
MNEMONIC_TO_OPCODE: dict[str, Opcode] = {
    spec.mnemonic: op for op, spec in OP_SPECS.items()
}


def spec_of(op: Opcode) -> OpSpec:
    """Return the :class:`OpSpec` for ``op``."""
    return OP_SPECS[op]
