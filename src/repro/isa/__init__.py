"""Target ISA: registers, opcodes, programs, assembler and golden execution.

The instruction set is a predicated, EPIC-flavoured 32-bit RISC modelled on
the subset of IA-64 the paper's evaluation exercises: integer ALU ops,
multi-cycle multiply/divide, floating point, loads/stores, predicated
branches and the multipass ``RESTART`` directive.
"""

from .builder import ProgramBuilder
from .decoded import DecodedTrace
from .functional import (ExecutionLimitExceeded, FunctionalSimulator, execute,
                         to_int32)
from .instruction import Instruction
from .opcodes import FUClass, Opcode, OpSpec, spec_of
from .program import WORD_SIZE, Program, ProgramError, word_addr
from .registers import (F, NUM_REGS, P, R, TRUE_PRED, ZERO_REG, is_fp_reg,
                        is_int_reg, is_pred_reg, parse_reg, reg_name)
from .trace import Trace, TraceEntry

__all__ = [
    "DecodedTrace", "F", "FUClass", "FunctionalSimulator",
    "ExecutionLimitExceeded",
    "Instruction", "NUM_REGS", "Opcode", "OpSpec", "P", "Program",
    "ProgramBuilder", "ProgramError", "R", "TRUE_PRED", "Trace",
    "TraceEntry", "WORD_SIZE", "ZERO_REG", "execute", "is_fp_reg",
    "is_int_reg", "is_pred_reg", "parse_reg", "reg_name", "spec_of",
    "to_int32", "word_addr",
]
