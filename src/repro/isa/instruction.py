"""The :class:`Instruction` record and its assembly rendering.

Instructions are static program entities.  Dynamic (per-execution) state
lives in :class:`repro.isa.trace.TraceEntry`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from .opcodes import Opcode, OpSpec, spec_of
from .registers import TRUE_PRED, reg_name

Immediate = Union[int, float]


@dataclass
class Instruction:
    """One static EPIC instruction.

    Attributes:
        opcode: the operation.
        dests: destination register ids (flat namespace).
        srcs: source register ids.  For stores, ``srcs[0]`` is the data
            register and ``srcs[1]`` the address base.  For loads,
            ``srcs[0]`` is the address base.
        imm: immediate operand (ALU immediate or memory displacement).
        pred: qualifying predicate register id.  ``TRUE_PRED`` means the
            instruction is unconditional.
        target: label name for branches.
        stop: EPIC stop bit — this instruction ends its issue group.
        index: position in the owning :class:`~repro.isa.program.Program`,
            filled in when the program is sealed.
        group: issue-group ordinal assigned by the scheduler.
    """

    opcode: Opcode
    dests: Tuple[int, ...] = ()
    srcs: Tuple[int, ...] = ()
    imm: Optional[Immediate] = None
    pred: int = TRUE_PRED
    target: Optional[str] = None
    stop: bool = False
    index: int = field(default=-1, compare=False)
    group: int = field(default=-1, compare=False)

    @property
    def spec(self) -> OpSpec:
        """Static properties of this instruction's opcode."""
        return spec_of(self.opcode)

    @property
    def is_load(self) -> bool:
        return self.spec.is_load

    @property
    def is_store(self) -> bool:
        return self.spec.is_store

    @property
    def is_mem(self) -> bool:
        spec = self.spec
        return spec.is_load or spec.is_store

    @property
    def is_branch(self) -> bool:
        return self.spec.is_branch

    @property
    def is_predicated(self) -> bool:
        """True when guarded by a real (non-hardwired) predicate."""
        return self.pred != TRUE_PRED

    def read_regs(self) -> Tuple[int, ...]:
        """All registers this instruction reads, including its predicate."""
        if self.is_predicated:
            return self.srcs + (self.pred,)
        return self.srcs

    def render(self) -> str:
        """Render in assembly syntax, e.g. ``(p1) add r3 = r1, r2 ;;``."""
        spec = self.spec
        parts = []
        if self.is_predicated:
            parts.append(f"({reg_name(self.pred)})")
        parts.append(spec.mnemonic)
        operands = []
        if self.dests:
            operands.append(", ".join(reg_name(d) for d in self.dests) + " =")
        srcs = [reg_name(s) for s in self.srcs]
        if spec.has_imm or self.imm is not None:
            srcs.append(repr(self.imm))
        if self.target is not None:
            srcs.append(self.target)
        if srcs:
            operands.append(", ".join(srcs))
        body = " ".join(parts + [" ".join(operands)]).strip()
        return body + (" ;;" if self.stop else "")

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.render()
