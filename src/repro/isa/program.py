"""Static program representation: instructions, labels, initial memory.

A :class:`Program` is an immutable-once-sealed sequence of
:class:`~repro.isa.instruction.Instruction` objects plus a label map for
branch targets and an initial data-memory image (word addressed, 4-byte
words, byte addresses that must be 4-aligned).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from .instruction import Instruction
from .opcodes import Opcode

WORD_SIZE = 4


class ProgramError(Exception):
    """Raised for malformed programs (unknown labels, bad addresses)."""


@dataclass
class Program:
    """A sealed static program.

    Attributes:
        name: human-readable program/workload name.
        instructions: the instruction sequence.
        labels: label name -> instruction index.  May also be given as an
            iterable of ``(name, index)`` pairs, in which case duplicate
            definitions of a name are rejected at seal time.
        memory_image: initial data memory, word address -> value.  Values
            may be Python ints (integer words) or floats (fp words).
        metadata: free-form notes (workload knobs, footprint size, ...).
    """

    name: str
    instructions: List[Instruction]
    labels: Union[Dict[str, int], Iterable[Tuple[str, int]]]
    memory_image: Dict[int, object] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.labels, dict):
            # Pair form: reject duplicate definitions of a label name
            # (a dict silently keeps only the last one).
            labels: Dict[str, int] = {}
            for label, idx in self.labels:
                if label in labels:
                    raise ProgramError(
                        f"duplicate label {label!r}: defined at index "
                        f"{labels[label]} and again at index {idx}"
                    )
                labels[label] = idx
            self.labels = labels
        for i, inst in enumerate(self.instructions):
            inst.index = i
        self._validate()

    def _validate(self) -> None:
        n = len(self.instructions)
        for label, idx in self.labels.items():
            if not isinstance(idx, int) or not 0 <= idx <= n:
                raise ProgramError(f"label {label!r} out of range: {idx}")
        for inst in self.instructions:
            if not inst.is_branch:
                continue
            if inst.target not in self.labels:
                raise ProgramError(
                    f"branch at {inst.index} targets unknown label "
                    f"{inst.target!r}"
                )
            target_idx = self.labels[inst.target]
            if target_idx >= n:
                raise ProgramError(
                    f"branch at {inst.index} targets label "
                    f"{inst.target!r} which points past the end of the "
                    f"program (index {target_idx} of {n} instructions)"
                )
        for addr in self.memory_image:
            if addr % WORD_SIZE != 0:
                raise ProgramError(f"unaligned memory-image address: {addr}")

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def target_index(self, inst: Instruction) -> int:
        """Resolve the instruction index a branch jumps to."""
        if inst.target is None:
            raise ProgramError(f"instruction at {inst.index} has no target")
        return self.labels[inst.target]

    def restart_count(self) -> int:
        """Number of RESTART directives present (after compilation)."""
        return sum(
            1 for i in self.instructions if i.opcode is Opcode.RESTART
        )

    def render(self) -> str:
        """Render the whole program as assembly text."""
        by_index: Dict[int, List[str]] = {}
        for label, idx in self.labels.items():
            by_index.setdefault(idx, []).append(label)
        lines = []
        for inst in self.instructions:
            for label in sorted(by_index.get(inst.index, ())):
                lines.append(f"{label}:")
            lines.append(f"    {inst.render()}")
        for label in sorted(by_index.get(len(self.instructions), ())):
            lines.append(f"{label}:")
        return "\n".join(lines)

    def static_load_indices(self) -> List[int]:
        """Indices of all static load instructions."""
        return [i.index for i in self.instructions if i.is_load]


def word_addr(index: int, base: int = 0) -> int:
    """Byte address of the ``index``-th word starting at byte ``base``."""
    return base + index * WORD_SIZE


def check_alignment(addr: int, context: Optional[str] = None) -> int:
    """Validate that ``addr`` is word aligned; return it unchanged."""
    if addr % WORD_SIZE != 0:
        where = f" in {context}" if context else ""
        raise ProgramError(f"unaligned address {addr}{where}")
    return addr
