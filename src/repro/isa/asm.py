"""Textual assembly parser — round-trips ``Program.render()`` output.

The syntax is the one produced by :meth:`Instruction.render`::

    loop:
        ld r4 = r2, 0
        (p1) add r1 = r1, r4 ;;
        cmplti p1 = r3, 1
        br p1?  -- no; branches render as:  br 'loop'
        halt

Grammar per line (after stripping comments introduced by ``#``)::

    [label:]*
    [(pN)] mnemonic [dests =] [srcs] [, imm] [, target] [;;]

The parser exists for tests, examples and for writing small kernels as
strings; workloads use :class:`~repro.isa.builder.ProgramBuilder`.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from .instruction import Instruction
from .opcodes import MNEMONIC_TO_OPCODE, spec_of
from .program import Program, ProgramError
from .registers import TRUE_PRED, parse_reg

_LABEL_RE = re.compile(r"^([A-Za-z_][\w.]*):$")
_PRED_RE = re.compile(r"^\((p\d+)\)$")


class AsmError(ProgramError):
    """Raised on malformed assembly text."""


def _parse_operand(token: str):
    """Classify one operand token: register id, immediate, or label."""
    token = token.strip()
    try:
        return ("reg", parse_reg(token))
    except ValueError:
        pass
    try:
        return ("imm", int(token, 0))
    except ValueError:
        pass
    try:
        return ("imm", float(token))
    except ValueError:
        pass
    if token.startswith("'") and token.endswith("'"):
        return ("label", token[1:-1])
    if re.fullmatch(r"[A-Za-z_][\w.]*", token):
        return ("label", token)
    raise AsmError(f"cannot parse operand {token!r}")


def _parse_line(line: str, lineno: int) -> Instruction:
    stop = False
    if line.endswith(";;"):
        stop = True
        line = line[:-2].strip()

    pred = TRUE_PRED
    match = _PRED_RE.match(line.split()[0]) if line else None
    if match:
        pred = parse_reg(match.group(1))
        line = line[line.index(")") + 1:].strip()

    if not line:
        raise AsmError(f"line {lineno}: empty instruction")
    mnemonic, _, rest = line.partition(" ")
    opcode = MNEMONIC_TO_OPCODE.get(mnemonic)
    if opcode is None:
        raise AsmError(f"line {lineno}: unknown mnemonic {mnemonic!r}")

    dest_text, eq, src_text = rest.partition("=")
    if not eq:
        dest_text, src_text = "", rest

    dests = tuple(
        parse_reg(tok.strip())
        for tok in dest_text.split(",") if tok.strip()
    )
    srcs: List[int] = []
    imm = None
    target: Optional[str] = None
    for tok in src_text.split(","):
        tok = tok.strip()
        if not tok:
            continue
        kind, value = _parse_operand(tok)
        if kind == "reg":
            srcs.append(value)
        elif kind == "imm":
            imm = value
        else:
            target = value

    spec = spec_of(opcode)
    if spec.is_branch and target is None:
        raise AsmError(f"line {lineno}: branch without target")
    if spec.has_imm and imm is None:
        imm = 0
    return Instruction(opcode, dests, tuple(srcs), imm=imm, pred=pred,
                       target=target, stop=stop)


def parse_asm(text: str, name: str = "asm",
              memory_image: Optional[Dict[int, object]] = None) -> Program:
    """Parse assembly ``text`` into a sealed :class:`Program`."""
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        def define_label(label: str) -> None:
            if label in labels:
                raise AsmError(
                    f"line {lineno}: duplicate label {label!r} "
                    f"(first defined at index {labels[label]})")
            labels[label] = len(instructions)

        while True:
            match = _LABEL_RE.match(line.split()[0]) if line else None
            if match is None:
                # A label may share a line with an instruction.
                head, _, tail = line.partition(":")
                if tail and re.fullmatch(r"[A-Za-z_][\w.]*", head):
                    define_label(head)
                    line = tail.strip()
                    if not line:
                        break
                    continue
                break
            define_label(match.group(1))
            line = line[len(match.group(0)):].strip()
            if not line:
                break
        if line:
            instructions.append(_parse_line(line, lineno))
    return Program(name=name, instructions=instructions, labels=labels,
                   memory_image=dict(memory_image or {}))
