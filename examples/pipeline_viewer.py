#!/usr/bin/env python
"""Visualize the multipass pipeline's operating modes over time.

Runs a workload on the multipass core with per-cycle mode recording
(paper Fig. 3: architectural / advance / rally) and renders:

* a mode strip over the whole run,
* the DEQ (architectural) vs PEEK (advance) pointer excursion around one
  advance episode,
* the Fig. 6-style stacked stall bars for in-order vs multipass vs OOO.

Run:  python examples/pipeline_viewer.py [workload] [scale]
"""

import sys

from repro.harness import TraceCache, run_matrix, run_model
from repro.harness.charts import fig6_chart, mode_strip, speedup_bars
from repro.multipass import Mode, MultipassCore


def pointer_excursion(core, width=64):
    """Render the PEEK pointer's lead over DEQ around the first episode."""
    advance_samples = [(cycle, arch, adv)
                       for cycle, mode, arch, adv in core.mode_log
                       if mode is Mode.ADVANCE]
    if not advance_samples:
        return "(no advance episode occurred)"
    start = advance_samples[0][0]
    window = [s for s in core.mode_log if start <= s[0] < start + width]
    lines = [f"PEEK lead over DEQ, cycles {start}..{start + width} "
             f"(one row per 4 cycles):"]
    for cycle, mode, arch, adv in window[::4]:
        lead = max(0, adv - arch)
        lines.append(f"  cycle {cycle:>6} {mode.value[:4]:>4} "
                     f"lead={lead:>3} |{'>' * min(60, lead)}")
    return "\n".join(lines)


def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.15
    cache = TraceCache(scale)
    trace = cache.trace(workload)

    core = MultipassCore(trace, record_modes=True)
    stats = core.run()
    print(f"{workload} on the multipass core: {stats.cycles} cycles, "
          f"{stats.counters['advance_entries']} advance episodes, "
          f"{stats.counters['advance_restarts']} restarts\n")
    print(mode_strip(core.mode_log))
    print()
    print(pointer_excursion(core))

    print("\n" + "=" * 72)
    matrix = run_matrix(("inorder", "multipass", "ooo"),
                        workloads=(workload,), cache=cache)
    print(fig6_chart(matrix))

    base = matrix.get(workload, "inorder").cycles
    speedups = {
        model: base / run_model(model, trace).cycles
        for model in ("multipass", "runahead", "twopass", "ooo",
                      "ooo-realistic")
    }
    print("speedup over in-order:")
    print(speedup_bars(speedups))


if __name__ == "__main__":
    main()
