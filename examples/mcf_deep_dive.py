#!/usr/bin/env python
"""Deep dive into mcf — the paper's worst cache-miss benchmark.

Reproduces the Section 5.2 callout (a large memory-stall reduction under
multipass), shows the per-category cycle breakdown for every model,
dissects multipass internals (passes, restarts, merges, value-based
verification), and compares the Table 1 structure power of the multipass
machine against the out-of-order machine on this workload.

Run:  python examples/mcf_deep_dive.py [scale]
"""

import sys

from repro.harness import TraceCache, run_model
from repro.pipeline import StallCategory
from repro.power import average_ratios, multipass_power, ooo_power


def breakdown_line(stats, base_cycles):
    cells = " ".join(
        f"{category.value}={stats.cycle_breakdown[category] / base_cycles:6.3f}"
        for category in StallCategory)
    return (f"{stats.model:>14}: {stats.cycles:>8} cycles "
            f"(norm {stats.cycles / base_cycles:5.3f})  {cells}")


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    cache = TraceCache(scale)
    trace = cache.trace("mcf")
    counts = trace.dynamic_counts()
    print(f"mcf at scale {scale}: {counts['total']} dynamic instructions, "
          f"{counts['loads']} loads, {counts['restarts']} dynamic RESTARTs")

    print("\n-- cycle breakdowns (normalized to in-order) "
          "---------------------------")
    base = run_model("inorder", trace)
    stats = {"inorder": base}
    for model in ("multipass", "runahead", "ooo", "ooo-realistic"):
        stats[model] = run_model(model, trace)
    for model, s in stats.items():
        print(breakdown_line(s, base.cycles))

    mp = stats["multipass"]
    mem_reduction = 1 - mp.cycle_breakdown[StallCategory.LOAD] \
        / base.cycle_breakdown[StallCategory.LOAD]
    stall_reduction = 1 - mp.stall_cycles / base.stall_cycles
    print(f"\nmemory-stall reduction under multipass: {mem_reduction:.1%}"
          f"  [paper: 56%]")
    print(f"total-stall reduction under multipass:  {stall_reduction:.1%}"
          f"  [paper: 47%]")

    print("\n-- multipass internals "
          "------------------------------------------------")
    interesting = (
        "advance_entries", "advance_restarts", "advance_executions",
        "advance_deferrals", "advance_merges", "rally_merges",
        "advance_load_misses", "sbit_loads", "sbit_verifications",
        "value_flushes", "asc_forwards", "advance_wrong_path",
    )
    for key in interesting:
        print(f"  {key:>22}: {mp.counters.get(key, 0)}")

    print("\n-- Table 1 structure power on this run "
          "--------------------------------")
    mp_power = multipass_power(mp, trace)
    ooo_power_bd = ooo_power(stats["ooo"], trace)
    print(f"  multipass structures: {mp_power.total():8.3f} W "
          f"({', '.join(f'{k}={v:.2f}' for k, v in mp_power.watts.items())})")
    print(f"  OOO structures:       {ooo_power_bd.total():8.3f} W "
          f"({', '.join(f'{k}={v:.2f}' for k, v in ooo_power_bd.watts.items())})")
    ratios = average_ratios(ooo_power_bd, mp_power)
    for row, ratio in ratios.items():
        print(f"  average ratio, {row:>16}: {ratio:5.2f}x "
              f"(OOO costs more when > 1)")


if __name__ == "__main__":
    main()
