#!/usr/bin/env python
"""Figure 1 recreated: execution/memory timelines for the four models.

Builds the paper's running example — loads A, C and E with consumers B, D
and F, where A misses long (main memory), C misses short (L2) and E's
address depends on C — and renders an ASCII timeline of when each model
starts and finishes the three cache-miss handlings, plus when execution
completes.

* In-order (Fig. 1a): the misses serialize behind the stall-on-use gaps.
* Runahead (Fig. 1b): C' overlaps A, but E' misses its chance — its miss
  starts only after C's data returns architecturally.
* Ideal OOO (Fig. 1c): E issues the moment C's miss completes.
* Multipass (Fig. 1d): the advance restart re-reaches E'' once C's short
  miss has returned, overlapping E's handling with A's.

Run:  python examples/timeline_demo.py
"""

from repro import CompileOptions, compile_program, execute
from repro.isa import P, ProgramBuilder, R
from repro.multipass import MultipassCore
from repro.ooo import IdealOOOCore
from repro.pipeline import InOrderCore
from repro.runahead import RunaheadCore

ADDR_A = 0x400000      # long miss (cold -> main memory)
ADDR_C = 0x500000      # short miss (pre-touched into the L2)
ADDR_E_BASE = 0x600000


def build_example():
    b = ProgramBuilder("fig1")
    b.data_word(ADDR_C, 0)              # C loads 0 -> E's address base
    b.movi(R(1), ADDR_A)
    b.movi(R(2), ADDR_C)
    b.movi(R(9), ADDR_E_BASE)
    b.ld(R(3), R(1), 0)                 # A: long miss
    b.add(R(4), R(3), R(3))             # B: consumer of A
    b.ld(R(5), R(2), 0)                 # C: short miss
    b.restart(R(5))                     # compiler RESTART after C
    b.add(R(6), R(5), R(9))             # E's address depends on C
    b.ld(R(7), R(6), 0)                 # E: chained long miss
    b.add(R(8), R(7), R(7))             # F: consumer of E
    b.halt()
    return compile_program(b.build(),
                           CompileOptions(reorder=False, restarts=False))


class MemoryRecorder:
    """Wraps a core's hierarchy to log miss-handling intervals."""

    def __init__(self, core):
        self.events = []
        hierarchy = core.hierarchy
        original = hierarchy.access

        def recording_access(addr, now, kind="load"):
            result = original(addr, now, kind=kind)
            if kind != "ifetch" and result.latency > 1:
                self.events.append((addr, now, result.ready))
            return result

        hierarchy.access = recording_access

    def interval(self, addr):
        for event_addr, start, end in self.events:
            if event_addr == addr:
                return start, end
        return None


def render(model_name, recorder, cycles, width=72):
    print(f"\n{model_name}  (total {cycles} cycles)")
    scale = max(1, cycles // width + 1)
    for label, addr in (("A", ADDR_A), ("C", ADDR_C),
                        ("E", ADDR_E_BASE)):
        interval = recorder.interval(addr)
        if interval is None:
            print(f"  MEM {label}: (hit or never issued)")
            continue
        start, end = interval
        bar = " " * (start // scale) + "#" * max(1, (end - start) // scale)
        print(f"  MEM {label}: |{bar[:width]}|  cycles {start}..{end}")
    exe = "=" * min(width, cycles // scale)
    print(f"  EXE  : |{exe}|")


def main():
    program = build_example()
    trace = execute(program)
    cores = [
        ("in-order      (Fig. 1a)", InOrderCore(trace)),
        ("runahead      (Fig. 1b)", RunaheadCore(trace)),
        ("ideal OOO     (Fig. 1c)", IdealOOOCore(trace)),
        ("multipass     (Fig. 1d)", MultipassCore(trace)),
    ]
    totals = {}
    for name, core in cores:
        # Pre-touch C's line into the L2 so it is a short miss.
        core.hierarchy.l2.fill(ADDR_C)
        if core.hierarchy.l3:
            core.hierarchy.l3.fill(ADDR_C)
        recorder = MemoryRecorder(core)
        stats = core.run()
        totals[name] = stats.cycles
        render(name, recorder, stats.cycles)

    print("\nsummary:")
    base = totals["in-order      (Fig. 1a)"]
    for name, cycles in totals.items():
        print(f"  {name}: {cycles:>4} cycles  "
              f"({base / cycles:4.2f}x vs in-order)")
    print("\nNote how only ideal OOO and multipass overlap E's miss with "
          "A's —\nmultipass gets there via the advance restart after C.")


if __name__ == "__main__":
    main()
