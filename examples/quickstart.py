#!/usr/bin/env python
"""Quick start: build a kernel, compile it, and race the four machines.

Demonstrates the core public API:

* :class:`repro.ProgramBuilder` — write a small EPIC program,
* :func:`repro.compile_program` — schedule it, form issue groups and
  insert advance-restart directives (paper Section 3.3),
* :func:`repro.execute` — golden functional run producing the trace,
* the four timing models — in-order, multipass, runahead, ideal OOO.

Run:  python examples/quickstart.py
"""

from repro import (ProgramBuilder, compile_program, execute,
                   quick_comparison, simulate_inorder, simulate_multipass,
                   simulate_ooo, simulate_runahead)
from repro.isa import P, R


def build_pointer_chase():
    """A miniature mcf: a pointer chase gating scattered long misses."""
    b = ProgramBuilder("chase-demo")

    n_nodes, region_words = 256, 1 << 18
    node_base, region_base = 0x1000, 0x100000
    import random
    rng = random.Random(7)
    order = list(range(1, n_nodes))
    rng.shuffle(order)
    ring = [0] + order
    for pos, i in enumerate(ring):
        succ = ring[(pos + 1) % n_nodes]
        far = region_base + rng.randrange(region_words) * 4
        b.data_word(node_base + i * 16, far)                 # data pointer
        b.data_word(node_base + i * 16 + 4, node_base + succ * 16)
        b.data_word(far, rng.randrange(100))

    node, far_ptr, value, acc, count = R(1), R(2), R(3), R(4), R(5)
    b.movi(node, node_base)
    b.movi(acc, 0)
    b.movi(count, 200)
    b.label("loop")
    b.ld(node, node, 4)        # node = node->next      (critical SCC)
    b.ld(far_ptr, node, 0)     # chained pointer
    b.ld(value, far_ptr, 0)    # chained long miss
    b.add(acc, acc, value)
    b.subi(count, count, 1)
    b.cmpnei(P(1), count, 0)
    b.br("loop", pred=P(1))
    b.st(acc, node, 8)
    b.halt()
    return b.build()


def main():
    # --- hand-written kernel through the whole pipeline ---------------
    program = compile_program(build_pointer_chase())
    print(f"compiled kernel: {len(program)} static instructions, "
          f"{program.restart_count()} RESTART directive(s) inserted\n")

    trace = execute(program)
    print(f"golden trace: {len(trace)} dynamic instructions\n")

    results = {
        "in-order": simulate_inorder(trace),
        "multipass": simulate_multipass(trace),
        "runahead": simulate_runahead(trace),
        "ideal OOO": simulate_ooo(trace),
    }
    base_cycles = results["in-order"].cycles
    print(f"{'model':>10} {'cycles':>9} {'IPC':>6} {'speedup':>8}")
    for name, stats in results.items():
        print(f"{name:>10} {stats.cycles:>9} {stats.ipc:>6.2f} "
              f"{base_cycles / stats.cycles:>7.2f}x")

    mp = results["multipass"]
    print(f"\nmultipass internals: "
          f"{mp.counters['advance_entries']} advance episodes, "
          f"{mp.counters['advance_restarts']} restarts, "
          f"{mp.counters['rally_merges']} rally merges")

    # --- one-liner over a packaged SPEC-like workload ------------------
    print()
    print(quick_comparison("mcf", scale=0.2))


if __name__ == "__main__":
    main()
