#!/usr/bin/env python
"""Design-space exploration with the multipass core.

Sweeps the multipass-specific structures around their Table 2 values —
instruction-queue size, advance store cache geometry, restart refill
penalty — and the shared memory hierarchy, showing where the paper's
chosen design point sits.

Run:  python examples/design_space.py [workload] [scale]
"""

import sys
from dataclasses import replace

from repro.harness import TraceCache
from repro.machine import MachineConfig
from repro.memory.configs import HIERARCHIES
from repro.multipass import MultipassCore
from repro.pipeline import InOrderCore


def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.3
    trace = TraceCache(scale).trace(workload)
    base_cycles = InOrderCore(trace).run().cycles
    print(f"{workload} at scale {scale}: in-order baseline "
          f"{base_cycles} cycles\n")

    print("instruction-queue size (Table 2 value: 256)")
    for iq in (32, 64, 128, 256, 512):
        config = MachineConfig(multipass_queue_size=iq)
        cycles = MultipassCore(trace, config).run().cycles
        marker = "  <- paper" if iq == 256 else ""
        print(f"  IQ={iq:>4}: {cycles:>9} cycles "
              f"(speedup {base_cycles / cycles:5.2f}x){marker}")

    print("\nadvance store cache (Table 1 value: 64 entries, 2-way)")
    for entries, assoc in ((16, 2), (64, 2), (64, 4), (256, 2)):
        config = MachineConfig(asc_entries=entries, asc_assoc=assoc)
        stats = MultipassCore(trace, config).run()
        marker = "  <- paper" if (entries, assoc) == (64, 2) else ""
        print(f"  ASC={entries:>4}x{assoc}: {stats.cycles:>9} cycles, "
              f"{stats.counters.get('sbit_loads', 0):>5} data-speculative "
              f"loads{marker}")

    print("\nadvance-restart refill penalty (pipe re-traversal)")
    for refill in (0, 3, 8, 16):
        config = MachineConfig(advance_restart_refill=refill)
        cycles = MultipassCore(trace, config).run().cycles
        print(f"  refill={refill:>2}: {cycles:>9} cycles "
              f"(speedup {base_cycles / cycles:5.2f}x)")

    print("\nmemory hierarchies (Fig. 7)")
    for name, factory in HIERARCHIES.items():
        config = MachineConfig().with_hierarchy(factory())
        base = InOrderCore(trace, config).run().cycles
        mp = MultipassCore(trace, config).run().cycles
        print(f"  {name:>8}: in-order {base:>9}, multipass {mp:>9} "
              f"(speedup {base / mp:5.2f}x)")


if __name__ == "__main__":
    main()
