"""Golden per-workload stats for every primary timing model.

Each ``tests/golden/<workload>.json`` pins cycles, committed
instructions, the four-way stall breakdown, branch-prediction accuracy
and the full event-counter dict at scale 0.1 for all five primary
models.  Any drift — a timing-model change, a compiler-pass
change, a workload-generator change — fails here; regenerate the files
deliberately with::

    pytest tests/integration/test_golden_stats.py --update-golden

and explain the shift in the commit message.  (The kernel-level golden
cycle counts in ``test_golden.py`` cover the same ground at a much
finer grain; this file covers the full workloads the figures use.)
"""

import json
from pathlib import Path

import pytest

from repro.analysis.bounds import cycle_lower_bound
from repro.harness import MODEL_FACTORIES, TraceCache, run_model
from repro.pipeline.stats import StallCategory
from repro.workloads import ALL_WORKLOADS

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden"
SCALE = 0.1
MODELS = sorted(MODEL_FACTORIES)

#: One functional execution per workload, shared by all parametrizations.
_TRACES = TraceCache(SCALE)


def _payload(stats):
    return {
        "cycles": stats.cycles,
        "instructions": stats.instructions,
        "stalls": {category.value: stats.cycle_breakdown[category]
                   for category in StallCategory},
        # The full counter dict pins poll/event counts that totals can
        # hide: a fast-forward span that forgets to replicate per-cycle
        # counters (the PR 5 idle-skip bug class) drifts here even when
        # cycles agree.
        "branch_accuracy": stats.branch_accuracy,
        "counters": {name: int(value)
                     for name, value in sorted(stats.counters.items())},
    }


def _simulate(workload):
    trace = _TRACES.trace(workload)
    return {model: _payload(run_model(model, trace)) for model in MODELS}


@pytest.mark.parametrize("workload", ALL_WORKLOADS)
def test_golden_stats(workload, request):
    actual = _simulate(workload)
    # The static cycle-bound oracle must hold on the full golden matrix:
    # no model may simulate fewer cycles than the dependence-height
    # lower bound of the workload's trace.
    bound = cycle_lower_bound(_TRACES.trace(workload)).bound
    for model in MODELS:
        assert bound <= actual[model]["cycles"], (
            f"{workload}/{model}: simulated {actual[model]['cycles']} "
            f"cycles below the static lower bound {bound} (AUD001)")
    path = GOLDEN_DIR / f"{workload}.json"
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(actual, indent=2, sort_keys=True)
                        + "\n")
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"missing golden file {path}; generate it with "
        f"pytest {Path(__file__).name} --update-golden")
    golden = json.loads(path.read_text())
    drifted = {
        model: {"golden": golden.get(model), "actual": actual[model]}
        for model in MODELS if golden.get(model) != actual[model]
    }
    assert not drifted, (
        f"{workload}: stats drifted from tests/golden/{path.name} — "
        f"rerun with --update-golden only for deliberate model changes:\n"
        + json.dumps(drifted, indent=2, sort_keys=True))
    assert sorted(golden) == MODELS, (
        f"{workload}: golden file models {sorted(golden)} != {MODELS}; "
        f"regenerate with --update-golden")
