"""Cross-model integration tests on the packaged workloads.

Small-scale runs (footprints shrink with scale, so these check
*invariants and orderings that must hold at any scale*, not the
full-scale calibrated magnitudes — those are asserted by the benchmark
suite)."""

import pytest

from repro.harness import TraceCache, run_model
from repro.machine import MachineConfig
from repro.memory.configs import config1_hierarchy

SCALE = 0.06
WORKLOADS = ("mcf", "gzip", "crafty", "equake")
MODELS = ("inorder", "multipass", "runahead", "ooo", "ooo-realistic")


@pytest.fixture(scope="module")
def cache():
    return TraceCache(SCALE)


@pytest.fixture(scope="module")
def results(cache):
    out = {}
    for workload in WORKLOADS:
        trace = cache.trace(workload)
        out[workload] = {m: run_model(m, trace) for m in MODELS}
    return out


@pytest.mark.parametrize("workload", WORKLOADS)
def test_every_model_commits_the_trace(results, cache, workload):
    n = len(cache.trace(workload))
    for model, stats in results[workload].items():
        assert stats.instructions == n, model


@pytest.mark.parametrize("workload", WORKLOADS)
def test_breakdowns_account_for_all_cycles(results, workload):
    for model, stats in results[workload].items():
        assert sum(stats.cycle_breakdown.values()) == stats.cycles, model


@pytest.mark.parametrize("workload", WORKLOADS)
def test_multipass_at_least_matches_inorder(results, workload):
    base = results[workload]["inorder"].cycles
    mp = results[workload]["multipass"].cycles
    assert mp <= base * 1.08 + 32, workload


@pytest.mark.parametrize("workload", WORKLOADS)
def test_ideal_ooo_is_the_upper_bound(results, workload):
    ooo = results[workload]["ooo"].cycles
    for model in ("inorder", "multipass", "runahead"):
        assert ooo <= results[workload][model].cycles * 1.05, model


@pytest.mark.parametrize("workload", ("mcf", "equake"))
def test_memory_bound_ordering(results, workload):
    """On miss-dominated workloads: OOO <= MP <= runahead-ish <= base."""
    r = results[workload]
    assert r["ooo"].cycles < r["inorder"].cycles
    assert r["multipass"].cycles < r["inorder"].cycles
    assert r["multipass"].cycles <= r["runahead"].cycles * 1.10


def test_ipc_bounded_by_issue_width(results):
    for workload in WORKLOADS:
        for model, stats in results[workload].items():
            assert stats.ipc <= 6.0 + 1e-9, (workload, model)


def test_memory_stats_populated(results):
    for workload in WORKLOADS:
        for stats in results[workload].values():
            assert stats.memory is not None
            assert stats.memory.accesses["L1D"] > 0


def test_alternate_hierarchy_slows_memory_workloads(cache):
    trace = cache.trace("mcf")
    base = run_model("inorder", trace)
    slow = run_model(
        "inorder", trace,
        MachineConfig().with_hierarchy(config1_hierarchy()))
    assert slow.cycles > base.cycles   # 200- vs 145-cycle main memory


def test_summary_renders(results):
    text = results["mcf"]["multipass"].summary()
    assert "multipass/mcf" in text
    assert "execution" in text
