"""Figure-6 accounting invariant: the breakdown is a partition.

Every cycle a core spends must be charged to exactly one of the four
stall categories, so the per-category counts must sum to ``cycles`` —
for every model on every workload.  A core that double-charges or
leaks cycles corrupts Figure 6 silently; this pins the identity at
smoke scale.
"""

import pytest

from repro.harness import MODEL_FACTORIES, TraceCache, run_model
from repro.workloads import ALL_WORKLOADS

SCALE = 0.05
MODELS = sorted(MODEL_FACTORIES)

_TRACES = TraceCache(SCALE)


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("workload", ALL_WORKLOADS)
def test_cycle_breakdown_partitions_cycles(workload, model):
    stats = run_model(model, _TRACES.trace(workload))
    total = sum(stats.cycle_breakdown.values())
    assert total == stats.cycles, (
        f"{model}/{workload}: breakdown sums to {total}, "
        f"cycles={stats.cycles}")
    assert stats.instructions == len(_TRACES.trace(workload))
