"""Golden regression tests: pinned cycle counts on fixed kernels.

These exist to catch unintended behaviour changes in the timing models.
If a *deliberate* model change shifts these numbers, update the pinned
values and note the reason in the commit — the other assertions in the
suite (orderings, invariants, paper shapes) establish correctness; this
file establishes stability.
"""

import pytest

from repro.compiler import CompileOptions
from repro.harness import run_model
from tests.conftest import build_trace
from tests.multipass.test_core import (overlap_kernel, persistence_kernel,
                                       restart_kernel)

NO_REORDER = CompileOptions(reorder=False, restarts=False)

#: kernel -> model -> exact cycle count.
GOLDEN = {
    "overlap": {
        "inorder": 292,
        "multipass": 151,
        "runahead": 154,
        "ooo": 148,
    },
    "persistence": {
        "inorder": 224,
        "multipass": 150,
        "runahead": 230,
        "ooo": 151,
    },
}

KERNELS = {
    "overlap": overlap_kernel,
    "persistence": persistence_kernel,
}


@pytest.mark.parametrize("kernel_name", sorted(GOLDEN))
def test_golden_cycle_counts(kernel_name):
    trace = build_trace(KERNELS[kernel_name], compile_opts=NO_REORDER)
    for model, expected in GOLDEN[kernel_name].items():
        stats = run_model(model, trace)
        assert stats.cycles == expected, (
            f"{kernel_name}/{model}: got {stats.cycles}, golden "
            f"{expected} — update GOLDEN only for deliberate model changes"
        )


def test_golden_restart_kernel_counters():
    trace = build_trace(restart_kernel, compile_opts=NO_REORDER)
    stats = run_model("multipass", trace)
    # Without the L2 pre-touch, C is a long miss: the RESTART still fires.
    assert stats.counters["advance_restarts"] >= 1
    assert stats.counters["rally_merges"] >= 1
