"""Bounded aggregation: histograms, adaptive series, MetricsSink."""

from repro.pipeline.stats import StallCategory
from repro.telemetry import (Event, EventKind, Histogram, IntervalSeries,
                             MetricsSink, Tracer)


def test_histogram_power_of_two_buckets():
    hist = Histogram()
    for value in (0, 1, 2, 3, 4, 100):
        hist.record(value)
    assert hist.count == 6
    assert hist.total == 110
    assert hist.max == 100
    assert hist.to_dict()["buckets"] == {
        "<=1": 2,      # 0, 1
        "<=2": 1,      # 2
        "<=4": 2,      # 3, 4
        "<=128": 1,    # 100
    }


def test_interval_series_coarsens_to_stay_bounded():
    series = IntervalSeries(interval=1, max_points=4)
    for cycle in range(16):
        series.record(cycle)
    assert len(series.points) <= 4
    assert series.interval == 4          # doubled 1 -> 2 -> 4
    assert sum(series.points) == 16


def test_record_span_distributes_across_boundaries():
    series = IntervalSeries(interval=4, max_points=16)
    series.record_span(2, 6)          # cycles 2..7 -> 2 in [0,4), 4 in [4,8)
    assert series.points[:2] == [2, 4]
    assert sum(series.points) == 6


def test_metrics_sink_aggregates_without_storing_events():
    sink = MetricsSink()
    tracer = Tracer(sink)
    tracer.fetch(0, 0, 0)
    tracer.issue(1, 0, 0)
    tracer.commit(2, 0, 0)
    for cycle in range(3, 8):
        tracer.charge(cycle, StallCategory.LOAD, seq=1, pc=4)
    for cycle in range(0, 8):
        tracer.mode(cycle, "architectural")
    tracer.cache_miss(3, 1, 4, "mem")
    tracer.finish(8)

    assert sink.events == []          # aggregation only, no storage
    summary = sink.summary()
    counters = summary["counters"]
    assert counters["events.fetch"] == 1
    assert counters["stall_cycles.load"] == 5
    assert counters["mode_cycles.architectural"] == 8
    assert counters["cache_miss.mem"] == 1
    assert summary["last_cycle"] == 8
    hist = summary["histograms"]["stall_span_cycles"]
    assert hist["count"] == 1 and hist["total"] == 5
    assert sum(summary["series"]["commits"]["points"]) == 1


def test_metrics_sink_summary_is_json_safe():
    import json

    sink = MetricsSink()
    sink.emit(Event(EventKind.MODE, 0, mode="advance", cycles=7))
    json.dumps(sink.summary())
