"""Sink behaviour: ring bounding, JSONL streaming, teeing."""

import io
import json

from repro.telemetry import (Event, EventKind, JsonlSink, NullSink,
                             RingBufferSink, TeeSink, TelemetrySink)


def events(n):
    return [Event(EventKind.COMMIT, cycle, seq=cycle, pc=0)
            for cycle in range(n)]


def test_ring_buffer_keeps_the_most_recent_events():
    sink = RingBufferSink(capacity=3)
    for event in events(10):
        sink.emit(event)
    sink.close()
    assert [e.cycle for e in sink.events] == [7, 8, 9]
    assert sink.dropped == 7


def test_ring_buffer_without_capacity_keeps_everything():
    sink = RingBufferSink()
    for event in events(5):
        sink.emit(event)
    sink.close()
    assert len(sink.events) == 5
    assert sink.dropped == 0


def test_jsonl_sink_streams_one_parseable_object_per_line():
    out = io.StringIO()
    sink = JsonlSink(out)
    for event in events(4):
        sink.emit(event)
    sink.close()
    lines = out.getvalue().strip().splitlines()
    assert len(lines) == 4
    parsed = [json.loads(line) for line in lines]
    assert [p["cycle"] for p in parsed] == [0, 1, 2, 3]
    assert all(p["kind"] == "commit" for p in parsed)


def test_jsonl_sink_limit_suppresses_the_tail():
    out = io.StringIO()
    sink = JsonlSink(out, limit=2)
    for event in events(6):
        sink.emit(event)
    sink.close()
    assert sink.emitted == 2
    assert sink.suppressed == 4
    assert len(out.getvalue().strip().splitlines()) == 2


def test_tee_fans_out_and_closes_all_sinks():
    a, b = TelemetrySink(), RingBufferSink(capacity=1)
    tee = TeeSink(a, b)
    for event in events(2):
        tee.emit(event)
    tee.close()
    assert len(a.events) == 2
    assert [e.cycle for e in b.events] == [1]


def test_null_sink_is_disabled_and_stores_nothing():
    sink = NullSink()
    assert sink.enabled is False
    for event in events(3):
        sink.emit(event)
    assert sink.events == []
