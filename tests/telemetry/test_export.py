"""Exporter validity: Chrome trace-event JSON and the pipeview."""

import io
import json

from repro.compiler import CompileOptions
from repro.harness import run_model
from repro.isa import R
from repro.telemetry import (TelemetrySink, Tracer, chrome_trace,
                             render_pipeview, write_chrome_trace)
from tests.conftest import build_trace

NO_REORDER = CompileOptions(reorder=False, restarts=False)


def stall_kernel(b):
    b.movi(R(1), 0x100000)
    b.ld(R(2), R(1), 0)
    b.add(R(3), R(2), R(2))
    for i in range(4, 16):
        b.movi(R(i), i)
    b.halt()


def traced_events(model="multipass"):
    trace = build_trace(stall_kernel, compile_opts=NO_REORDER)
    sink = TelemetrySink()
    run_model(model, trace, tracer=Tracer(sink))
    return sink.events, trace


def test_chrome_trace_is_valid_trace_event_json():
    events, _trace = traced_events()
    doc = chrome_trace(events, model="multipass", workload="t")
    # Round-trip through the serializer Perfetto would parse.
    parsed = json.loads(json.dumps(doc))
    assert isinstance(parsed["traceEvents"], list)
    phases = {e["ph"] for e in parsed["traceEvents"]}
    assert phases <= {"M", "X", "i"}
    for event in parsed["traceEvents"]:
        assert {"ph", "name", "pid", "tid"} <= set(event)
        if event["ph"] == "X":
            assert event["ts"] >= 0 and event["dur"] >= 1


def test_chrome_trace_has_mode_spans_covering_the_run():
    events, _trace = traced_events()
    doc = chrome_trace(events, model="multipass", workload="t")
    modes = [e for e in doc["traceEvents"] if e.get("cat") == "mode"]
    names = {e["name"] for e in modes}
    assert "architectural" in names and "advance" in names
    # Mode spans tile the timeline: contiguous and non-overlapping.
    spans = sorted((e["ts"], e["ts"] + e["dur"]) for e in modes)
    for (_, end), (start, _) in zip(spans, spans[1:]):
        assert start == end


def test_chrome_trace_stall_spans_carry_attribution():
    events, _trace = traced_events()
    doc = chrome_trace(events, model="multipass", workload="t")
    stalls = [e for e in doc["traceEvents"] if e.get("cat") == "stall"]
    assert stalls
    for span in stalls:
        assert span["args"]["pc"] >= 0


def test_write_chrome_trace_round_trips(tmp_path):
    events, _trace = traced_events()
    out = io.StringIO()
    write_chrome_trace(events, out, model="multipass", workload="t")
    parsed = json.loads(out.getvalue())
    assert parsed["otherData"]["model"] == "multipass"


def test_pipeview_shows_advance_overlap_under_the_stall():
    events, trace = traced_events()
    view = render_pipeview(events, trace)
    lines = view.splitlines()
    assert lines[0].startswith("pipeview:")
    body = [line for line in lines if "|" in line][1:]
    assert len(body) == len(trace)
    # The miss-shadow work preexecutes: some row shows an advance mark.
    assert any("A" in line.split("|", 1)[1] for line in body)
    # Every instruction eventually commits.
    assert all("C" in line.split("|", 1)[1] for line in body)


def test_pipeview_clips_and_notes_truncation():
    events, trace = traced_events()
    view = render_pipeview(events, trace, max_cycles=10, max_rows=4)
    assert "clipped to cycles 0..9" in view
    assert "omitted" in view


def test_pipeview_windows_a_suffix_trace_around_its_events():
    events, trace = traced_events()
    # A ring-buffered run keeps only a suffix: drop the first half.
    cut = len(events) // 2
    suffix = events[cut:]
    base = min(e.cycle for e in suffix
               if e.kind.value in ("fetch", "issue", "rs_hit", "commit"))
    view = render_pipeview(suffix, trace)
    # The ruler starts at the suffix's first milestone, not at 0...
    assert f"|{base}" in view
    # ...so the rendered rows actually carry marks.
    body = [line.split("|", 1)[1] for line in view.splitlines()
            if "|" in line][1:]
    assert any(line.strip(" .") for line in body)
