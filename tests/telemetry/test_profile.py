"""Stall-attribution profiler acceptance: the paper's story, per-PC.

On a pointer-chasing workload (mcf) the in-order baseline must spend
the plurality of its cycles stalled on loads, and multipass must
convert a large part of that share into overlap — the claim
``repro profile`` exists to make visible.
"""

from repro.harness import TraceCache
from repro.pipeline.stats import StallCategory
from repro.telemetry import profile_model, render_profile

_TRACES = TraceCache(0.05)


def test_inorder_mcf_load_stalls_dominate():
    trace = _TRACES.trace("mcf")
    stats, sink = profile_model("inorder", trace)
    totals = sink.category_totals()
    load = totals.get(StallCategory.LOAD, 0)
    assert load == max(stats.cycle_breakdown.values())
    assert load > stats.cycles * 0.3


def test_multipass_reduces_the_load_stall_share():
    trace = _TRACES.trace("mcf")
    base_stats, _ = profile_model("inorder", trace)
    mp_stats, _ = profile_model("multipass", trace)
    base_share = base_stats.load_stall_cycles / base_stats.cycles
    mp_share = mp_stats.load_stall_cycles / mp_stats.cycles
    assert mp_share < base_share


def test_hottest_sites_are_sorted_and_bounded():
    trace = _TRACES.trace("mcf")
    _stats, sink = profile_model("inorder", trace)
    sites = sink.hottest(StallCategory.LOAD, top=3)
    assert 0 < len(sites) <= 3
    cycles = [c for _pc, c in sites]
    assert cycles == sorted(cycles, reverse=True)


def test_render_profile_reports_both_models_and_the_delta():
    trace = _TRACES.trace("mcf")
    results = [profile_model("inorder", trace),
               profile_model("multipass", trace)]
    text = render_profile(results, trace, top=3)
    assert "inorder:" in text and "multipass:" in text
    assert "load-stall share of all cycles:" in text
    assert "vs inorder" in text
    # Every listed site resolves to a real instruction.
    assert "(unattributed)" not in text
