"""Tracing must be observation only: stats are bit-identical.

The overhead contract in ``repro.telemetry.events`` promises that
attaching a tracer changes nothing about the simulation; these tests
pin it for every primary model, and pin the dual property that the
traced stall spans reconcile *exactly* with the stats taxonomy.
"""

import pytest

from repro.harness import MODEL_FACTORIES, TraceCache, run_model
from repro.pipeline.stats import StallCategory
from repro.telemetry import MetricsSink, StallProfileSink, TelemetrySink, \
    Tracer

MODELS = sorted(MODEL_FACTORIES)
_TRACES = TraceCache(0.05)


def _stats_key(stats):
    return (stats.cycles, stats.instructions,
            tuple(sorted((c.value, n)
                         for c, n in stats.cycle_breakdown.items())),
            tuple(sorted(stats.counters.items())),
            stats.branch_accuracy)


@pytest.mark.parametrize("model", MODELS)
def test_traced_stats_bit_identical(model):
    trace = _TRACES.trace("mcf")
    plain = run_model(model, trace)
    traced = run_model(model, trace, tracer=Tracer(TelemetrySink()))
    assert _stats_key(plain) == _stats_key(traced)


@pytest.mark.parametrize("model", MODELS)
def test_stall_spans_reconcile_with_cycle_breakdown(model):
    trace = _TRACES.trace("mcf")
    sink = StallProfileSink()
    stats = run_model(model, trace, tracer=Tracer(sink))
    totals = sink.category_totals()
    for category in StallCategory:
        if category is StallCategory.EXECUTION:
            continue
        assert totals.get(category, 0) == \
            stats.cycle_breakdown[category], category


@pytest.mark.parametrize("model", MODELS)
def test_mode_spans_tile_the_whole_run(model):
    """For mode-emitting cores, mode occupancy sums to total cycles."""
    trace = _TRACES.trace("mcf")
    sink = MetricsSink()
    stats = run_model(model, trace, tracer=Tracer(sink))
    counters = sink.summary()["counters"]
    mode_cycles = sum(v for k, v in counters.items()
                      if k.startswith("mode_cycles."))
    if mode_cycles:                   # multipass-family cores only
        assert mode_cycles == stats.cycles
