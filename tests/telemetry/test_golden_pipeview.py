"""Golden pipeline view for a tiny deterministic advance episode.

The pipeview is the human-facing rendering of the multipass story —
fetch marks running ahead under a miss, advance marks in the shadow,
the rally merge-and-commit burst — so its exact shape is pinned the
same way the golden stats are.  Regenerate deliberately with::

    pytest tests/telemetry/test_golden_pipeview.py --update-golden
"""

from pathlib import Path

import pytest

from repro.compiler import CompileOptions
from repro.harness import run_model
from repro.isa import R
from repro.telemetry import TelemetrySink, Tracer, render_pipeview
from tests.conftest import build_trace

GOLDEN = (Path(__file__).resolve().parents[1] / "golden"
          / "pipeview_multipass.txt")

#: Deterministic layout: no reordering, no compiler restarts.
NO_REORDER = CompileOptions(reorder=False, restarts=False)


def kernel(b):
    """One long L2/memory miss with independent work behind it."""
    b.movi(R(1), 0x100000)
    b.ld(R(2), R(1), 0)
    b.add(R(3), R(2), R(2))        # trigger: consumes the miss
    for i in range(4, 12):
        b.movi(R(i), i)            # miss-shadow work, preexecutable
    b.halt()


def test_golden_pipeview(request):
    trace = build_trace(kernel, name="pipeview", compile_opts=NO_REORDER)
    sink = TelemetrySink()
    run_model("multipass", trace, tracer=Tracer(sink))
    view = render_pipeview(sink.events, trace)
    if request.config.getoption("--update-golden"):
        GOLDEN.write_text(view)
        pytest.skip(f"regenerated {GOLDEN.name}")
    assert GOLDEN.exists(), (
        f"missing {GOLDEN}; generate it with "
        "pytest tests/telemetry/test_golden_pipeview.py --update-golden")
    assert view == GOLDEN.read_text(), (
        "pipeview drifted from the golden rendering — rerun with "
        "--update-golden only for deliberate timing/exporter changes")
