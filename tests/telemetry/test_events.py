"""Tracer span bookkeeping and event serialization."""

from repro.pipeline.stats import StallCategory
from repro.telemetry import (NULL_TRACER, Event, EventKind, TelemetrySink,
                             Tracer)


def kinds(sink):
    return [e.kind for e in sink.events]


def test_event_to_dict_omits_inapplicable_fields():
    event = Event(EventKind.FETCH, 3, seq=7, pc=2)
    assert event.to_dict() == {"kind": "fetch", "cycle": 3, "seq": 7,
                               "pc": 2}
    span = Event(EventKind.STALL_END, 10, seq=1, pc=4,
                 category=StallCategory.LOAD, cycles=6)
    assert span.to_dict() == {"kind": "stall_end", "cycle": 10, "seq": 1,
                              "pc": 4, "category": "load", "cycles": 6}


def test_consecutive_same_site_charges_coalesce_into_one_span():
    sink = TelemetrySink()
    tracer = Tracer(sink)
    for cycle in range(5, 9):
        tracer.charge(cycle, StallCategory.LOAD, seq=2, pc=7)
    tracer.charge(9, StallCategory.EXECUTION)
    assert kinds(sink) == [EventKind.STALL_BEGIN, EventKind.STALL_END]
    begin, end = sink.events
    assert (begin.cycle, begin.pc) == (5, 7)
    assert (end.cycle, end.cycles) == (9, 4)


def test_category_or_pc_change_splits_the_span():
    sink = TelemetrySink()
    tracer = Tracer(sink)
    tracer.charge(0, StallCategory.LOAD, pc=1)
    tracer.charge(1, StallCategory.LOAD, pc=2)       # same cat, new pc
    tracer.charge(2, StallCategory.OTHER, pc=2)      # new category
    tracer.finish(3)
    ends = [e for e in sink.events if e.kind is EventKind.STALL_END]
    assert [(e.category, e.pc, e.cycles) for e in ends] == [
        (StallCategory.LOAD, 1, 1),
        (StallCategory.LOAD, 2, 1),
        (StallCategory.OTHER, 2, 1),
    ]


def test_multi_cycle_charge_extends_span_by_its_length():
    sink = TelemetrySink()
    tracer = Tracer(sink)
    tracer.charge(0, StallCategory.LOAD, pc=3, cycles=10)
    tracer.finish(10)
    end = sink.events[-1]
    assert end.kind is EventKind.STALL_END
    assert (end.cycle, end.cycles) == (10, 10)


def test_mode_calls_dedup_into_spans():
    sink = TelemetrySink()
    tracer = Tracer(sink)
    for cycle in range(0, 4):
        tracer.mode(cycle, "architectural")
    for cycle in range(4, 6):
        tracer.mode(cycle, "advance")
    tracer.finish(6)
    modes = [e for e in sink.events if e.kind is EventKind.MODE]
    assert [(e.mode, e.cycle, e.cycles) for e in modes] == [
        ("architectural", 0, 4), ("advance", 4, 2)]


def test_finish_is_idempotent_and_closes_open_spans():
    sink = TelemetrySink()
    tracer = Tracer(sink)
    tracer.charge(0, StallCategory.FRONT_END, pc=0)
    tracer.finish(1)
    tracer.finish(1)
    ends = [e for e in sink.events if e.kind is EventKind.STALL_END]
    assert len(ends) == 1


def test_null_tracer_is_disabled_and_inert():
    assert NULL_TRACER.enabled is False
    NULL_TRACER.fetch(0, 0, 0)
    NULL_TRACER.charge(0, StallCategory.LOAD)
    NULL_TRACER.mode(0, "advance")
    NULL_TRACER.finish(0)
