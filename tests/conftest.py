"""Shared test helpers: program construction and trace compilation.

Also registers the hypothesis profiles the property suites run under:

``dev`` (default)
    Stock randomized search — good at finding new counterexamples
    locally, where a flaky failure is a lead rather than a blocked
    merge.

``ci`` (loaded when ``REPRO_CI=1``)
    Derandomized: the example sequence is derived from each test's
    source, so two CI runs of the same tree explore the same examples
    and a red gate always reproduces locally with ``REPRO_CI=1``.
    The example budget is raised (the differential suites are the
    main correctness gate for the columnar kernels), except where a
    test pins its own ``max_examples`` for runtime reasons — per-test
    ``@settings`` take precedence over the profile by design.
"""

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.compiler import CompileOptions, compile_program
from repro.isa import ProgramBuilder, execute

settings.register_profile(
    "ci",
    derandomize=True,
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", settings.get_profile("default"))
settings.load_profile("ci" if os.environ.get("REPRO_CI") == "1" else "dev")


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="regenerate the tests/golden/ per-workload stats instead of "
             "comparing against them (commit the diff deliberately)")


def build_trace(body_fn, name="t", compile_opts=None, max_instructions=500_000):
    """Assemble, compile and functionally execute a small program.

    ``body_fn(builder)`` populates the program; the returned trace is ready
    for any timing model.
    """
    builder = ProgramBuilder(name)
    body_fn(builder)
    program = compile_program(builder.build(),
                              compile_opts or CompileOptions())
    return execute(program, max_instructions=max_instructions)


@pytest.fixture
def make_trace():
    return build_trace
