"""Shared test helpers: program construction and trace compilation."""

import pytest

from repro.compiler import CompileOptions, compile_program
from repro.isa import ProgramBuilder, execute


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="regenerate the tests/golden/ per-workload stats instead of "
             "comparing against them (commit the diff deliberately)")


def build_trace(body_fn, name="t", compile_opts=None, max_instructions=500_000):
    """Assemble, compile and functionally execute a small program.

    ``body_fn(builder)`` populates the program; the returned trace is ready
    for any timing model.
    """
    builder = ProgramBuilder(name)
    body_fn(builder)
    program = compile_program(builder.build(),
                              compile_opts or CompileOptions())
    return execute(program, max_instructions=max_instructions)


@pytest.fixture
def make_trace():
    return build_trace
