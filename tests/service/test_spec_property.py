"""Property suite pinning the job-canonicalization contract.

The spec doc promises: ``job_key`` is insensitive to list order and
multiplicity, and two specs collide **exactly** when their cell-key
sets are equal.  Both directions matter — a missed collision breaks
warm-resubmit dedup, a spurious one would serve wrong results.
"""

import pytest

hypothesis = pytest.importorskip(
    "hypothesis", reason="property tests need hypothesis")
import hypothesis.strategies as st  # noqa: E402
from hypothesis import given, settings  # noqa: E402

from repro.harness.experiment import MODEL_FACTORIES  # noqa: E402
from repro.service.spec import JobSpec  # noqa: E402
from repro.workloads import ALL_WORKLOADS  # noqa: E402

#: Fixed digest: keys must depend only on the spec under test, and
#: hashing the live source tree in every example would be pure waste.
TD = "property-test-digest"

_WORKLOADS = sorted(ALL_WORKLOADS)
_MODELS = sorted(MODEL_FACTORIES)
_SCALES = (0.05, 0.1, 1.0)

_spec_args = st.tuples(
    st.lists(st.sampled_from(_WORKLOADS), min_size=1, max_size=4),
    st.lists(st.sampled_from(_MODELS), min_size=1, max_size=3),
    st.sampled_from(_SCALES),
)


def _build(args):
    workloads, models, scale = args
    return JobSpec(workloads=tuple(workloads), models=tuple(models),
                   scale=scale)


@settings(max_examples=60)
@given(_spec_args, st.randoms(use_true_random=False))
def test_order_and_multiplicity_insensitive(args, rng):
    workloads, models, scale = args
    reference = _build(args)
    # A shuffled, duplicated rendering of the same name sets.
    shuffled_w = list(workloads) + rng.sample(workloads,
                                              k=min(2, len(workloads)))
    shuffled_m = list(models) + rng.sample(models, k=1)
    rng.shuffle(shuffled_w)
    rng.shuffle(shuffled_m)
    perturbed = JobSpec(workloads=tuple(shuffled_w),
                        models=tuple(shuffled_m), scale=scale)
    assert perturbed == reference
    assert perturbed.job_key(TD) == reference.job_key(TD)
    assert perturbed.cell_keys(TD) == reference.cell_keys(TD)


@settings(max_examples=60)
@given(_spec_args, _spec_args)
def test_job_keys_collide_exactly_when_cell_key_sets_do(a_args, b_args):
    a, b = _build(a_args), _build(b_args)
    same_cells = (set(a.cell_keys(TD).values())
                  == set(b.cell_keys(TD).values()))
    assert (a.job_key(TD) == b.job_key(TD)) == same_cells


@settings(max_examples=40)
@given(_spec_args, st.floats(0.5, 300.0))
def test_timeout_never_perturbs_identity(args, timeout):
    workloads, models, scale = args
    with_timeout = JobSpec(workloads=tuple(workloads),
                           models=tuple(models), scale=scale,
                           timeout=timeout)
    assert with_timeout.job_key(TD) == _build(args).job_key(TD)


@settings(max_examples=40)
@given(_spec_args, st.sampled_from(["machine", "compile"]))
def test_overrides_always_perturb_identity(args, kind):
    base = _build(args)
    if kind == "machine":
        mutated = JobSpec(workloads=base.workloads, models=base.models,
                          scale=base.scale,
                          machine={"fetch_width": 2})
    else:
        mutated = JobSpec(workloads=base.workloads, models=base.models,
                          scale=base.scale,
                          compile={"reorder": False})
    assert mutated.job_key(TD) != base.job_key(TD)
