"""End-to-end service tests: real HTTP server, real worker fleet.

The acceptance claims under test:

* two concurrent clients submitting the identical spec get every cell
  simulated **exactly once** between them, and both matrices are
  bit-identical to a locally run sweep;
* a warm resubmission performs zero simulations;
* failures surface through the job API with the batch engine's
  failure-row schema (exception class, cell id, retry count);
* the server shuts down cleanly — no orphan worker processes, the
  serving thread exits.

Injected runners are module-level so the fork-based fleet can pickle
them by reference (same convention as ``test_parallel_faults``).
"""

import asyncio
import threading

import pytest

from repro.harness import run_matrix
from repro.harness.parallel import simulate_cell
from repro.service import (WIRE_VERSION, JobSpec, ServiceClient,
                           ServiceError, SweepService, serve_async)

SCALE = 0.05
WORKLOADS = ("vpr", "parser")
MODELS = ("inorder", "multipass")
CELLS = len(WORKLOADS) * len(MODELS)


def _failing_runner(spec):
    if spec.model == "multipass":
        raise ValueError("injected service fault")
    return simulate_cell(spec)


@pytest.fixture(scope="module")
def serial_matrix():
    return run_matrix(MODELS, WORKLOADS, scale=SCALE, parallel=1)


class _LiveServer:
    """A served SweepService on an ephemeral loopback port."""

    def __init__(self, **service_kwargs):
        kwargs = {"jobs": 2}
        kwargs.update(service_kwargs)
        self.service = SweepService(**kwargs)
        ready = threading.Event()
        box = {}

        def publish(port):
            box["port"] = port
            ready.set()

        self.thread = threading.Thread(
            target=lambda: asyncio.run(
                serve_async(self.service, "127.0.0.1", 0,
                            ready=publish, banner=False)),
            daemon=True)
        self.thread.start()
        assert ready.wait(15), "server failed to start"
        self.port = box["port"]

    def client(self, timeout=120.0) -> ServiceClient:
        return ServiceClient("127.0.0.1", self.port, timeout=timeout)

    def stop(self):
        try:
            self.client(timeout=10.0).shutdown()
        except ServiceError:
            pass
        self.thread.join(timeout=30)
        assert not self.thread.is_alive(), "server thread leaked"


@pytest.fixture
def live_server():
    servers = []

    def start(**kwargs):
        server = _LiveServer(**kwargs)
        servers.append(server)
        return server

    yield start
    for server in servers:
        server.stop()


def test_concurrent_clients_share_one_execution(live_server,
                                                serial_matrix):
    server = live_server()
    spec = JobSpec(workloads=WORKLOADS, models=MODELS, scale=SCALE)
    reports = [None, None]
    errors = []

    def run_client(slot):
        try:
            reports[slot] = server.client().run(spec)
        except Exception as exc:  # surfaced below, with context
            errors.append(exc)

    threads = [threading.Thread(target=run_client, args=(slot,))
               for slot in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, f"client failed: {errors}"

    for report in reports:
        assert report is not None
        assert not report.failures
        # Per-cell accounting is mutually exclusive and complete.
        assert (report.simulated + report.cache_hits
                + report.deduped) == CELLS
        # Bit-identity with a locally run sweep: dataclass equality
        # over full SimStats, memory hierarchies and counters included.
        assert report.matrix.results == serial_matrix.results
        assert report.matrix.scale == SCALE

    # The acceptance criterion: between both clients, each cell was
    # simulated exactly once — the rest were dedup/cache shares.
    health = server.client().health()
    assert health["counters"]["cells_simulated"] == CELLS
    assert health["counters"]["cells_requested"] == 2 * CELLS
    assert health["counters"]["cells_failed"] == 0

    # Warm resubmission: zero simulations, same bits.
    warm = server.client().run(spec)
    assert warm.simulated == 0
    assert warm.cache_hits + warm.deduped == CELLS
    assert warm.matrix.results == serial_matrix.results
    assert server.client().health()["counters"][
        "cells_simulated"] == CELLS

    # A finished job replays its full history to late subscribers.
    replay = list(server.client().events(warm.job_id))
    kinds = [event["kind"] for event in replay]
    assert kinds[0] == "job"
    assert kinds[-1] == "done"
    assert kinds.count("cell") == CELLS
    assert replay[0]["wire_version"] == WIRE_VERSION

    # Job status reflects the completed accounting.
    status = server.client().job_status(warm.job_id)
    assert status["done"] is True
    assert status["resolved"] == CELLS
    assert status["simulated"] == 0


def test_http_error_paths_and_health(live_server):
    server = live_server()
    client = server.client(timeout=30.0)

    health = client.health()
    assert health["status"] == "ok"
    assert health["wire_version"] == WIRE_VERSION
    assert health["workers"] == 2
    assert health["jobs"] == 0
    assert health["cache"]["entries"] == 0

    with pytest.raises(ServiceError, match="404"):
        client.job_status("job-999")
    with pytest.raises(ServiceError, match="404"):
        list(client.events("job-999"))
    with pytest.raises(ServiceError, match="unknown model"):
        client._request("POST", "/jobs",
                        {"workloads": ["vpr"], "models": ["quantum"]})
    with pytest.raises(ServiceError, match="400"):
        client._request("POST", "/jobs", {"workloads": ["vpr"]})


def test_back_to_back_jobs_dedup_in_flight():
    """Two identical jobs submitted before either runs: the second
    attaches to every in-flight cell of the first — one simulation per
    cell, both complete event streams."""
    spec = JobSpec(workloads=WORKLOADS, models=MODELS, scale=SCALE)
    service = SweepService(jobs=2)

    async def drive():
        first = service.submit(spec)
        second = service.submit(spec)
        events1 = [event async for event in first.stream()]
        events2 = [event async for event in second.stream()]
        return events1, events2

    try:
        events1, events2 = asyncio.run(drive())
    finally:
        service.shutdown()

    done1, done2 = events1[-1], events2[-1]
    assert done1["kind"] == done2["kind"] == "done"
    assert done1["simulated"] == CELLS
    assert done2["deduped"] == CELLS
    assert done2["simulated"] == 0
    assert service.counters["cells_simulated"] == CELLS
    assert service.counters["cells_deduped"] == CELLS

    # Attached cells carry the very same stats payloads.
    def stats_by_cell(events):
        return {(e["workload"], e["model"]): e["stats"]
                for e in events if e["kind"] == "cell"}

    assert stats_by_cell(events1) == stats_by_cell(events2)


def test_failures_surface_with_retry_schema():
    """A raising cell degrades to a failure row — exception class,
    cell id, retry count — and the job still completes."""
    service = SweepService(jobs=1, runner=_failing_runner)

    async def drive():
        job = service.submit(JobSpec(workloads=("vpr",), models=MODELS,
                                     scale=SCALE))
        return [event async for event in job.stream()]

    try:
        events = asyncio.run(drive())
    finally:
        service.shutdown()

    cells = [e for e in events if e["kind"] == "cell"]
    [failed] = [e for e in cells if e["status"] == "failed"]
    assert (failed["workload"], failed["model"]) == ("vpr", "multipass")
    assert failed["error"].startswith("ValueError: injected")
    assert failed["attempts"] == 2, "failed cell must be retried once"
    assert "stats" not in failed

    [ok] = [e for e in cells if e["status"] == "ok"]
    assert ok["model"] == "inorder"

    done = events[-1]
    assert done["failures"] == 1
    assert (done["simulated"] + done["cache_hits"]
            + done["deduped"]) == 2
    assert service.counters["cells_failed"] == 1
