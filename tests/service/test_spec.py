"""JobSpec: the service's job language and its canonicalization.

The contract under test: a spec is a *set* of cells (order and
duplicates never matter), every malformed spec is rejected at
submission time with a :class:`SpecError`, and ``job_key`` moves
exactly when the underlying cell keys move — execution knobs like
``timeout`` are excluded.
"""

import pytest

from repro.harness.parallel import DEFAULT_MAX_INSTRUCTIONS
from repro.service.spec import JobSpec, SpecError

TD = "spec-test-digest"


def _spec(**overrides):
    base = dict(workloads=("vpr", "parser"),
                models=("inorder", "multipass"), scale=0.05)
    base.update(overrides)
    return JobSpec(**base)


class TestCanonicalization:
    def test_sorts_and_dedups_names(self):
        spec = JobSpec(workloads=("parser", "vpr", "parser"),
                       models=("multipass", "inorder", "multipass"))
        assert spec.workloads == ("parser", "vpr")
        assert spec.models == ("inorder", "multipass")

    def test_order_and_duplicates_do_not_change_the_key(self):
        a = _spec(workloads=("vpr", "parser"))
        b = _spec(workloads=("parser", "vpr", "vpr", "parser"))
        assert a.job_key(TD) == b.job_key(TD)

    def test_timeout_is_an_execution_knob_not_identity(self):
        assert _spec().job_key(TD) == _spec(timeout=5.0).job_key(TD)

    def test_scale_and_overrides_change_the_key(self):
        base = _spec().job_key(TD)
        assert _spec(scale=0.1).job_key(TD) != base
        assert _spec(machine={"fetch_width": 2}).job_key(TD) != base
        assert _spec(compile={"reorder": False}).job_key(TD) != base
        assert _spec(max_instructions=1000).job_key(TD) != base

    def test_tree_digest_changes_the_key(self):
        assert _spec().job_key(TD) != _spec().job_key("other-digest")

    def test_cells_and_cell_keys_cover_the_grid(self):
        spec = _spec()
        grid = {(w, m) for w in spec.workloads for m in spec.models}
        assert {(c.workload, c.model) for c in spec.cells()} == grid
        keys = spec.cell_keys(TD)
        assert set(keys) == grid
        assert len(set(keys.values())) == len(grid)

    def test_smoke_matches_the_sweep_smoke_grid(self):
        spec = JobSpec.smoke()
        assert spec.workloads == ("parser", "vpr")
        assert spec.models == ("inorder", "multipass")
        assert spec.scale == 0.05
        assert spec.max_instructions == DEFAULT_MAX_INSTRUCTIONS


class TestWireForm:
    def test_round_trip(self):
        spec = _spec(machine={"fetch_width": 2},
                     compile={"reorder": False}, timeout=30.0)
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_non_objects(self):
        for doc in (None, [], "spec", 7):
            with pytest.raises(SpecError):
                JobSpec.from_dict(doc)

    def test_from_dict_rejects_unknown_fields(self):
        doc = _spec().to_dict()
        doc["parallel"] = 8
        with pytest.raises(SpecError, match="parallel"):
            JobSpec.from_dict(doc)

    def test_from_dict_rejects_non_list_names(self):
        doc = _spec().to_dict()
        doc["workloads"] = "vpr"
        with pytest.raises(SpecError, match="workloads"):
            JobSpec.from_dict(doc)

    def test_from_dict_rejects_non_dict_overrides(self):
        doc = _spec().to_dict()
        doc["machine"] = ["fetch_width"]
        with pytest.raises(SpecError, match="machine"):
            JobSpec.from_dict(doc)

    def test_from_dict_rejects_unparseable_scalars(self):
        doc = _spec().to_dict()
        doc["scale"] = "fast"
        with pytest.raises(SpecError, match="malformed"):
            JobSpec.from_dict(doc)


class TestValidation:
    def test_rejects_empty_grids(self):
        with pytest.raises(SpecError, match="workload"):
            JobSpec(workloads=(), models=("inorder",))
        with pytest.raises(SpecError, match="model"):
            JobSpec(workloads=("vpr",), models=())

    def test_rejects_unknown_names(self):
        with pytest.raises(SpecError, match="unknown workload"):
            _spec(workloads=("vpr", "doom"))
        with pytest.raises(SpecError, match="unknown model"):
            _spec(models=("inorder", "quantum"))

    @pytest.mark.parametrize("field,value", [
        ("scale", 0), ("scale", -1.0), ("scale", "big"),
        ("max_instructions", 0), ("timeout", 0.0), ("timeout", -5.0),
    ])
    def test_rejects_non_positive_numbers(self, field, value):
        with pytest.raises(SpecError):
            _spec(**{field: value})

    def test_rejects_unknown_override_fields(self):
        with pytest.raises(SpecError, match="unknown machine field"):
            _spec(machine={"warp_drive": 1})
        with pytest.raises(SpecError, match="unknown compile field"):
            _spec(compile={"warp_drive": 1})

    def test_rejects_structured_override_targets(self):
        # CompileOptions.ports takes a PortModel — not expressible as a
        # flat JSON scalar, so the spec must refuse it loudly.
        with pytest.raises(SpecError, match="not overridable"):
            _spec(compile={"ports": 4})

    def test_rejects_non_scalar_override_values(self):
        with pytest.raises(SpecError, match="must be a scalar"):
            _spec(machine={"fetch_width": [2]})

    def test_override_expansion_applies(self):
        spec = _spec(machine={"fetch_width": 2},
                     compile={"reorder": False})
        assert spec.machine_config().fetch_width == 2
        assert spec.compile_options().reorder is False
