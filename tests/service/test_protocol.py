"""The wire protocol must round-trip results *bit-identically*.

This is the property the whole service stands on: a ``cell`` event is
a faithful encoding of a :class:`CellResult`, so stats that crossed
the wire compare equal — dataclass equality, every counter, every
memory field — to the locally simulated original.
"""

import json
from collections import Counter

import pytest

from repro.harness.parallel import CellResult, CellSpec, simulate_cell
from repro.memory.hierarchy import HierarchyStats
from repro.pipeline.stats import SimStats, StallCategory
from repro.service.protocol import (WIRE_VERSION, cell_event,
                                    cell_result_from_event, decode_line,
                                    encode_line)


def _synthetic_stats() -> SimStats:
    return SimStats(
        model="multipass", workload="vpr", cycles=1234,
        instructions=987,
        cycle_breakdown={StallCategory.EXECUTION: 800,
                         StallCategory.FRONT_END: 100,
                         StallCategory.OTHER: 34,
                         StallCategory.LOAD: 300},
        counters=Counter({"mispredicts": 7, "loads_issued": 42}),
        memory=HierarchyStats(
            accesses={"L1D": 50, "L1I": 200, "L2": 9, "L3": 4},
            misses={"L1D": 9, "L1I": 1, "L2": 4, "L3": 4},
            memory_accesses=4, mshr_merges=3,
            mshr_full_stall_cycles=11),
        branch_accuracy=0.875)


class TestStatsRoundTrip:
    def test_synthetic_stats_survive_json(self):
        stats = _synthetic_stats()
        wire = json.loads(json.dumps(stats.to_dict()))
        assert SimStats.from_dict(wire) == stats

    def test_memoryless_stats_survive_json(self):
        stats = _synthetic_stats()
        stats.memory = None
        assert SimStats.from_dict(stats.to_dict()) == stats

    def test_real_simulation_survives_json(self):
        # The acceptance-level claim: a genuinely simulated cell is
        # reconstructed bit-for-bit after a JSON round trip.
        for model in ("inorder", "multipass"):
            stats = simulate_cell(CellSpec("vpr", model, scale=0.05))
            wire = json.loads(json.dumps(stats.to_dict()))
            assert SimStats.from_dict(wire) == stats


class TestCellEvents:
    def test_ok_cell_round_trips(self):
        stats = _synthetic_stats()
        result = CellResult("vpr", "multipass", stats=stats,
                            attempts=1, duration=0.25)
        event = cell_event(result, source="simulated", dedup=False)
        assert event["kind"] == "cell"
        assert event["status"] == "ok"
        assert event["source"] == "simulated"
        assert event["dedup"] is False
        back = cell_result_from_event(
            decode_line(encode_line(event)))
        assert back.ok
        assert back.stats == stats
        assert (back.workload, back.model) == ("vpr", "multipass")
        assert back.attempts == 1
        assert back.cached is False

    def test_cache_hit_marks_cached(self):
        result = CellResult("vpr", "inorder", stats=_synthetic_stats())
        event = cell_event(result, source="cache", dedup=False)
        assert cell_result_from_event(event).cached is True

    def test_failure_row_round_trips_with_sweep_schema(self):
        # Satellite contract: failures carry the exception class, the
        # cell id and the retry count — the exact CellResult schema the
        # batch engine reports.
        result = CellResult("vpr", "multipass",
                            error="RuntimeError: injected fault",
                            attempts=2)
        event = cell_event(result, source="simulated", dedup=False)
        assert event["status"] == "failed"
        assert "stats" not in event
        back = cell_result_from_event(
            decode_line(encode_line(event)))
        assert not back.ok
        assert back.error == "RuntimeError: injected fault"
        assert back.attempts == 2
        assert back.stats is None


class TestWireFraming:
    def test_encode_line_is_jsonl(self):
        line = encode_line({"kind": "done", "cells": 4})
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1]
        assert decode_line(line) == {"kind": "done", "cells": 4}

    def test_decode_rejects_unkinded_or_non_object_lines(self):
        with pytest.raises(ValueError):
            decode_line(b"[1, 2, 3]\n")
        with pytest.raises(ValueError):
            decode_line(b'{"cells": 4}\n')
        with pytest.raises(ValueError):
            decode_line(b"not json at all")

    def test_wire_version_is_pinned(self):
        # Bump deliberately with a matching protocol change, never by
        # accident.
        assert WIRE_VERSION == 1
