"""Behavioural tests for the multipass pipeline core.

These exercise the paper's mechanisms in isolation on hand-built kernels:
miss overlap (Fig. 1), result persistence, advance restart (Section 3.3),
issue regrouping (Section 3.2), and value-based memory verification
(Section 3.6).  Kernels are compiled without reordering so the instruction
placement under test is preserved.
"""

import pytest

from repro.compiler import CompileOptions
from repro.isa import P, R
from repro.multipass import MultipassCore, simulate_multipass
from repro.pipeline import StallCategory, simulate_inorder
from repro.runahead import simulate_runahead
from tests.conftest import build_trace

NO_REORDER = CompileOptions(reorder=False, restarts=False)


def overlap_kernel(b):
    """Two independent cold misses with immediate consumers (Fig. 1)."""
    b.movi(R(1), 0x100000)
    b.movi(R(2), 0x200000)
    b.ld(R(3), R(1), 0)        # A: cold miss
    b.add(R(4), R(3), R(3))    # B: consumer of A -> stall-on-use
    b.ld(R(5), R(2), 0)        # C: independent cold miss
    b.add(R(6), R(5), R(5))    # D: consumer of C
    b.halt()


def persistence_kernel(b):
    """Long independent computation behind a missing load's consumer."""
    b.movi(R(1), 0x300000)
    b.ld(R(2), R(1), 0)        # cold miss
    b.add(R(3), R(2), R(2))    # consumer -> stall triggers advance
    b.movi(R(4), 3)
    for i in range(20):        # serial multiply chain, ~80 cycles
        b.mul(R(4), R(4), R(4))
    b.halt()


def traces():
    return {
        "overlap": build_trace(overlap_kernel, compile_opts=NO_REORDER),
        "persistence": build_trace(persistence_kernel,
                                   compile_opts=NO_REORDER),
    }


def test_commits_every_instruction():
    for name, trace in traces().items():
        stats = simulate_multipass(trace)
        assert stats.instructions == len(trace), name


def test_cycle_breakdown_sums():
    trace = build_trace(overlap_kernel, compile_opts=NO_REORDER)
    stats = simulate_multipass(trace)
    assert sum(stats.cycle_breakdown.values()) == stats.cycles


def test_overlaps_independent_misses():
    """In-order serializes A and C; multipass overlaps them."""
    trace = build_trace(overlap_kernel, compile_opts=NO_REORDER)
    base = simulate_inorder(trace)
    mp = simulate_multipass(trace)
    # In-order pays both misses back-to-back (~290 cycles); multipass
    # prefetches C during A's stall (~150 cycles).
    assert base.cycles > 250
    assert mp.cycles < 220
    assert mp.cycles < base.cycles * 0.75


def test_advance_mode_entered_and_rallied():
    trace = build_trace(overlap_kernel, compile_opts=NO_REORDER)
    core = MultipassCore(trace)
    stats = core.run()
    assert stats.counters["advance_entries"] >= 1
    assert stats.counters["advance_executions"] >= 1
    assert stats.counters["rally_merges"] >= 1


def test_result_persistence_beats_runahead():
    """Runahead re-executes the multiply chain after rally; MP merges it."""
    trace = build_trace(persistence_kernel, compile_opts=NO_REORDER)
    base = simulate_inorder(trace)
    ra = simulate_runahead(trace)
    mp = simulate_multipass(trace)
    # The chain is independent of the load, so in-order hides it under the
    # miss ONLY if issued before the consumer; here the consumer precedes
    # it, so base pays miss + chain serially.
    assert mp.cycles < ra.cycles
    assert mp.cycles < base.cycles * 0.8
    assert mp.counters["rally_merges"] >= 20


def test_runahead_has_no_persistence():
    trace = build_trace(persistence_kernel, compile_opts=NO_REORDER)
    ra = simulate_runahead(trace)
    assert ra.counters["rally_merges"] == 0
    assert ra.counters["rs_writes"] == 0
    assert ra.instructions == len(trace)


def restart_kernel(b):
    """Chained misses gated by a short miss (Fig. 1(d)): A long, C short,
    E depends on C, RESTART after C."""
    b.movi(R(1), 0x400000)     # A's address (cold -> memory)
    b.movi(R(2), 0x500000)     # C's address (pre-touched into L2 below)
    b.movi(R(9), 0x600000)
    b.ld(R(3), R(1), 0)        # A: long miss
    b.add(R(4), R(3), R(3))    # B: consumer of A -> trigger
    b.ld(R(5), R(2), 0)        # C: short(er) miss
    b.restart(R(5))            # compiler-inserted RESTART (Section 3.3)
    b.add(R(6), R(5), R(9))    # address of E depends on C
    b.ld(R(7), R(6), 0)        # E: chained cold miss
    b.add(R(8), R(7), R(7))    # F: consumer of E
    b.halt()
    b.data_word(0x500000, 0)   # C loads 0 -> E's address is 0x600000


def _warm_l2(core_stats_trace, hierarchy):
    hierarchy.l2.fill(0x500000)
    if hierarchy.l3:
        hierarchy.l3.fill(0x500000)


def run_mp(trace, **flags):
    core = MultipassCore(trace, **flags)
    _warm_l2(None, core.hierarchy)
    return core.run()


def test_advance_restart_overlaps_chained_miss():
    trace = build_trace(restart_kernel, compile_opts=NO_REORDER)
    with_restart = run_mp(trace, enable_restart=True)
    without_restart = run_mp(trace, enable_restart=False)
    assert with_restart.counters["advance_restarts"] >= 1
    assert without_restart.counters["advance_restarts"] == 0
    # Restart lets E's miss overlap A's; without it E is paid serially.
    assert with_restart.cycles < without_restart.cycles - 80


def test_restart_correctness():
    trace = build_trace(restart_kernel, compile_opts=NO_REORDER)
    stats = run_mp(trace, enable_restart=True)
    assert stats.instructions == len(trace)


def flush_kernel(b):
    """A deferred-address store followed by a conflicting advance load."""
    X = 0x700000
    b.data_word(0x800000, X)   # pointer cell
    b.data_word(X, 5)          # old value at X
    b.movi(R(1), 0x800000)
    b.movi(R(4), 9)            # value to store
    b.movi(R(6), X)            # the conflicting load's address
    b.ld(R(2), R(1), 0)        # A: cold miss, loads X
    b.st(R(4), R(2), 0)        # store to [X]; address depends on A
    b.ld(R(5), R(6), 0)        # loads [X] -> data speculative in advance
    b.add(R(7), R(5), R(5))    # consumer
    b.halt()


def test_value_based_verification_flushes_on_mismatch():
    trace = build_trace(flush_kernel, compile_opts=NO_REORDER)
    stats = simulate_multipass(trace)
    assert stats.counters["unknown_address_stores"] >= 1
    assert stats.counters["sbit_loads"] >= 1
    assert stats.counters["value_flushes"] >= 1
    assert stats.instructions == len(trace)


def noconflict_kernel(b):
    """Same shape as flush_kernel but the store does not alias the load."""
    X = 0x700000
    Y = 0x700100
    b.data_word(0x800000, Y)
    b.data_word(X, 5)
    b.movi(R(1), 0x800000)
    b.movi(R(4), 9)
    b.movi(R(6), X)
    b.ld(R(2), R(1), 0)
    b.st(R(4), R(2), 0)        # stores to Y, not X
    b.ld(R(5), R(6), 0)        # speculative but value unchanged
    b.add(R(7), R(5), R(5))
    b.halt()


def test_speculative_load_verifies_clean_when_no_conflict():
    trace = build_trace(noconflict_kernel, compile_opts=NO_REORDER)
    stats = simulate_multipass(trace)
    assert stats.counters["sbit_loads"] >= 1
    assert stats.counters["value_flushes"] == 0
    assert stats.counters["sbit_verifications"] >= 1


def asc_kernel(b):
    """Advance store forwards to an advance load through the ASC."""
    b.movi(R(1), 0x900000)
    b.movi(R(2), 0xA00000)
    b.movi(R(4), 77)
    b.ld(R(3), R(1), 0)        # trigger miss
    b.add(R(9), R(3), R(3))    # consumer -> advance
    b.st(R(4), R(2), 0)        # advance store, fully valid
    b.ld(R(5), R(2), 0)        # advance load, same address -> forward
    b.add(R(6), R(5), R(5))
    b.halt()


def test_asc_forwards_store_to_load():
    trace = build_trace(asc_kernel, compile_opts=NO_REORDER)
    stats = simulate_multipass(trace)
    assert stats.counters["advance_stores"] >= 1
    assert stats.counters["asc_forwards"] >= 1
    assert stats.counters["value_flushes"] == 0
    assert stats.instructions == len(trace)


def test_multipass_never_much_worse_than_inorder():
    for kernel in (overlap_kernel, persistence_kernel, flush_kernel,
                   asc_kernel):
        trace = build_trace(kernel, compile_opts=NO_REORDER)
        base = simulate_inorder(trace)
        mp = simulate_multipass(trace)
        assert mp.cycles <= base.cycles * 1.10 + 20, kernel.__name__


def test_regrouping_ablation_not_faster():
    trace = build_trace(persistence_kernel, compile_opts=NO_REORDER)
    full = MultipassCore(trace, enable_regroup=True).run()
    no_regroup = MultipassCore(trace, enable_regroup=False).run()
    assert full.cycles <= no_regroup.cycles


def test_architectural_results_unaffected():
    """Sanity: the trace the models replay is the golden one, and every
    model commits all of it exactly once."""
    trace = build_trace(flush_kernel, compile_opts=NO_REORDER)
    for simulate in (simulate_inorder, simulate_multipass,
                     simulate_runahead):
        stats = simulate(trace)
        assert stats.instructions == len(trace)
