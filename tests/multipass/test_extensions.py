"""Tests for the extension models: two-pass, hardware restart, mode log."""

import pytest

from repro.compiler import CompileOptions
from repro.harness import TraceCache, run_model
from repro.multipass import Mode, MultipassCore, TwoPassCore, simulate_twopass
from tests.conftest import build_trace
from tests.multipass.test_core import persistence_kernel, restart_kernel

NO_REORDER = CompileOptions(reorder=False, restarts=False)


class TestTwoPass:
    def test_persists_but_never_restarts(self):
        trace = build_trace(restart_kernel, compile_opts=NO_REORDER)
        stats = simulate_twopass(trace)
        assert stats.counters["advance_restarts"] == 0
        assert stats.counters.get("rs_writes", 0) > 0
        assert stats.instructions == len(trace)

    def test_matches_norestart_multipass(self):
        trace = build_trace(persistence_kernel, compile_opts=NO_REORDER)
        twopass = simulate_twopass(trace)
        norestart = MultipassCore(trace, enable_restart=False).run()
        assert twopass.cycles == norestart.cycles

    def test_registered_in_harness(self):
        trace = TraceCache(0.05).trace("crafty")
        stats = run_model("twopass", trace)
        assert stats.model == "twopass"
        assert stats.instructions == len(trace)


class TestHardwareRestart:
    def test_fires_on_fruitless_pass(self):
        """A dependent chain behind a short miss defers everything: the
        footnote-1 detector must restart without any RESTART directive."""
        def body(b):
            from repro.isa import P, R
            b.movi(R(1), 0x700000)
            b.movi(R(2), 0x710000)
            b.ld(R(3), R(1), 0)            # trigger (long miss)
            b.add(R(4), R(3), R(3))        # consumer -> advance
            b.ld(R(5), R(2), 0)            # advance load, L1 miss
            for i in range(6, 30):         # long dependent (deferred) cone
                b.add(R(i), R(i - 1), R(5))
            b.halt()

        trace = build_trace(body, compile_opts=NO_REORDER)
        core = MultipassCore(trace, enable_restart=False,
                             hardware_restart=True)
        # Make the advance load short so the restart has a rendezvous.
        core.hierarchy.l2.fill(0x710000)
        if core.hierarchy.l3:
            core.hierarchy.l3.fill(0x710000)
        stats = core.run()
        assert stats.counters.get("hardware_restarts", 0) >= 1
        assert stats.instructions == len(trace)

    def test_does_not_fire_without_pending_fills(self):
        """Pure poison with nothing in flight: restarting cannot help."""
        def body(b):
            from repro.isa import R
            b.movi(R(1), 0x720000)
            b.ld(R(2), R(1), 0)
            b.add(R(3), R(2), R(2))        # trigger; everything below
            for i in range(4, 28):         # depends only on the trigger
                b.add(R(i), R(i - 1), R(2))
            b.halt()

        trace = build_trace(body, compile_opts=NO_REORDER)
        stats = MultipassCore(trace, enable_restart=False,
                              hardware_restart=True).run()
        assert stats.counters.get("hardware_restarts", 0) == 0

    def test_registered_in_harness(self):
        trace = TraceCache(0.05).trace("mcf")
        stats = run_model("multipass-hwrestart", trace)
        assert stats.instructions == len(trace)

    def test_recovers_some_restart_benefit(self):
        """On the restart kernel, hardware restart lands between the
        no-restart and compiler-restart designs."""
        trace = build_trace(restart_kernel, compile_opts=NO_REORDER)

        def run(**kw):
            core = MultipassCore(trace, **kw)
            core.hierarchy.l2.fill(0x500000)
            if core.hierarchy.l3:
                core.hierarchy.l3.fill(0x500000)
            return core.run().cycles

        none = run(enable_restart=False)
        hw = run(enable_restart=False, hardware_restart=True,
                 hw_restart_window=4)
        compiler = run(enable_restart=True)
        assert compiler <= hw <= none + 8


class TestModeLog:
    def test_disabled_by_default(self):
        trace = build_trace(persistence_kernel, compile_opts=NO_REORDER)
        core = MultipassCore(trace)
        core.run()
        assert core.mode_log == []

    def test_records_all_three_modes(self):
        trace = build_trace(restart_kernel, compile_opts=NO_REORDER)
        core = MultipassCore(trace, record_modes=True)
        core.run()
        modes = {mode for _, mode, _, _ in core.mode_log}
        assert Mode.ARCHITECTURAL in modes
        assert Mode.ADVANCE in modes
        assert Mode.RALLY in modes
        cycles = [cycle for cycle, _, _, _ in core.mode_log]
        assert cycles == sorted(cycles)

    def test_pointers_consistent(self):
        trace = build_trace(restart_kernel, compile_opts=NO_REORDER)
        core = MultipassCore(trace, record_modes=True)
        core.run()
        for _, mode, arch, adv in core.mode_log:
            assert 0 <= arch <= len(trace)
            if mode is Mode.ADVANCE:
                assert adv >= arch - 1
