"""Unit tests for the advance store cache and result store."""

import pytest

from repro.multipass import (HIT, HIT_INVALID, INVALID, MISS,
                             MISS_SPECULATIVE, AdvanceStoreCache, RSEntry,
                             ResultStore)


class TestAdvanceStoreCache:
    def test_forwarding_hit(self):
        asc = AdvanceStoreCache()
        asc.write(0x100, 42)
        outcome, value = asc.read(0x100)
        assert outcome == HIT and value == 42

    def test_miss_when_empty(self):
        asc = AdvanceStoreCache()
        assert asc.read(0x100) == (MISS, None)

    def test_invalid_store_suppresses_load(self):
        asc = AdvanceStoreCache()
        asc.write(0x100, INVALID)
        outcome, value = asc.read(0x100)
        assert outcome == HIT_INVALID and value is None

    def test_later_store_overwrites(self):
        asc = AdvanceStoreCache()
        asc.write(0x100, 1)
        asc.write(0x100, 2)
        assert asc.read(0x100) == (HIT, 2)

    def test_replacement_marks_set_speculative(self):
        asc = AdvanceStoreCache(entries=4, assoc=2)   # 2 sets
        stride = asc.num_sets * asc.word_size         # same-set addresses
        asc.write(0x0, 1)
        asc.write(0x0 + stride, 2)
        asc.write(0x0 + 2 * stride, 3)                # evicts addr 0x0
        outcome, _ = asc.read(0x0)
        assert outcome == MISS_SPECULATIVE
        # The other set is unaffected.
        assert asc.read(0x4)[0] == MISS

    def test_clear_resets_replacement_state(self):
        asc = AdvanceStoreCache(entries=4, assoc=2)
        stride = asc.num_sets * asc.word_size
        for i in range(4):
            asc.write(i * stride, i)
        asc.clear()
        assert asc.read(0x0) == (MISS, None)

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            AdvanceStoreCache(entries=5, assoc=2)

    def test_paper_configuration(self):
        asc = AdvanceStoreCache(entries=64, assoc=2)
        assert asc.num_sets == 32


class TestResultStore:
    def test_put_get_pop(self):
        rs = ResultStore()
        rs.put(RSEntry(seq=5, ready=10))
        assert rs.get(5).ready == 10
        assert rs.pop(5).seq == 5
        assert rs.get(5) is None

    def test_done_is_time_dependent(self):
        e = RSEntry(seq=1, ready=100)
        assert not e.done(50)
        assert e.done(100)

    def test_overwrite_same_seq(self):
        rs = ResultStore()
        rs.put(RSEntry(seq=1, ready=5))
        rs.put(RSEntry(seq=1, ready=9))
        assert rs.get(1).ready == 9
        assert len(rs) == 1

    def test_clear_from_flushes_younger(self):
        rs = ResultStore()
        for seq in range(10):
            rs.put(RSEntry(seq=seq, ready=0))
        cleared = rs.clear_from(6)
        assert cleared == 4
        assert 5 in rs and 6 not in rs

    def test_max_seq(self):
        rs = ResultStore()
        assert rs.max_seq() == -1
        rs.put(RSEntry(seq=3, ready=0))
        rs.put(RSEntry(seq=7, ready=0))
        assert rs.max_seq() == 7

    def test_sbit_value_round_trip(self):
        rs = ResultStore()
        rs.put(RSEntry(seq=2, ready=0, sbit=True, value=99, addr=0x40))
        e = rs.get(2)
        assert e.sbit and e.value == 99 and e.addr == 0x40
