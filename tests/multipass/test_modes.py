"""Mode-transition and internal-invariant tests for the multipass core."""

import pytest

from repro.compiler import CompileOptions
from repro.isa import P, R
from repro.machine import MachineConfig
from repro.multipass import Mode, MultipassCore
from tests.conftest import build_trace

NO_REORDER = CompileOptions(reorder=False, restarts=False)


def stall_kernel(b):
    """One long miss with work behind it: one clean advance episode."""
    b.movi(R(1), 0x100000)
    b.ld(R(2), R(1), 0)
    b.add(R(3), R(2), R(2))    # trigger
    for i in range(4, 24):
        b.movi(R(i), i)
    b.halt()


def test_mode_transition_counters():
    trace = build_trace(stall_kernel, compile_opts=NO_REORDER)
    core = MultipassCore(trace)
    stats = core.run()
    assert stats.counters["advance_entries"] == 1
    assert stats.counters["advance_cycles"] > 0
    assert stats.counters["rally_cycles"] >= 1
    assert core.mode in (Mode.ARCHITECTURAL, Mode.RALLY)
    # The pipeline ends having committed everything.
    assert core.arch_ptr == len(trace)


def test_advance_respects_queue_window():
    """The PEEK pointer never runs past arch_ptr + IQ size."""
    def body(b):
        b.movi(R(1), 0x200000)
        b.ld(R(2), R(1), 0)
        b.add(R(3), R(2), R(2))
        for i in range(400):          # more work than the window holds
            b.movi(R(4 + (i % 20)), i)
        b.halt()

    trace = build_trace(body, compile_opts=NO_REORDER)
    config = MachineConfig(multipass_queue_size=64)
    core = MultipassCore(trace, config)

    max_lead = 0
    original = core._issue_advance_cycle

    def checked(now):
        nonlocal max_lead
        result = original(now)
        max_lead = max(max_lead, core.adv_ptr - core.arch_ptr)
        return result

    core._issue_advance_cycle = checked
    core.run()
    assert 0 < max_lead <= 64


def test_architectural_mode_uses_no_multipass_structures():
    """A kernel with no load stalls never enters advance mode."""
    def body(b):
        b.movi(R(1), 1)
        for _ in range(50):
            b.addi(R(1), R(1), 1)
        b.halt()

    trace = build_trace(body, compile_opts=NO_REORDER)
    stats = MultipassCore(trace).run()
    assert stats.counters["advance_entries"] == 0
    assert stats.counters["rs_writes"] == 0
    assert stats.counters["asc_reads"] == 0


def test_merged_values_match_golden_trace():
    """Result preservation must be architecturally invisible: every value
    the rally merges equals what the golden functional run computed."""
    def body(b):
        b.movi(R(1), 0x300000)
        b.movi(R(9), 0x400000)
        b.movi(R(10), 7)
        b.ld(R(2), R(1), 0)
        b.add(R(3), R(2), R(2))       # trigger
        b.mul(R(4), R(10), R(10))     # preexecutable work
        b.addi(R(5), R(4), 1)
        b.st(R(5), R(9), 0)           # preexecuted store
        b.ld(R(6), R(9), 0)           # forwarded through the ASC
        b.add(R(7), R(6), R(4))
        b.halt()

    trace = build_trace(body, compile_opts=NO_REORDER)
    core = MultipassCore(trace)
    stats = core.run()
    assert stats.counters["rally_merges"] > 0
    # The committed memory view matches the functional simulator's.
    for addr, value in core.mem_vals.items():
        assert trace.final_memory.get(addr, 0) == value or \
            addr in trace.program.memory_image


def test_rs_capacity_matches_queue(monkeypatch):
    trace = build_trace(stall_kernel, compile_opts=NO_REORDER)
    config = MachineConfig(multipass_queue_size=128)
    core = MultipassCore(trace, config)
    assert core.rs.capacity == 128
    assert core.buffer_size == 128


def test_flush_penalty_configurable():
    from tests.multipass.test_core import flush_kernel
    trace = build_trace(flush_kernel, compile_opts=NO_REORDER)
    fast = MultipassCore(trace, MachineConfig(flush_penalty=0)).run()
    slow = MultipassCore(trace, MachineConfig(flush_penalty=40)).run()
    assert fast.counters["value_flushes"] >= 1
    assert slow.cycles > fast.cycles


def test_restart_refill_delays_pass():
    from tests.multipass.test_core import restart_kernel, run_mp
    trace = build_trace(restart_kernel, compile_opts=NO_REORDER)
    fast = run_mp(trace, config=MachineConfig(advance_restart_refill=0))
    slow = run_mp(trace, config=MachineConfig(advance_restart_refill=30))
    assert fast.cycles <= slow.cycles


def test_persist_off_never_merges():
    trace = build_trace(stall_kernel, compile_opts=NO_REORDER)
    stats = MultipassCore(trace, persist_results=False).run()
    assert stats.counters["rally_merges"] == 0
    assert stats.counters["rs_writes"] == 0
    assert stats.instructions == len(trace)


def test_waw_flag_changes_deferral_behaviour():
    """With the §3.5 ablation, consumers wait for fills instead of
    deferring — fewer deferrals, same architectural outcome."""
    def body(b):
        b.movi(R(1), 0x500000)
        b.movi(R(9), 0x600000)
        b.ld(R(2), R(1), 0)
        b.add(R(3), R(2), R(2))       # trigger
        b.ld(R(4), R(9), 0)           # advance load: L1 miss
        b.add(R(5), R(4), R(4))       # consumer: deferred vs waiting
        b.add(R(6), R(5), R(5))
        b.halt()

    trace = build_trace(body, compile_opts=NO_REORDER)
    paper = MultipassCore(trace).run()
    ablated = MultipassCore(trace, l1_miss_writes_srf=True).run()
    assert paper.instructions == ablated.instructions == len(trace)
    assert ablated.counters["advance_deferrals"] <= \
        paper.counters["advance_deferrals"]
