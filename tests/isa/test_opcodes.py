"""Consistency tests over the opcode tables."""

import pytest

from repro.isa import FUClass, Opcode, spec_of
from repro.isa.opcodes import (DIV_LATENCY, FDIV_LATENCY, FP_LATENCY,
                               MNEMONIC_TO_OPCODE, MUL_LATENCY, OP_SPECS)


def test_every_opcode_has_a_spec():
    for op in Opcode:
        assert op in OP_SPECS, op


def test_mnemonics_unique_and_total():
    assert len(MNEMONIC_TO_OPCODE) == len(OP_SPECS)
    for mnemonic, op in MNEMONIC_TO_OPCODE.items():
        assert spec_of(op).mnemonic == mnemonic


def test_latencies_positive():
    for op, spec in OP_SPECS.items():
        assert spec.latency >= 1, op


def test_memory_ops_classified():
    for op in (Opcode.LD, Opcode.FLD):
        spec = spec_of(op)
        assert spec.is_load and spec.fu is FUClass.MEM
        assert spec.variable_latency
    for op in (Opcode.ST, Opcode.FST):
        spec = spec_of(op)
        assert spec.is_store and spec.fu is FUClass.MEM


def test_branches_classified():
    for op in (Opcode.BR, Opcode.JMP):
        assert spec_of(op).is_branch
        assert spec_of(op).fu is FUClass.BR


def test_multi_cycle_ops():
    """The 'other'-category stalls come from these latencies."""
    assert spec_of(Opcode.MUL).latency == MUL_LATENCY > 1
    assert spec_of(Opcode.DIV).latency == DIV_LATENCY > MUL_LATENCY
    assert spec_of(Opcode.FADD).latency == FP_LATENCY > 1
    assert spec_of(Opcode.FDIV).latency == FDIV_LATENCY > FP_LATENCY
    assert spec_of(Opcode.MUL).multi_cycle
    assert not spec_of(Opcode.ADD).multi_cycle
    assert not spec_of(Opcode.LD).multi_cycle   # variable, not fixed


def test_single_cycle_alu():
    for op in (Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
               Opcode.SHL, Opcode.SHR, Opcode.MOV, Opcode.MOVI):
        spec = spec_of(op)
        assert spec.latency == 1 and spec.fu is FUClass.ALU, op


def test_compares_write_predicates():
    for op in (Opcode.CMPEQ, Opcode.CMPLT, Opcode.CMPLTI, Opcode.FCMPLT):
        assert spec_of(op).writes_pred, op


def test_directives_use_no_fu():
    for op in (Opcode.NOP, Opcode.RESTART, Opcode.HALT):
        assert spec_of(op).fu is FUClass.NONE, op


def test_muldiv_shares_fp_pipe():
    """Itanium-like: integer multiply executes on the FP unit."""
    assert spec_of(Opcode.MUL).fu is FUClass.MULDIV
    assert spec_of(Opcode.DIV).fu is FUClass.MULDIV
