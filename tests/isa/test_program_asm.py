"""Tests for Program validation, rendering and the assembly round trip."""

import pytest

from repro.isa import (Instruction, Opcode, P, ProgramBuilder, ProgramError,
                       R, execute)
from repro.isa.asm import AsmError, parse_asm


def small_program():
    b = ProgramBuilder("demo")
    b.movi(R(1), 0)
    b.movi(R(2), 1)
    b.label("loop")
    b.add(R(1), R(1), R(2))
    b.addi(R(2), R(2), 1)
    b.cmplei(P(1), R(2), 5)
    b.br("loop", pred=P(1))
    b.halt()
    return b.build()


def test_indices_assigned_on_seal():
    p = small_program()
    assert [i.index for i in p] == list(range(len(p)))


def test_unknown_branch_target_rejected():
    b = ProgramBuilder("bad")
    b.br("nowhere")
    with pytest.raises(ProgramError):
        b.build()


def test_duplicate_label_rejected():
    b = ProgramBuilder("bad")
    b.label("x")
    with pytest.raises(ProgramError):
        b.label("x")


def test_pair_form_duplicate_label_rejected_at_seal():
    from repro.isa import Program
    insts = [Instruction(Opcode.MOVI, (R(1),), (), imm=1),
             Instruction(Opcode.HALT)]
    with pytest.raises(ProgramError, match="duplicate label 'x'"):
        Program("dup", insts, [("x", 0), ("x", 1)])


def test_branch_past_end_rejected_at_seal():
    from repro.isa import Program
    insts = [Instruction(Opcode.BR, target="end"),
             Instruction(Opcode.HALT)]
    with pytest.raises(ProgramError, match="past the end"):
        Program("off-end", insts, {"end": 2})


def test_label_index_out_of_range_rejected_at_seal():
    from repro.isa import Program
    insts = [Instruction(Opcode.HALT)]
    with pytest.raises(ProgramError, match="out of range"):
        Program("bad-label", insts, {"x": 99})


def test_parse_asm_rejects_duplicate_label():
    with pytest.raises(AsmError, match="duplicate label 'again'"):
        parse_asm(
            """
            again:
            movi r1 = 1
            again:
            halt
            """
        )


def test_unaligned_data_rejected():
    b = ProgramBuilder("bad")
    with pytest.raises(ProgramError):
        b.data_word(3, 1)


def test_render_contains_labels_and_predicates():
    p = small_program()
    text = p.render()
    assert "loop:" in text
    assert "(p1) br" in text


def test_asm_round_trip_executes_identically():
    p = small_program()
    reparsed = parse_asm(p.render(), name="demo2")
    t1 = execute(p)
    t2 = execute(reparsed)
    assert t1.final_registers == t2.final_registers
    assert len(t1) == len(t2)


def test_asm_round_trip_instruction_fields():
    p = small_program()
    reparsed = parse_asm(p.render())
    for a, b in zip(p.instructions, reparsed.instructions):
        assert a.opcode == b.opcode
        assert a.dests == b.dests
        assert a.srcs == b.srcs
        assert a.pred == b.pred
        assert a.target == b.target


def test_parse_asm_basic():
    p = parse_asm(
        """
        # a comment
        movi r1 = 5
        movi r2 = 3
        add r3 = r1, r2 ;;
        st r3, r3, 0
        halt
        """
    )
    assert len(p) == 5
    assert p[2].stop is True
    t = execute(p)
    assert t.final_memory[8] == 8


def test_parse_asm_rejects_unknown_mnemonic():
    with pytest.raises(AsmError):
        parse_asm("frobnicate r1 = r2")


def test_parse_asm_rejects_branch_without_target():
    with pytest.raises((AsmError, ProgramError)):
        parse_asm("br")


def test_memory_ops_render_offsets():
    i = Instruction(Opcode.LD, (R(2),), (R(1),), imm=8)
    assert "ld" in i.render() and "8" in i.render()


def test_restart_count():
    b = ProgramBuilder("r")
    b.movi(R(1), 1)
    b.restart(R(1))
    b.restart(R(1))
    b.halt()
    assert b.build().restart_count() == 2
