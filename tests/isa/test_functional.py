"""Unit tests for the golden functional simulator."""

import pytest

from repro.isa import (ExecutionLimitExceeded, F, Opcode, P, ProgramBuilder,
                       R, execute, to_int32)


def run(build_fn, **kwargs):
    b = ProgramBuilder("t")
    build_fn(b)
    return execute(b.build(), **kwargs)


def test_arithmetic_basics():
    def body(b):
        b.movi(R(1), 7)
        b.movi(R(2), 5)
        b.add(R(3), R(1), R(2))
        b.sub(R(4), R(1), R(2))
        b.mul(R(5), R(1), R(2))
        b.div(R(6), R(1), R(2))
        b.halt()

    t = run(body)
    assert t.final_registers[R(3)] == 12
    assert t.final_registers[R(4)] == 2
    assert t.final_registers[R(5)] == 35
    assert t.final_registers[R(6)] == 1


def test_int32_wraparound():
    def body(b):
        b.movi(R(1), 0x7FFFFFFF)
        b.addi(R(2), R(1), 1)
        b.halt()

    t = run(body)
    assert t.final_registers[R(2)] == -(1 << 31)


def test_to_int32_helper():
    assert to_int32(0) == 0
    assert to_int32(2**31) == -(2**31)
    assert to_int32(-1) == -1
    assert to_int32(2**32) == 0
    assert to_int32(2**31 - 1) == 2**31 - 1


def test_division_semantics():
    def body(b):
        b.movi(R(1), -7)
        b.movi(R(2), 2)
        b.div(R(3), R(1), R(2))       # C-style: trunc toward zero
        b.movi(R(4), 9)
        b.movi(R(5), 0)
        b.div(R(6), R(4), R(5))       # div by zero yields 0, no trap
        b.halt()

    t = run(body)
    assert t.final_registers[R(3)] == -3
    assert t.final_registers[R(6)] == 0


def test_shift_masks_amount():
    def body(b):
        b.movi(R(1), 1)
        b.movi(R(2), 33)              # shift amounts are mod 32
        b.shl(R(3), R(1), R(2))
        b.movi(R(4), -4)
        b.shri(R(5), R(4), 1)         # logical shift of 0xFFFFFFFC
        b.halt()

    t = run(body)
    assert t.final_registers[R(3)] == 2
    assert t.final_registers[R(5)] == 0x7FFFFFFE


def test_loads_stores_and_memory_image():
    def body(b):
        b.data_word(0x100, 42)
        b.movi(R(1), 0x100)
        b.ld(R(2), R(1), 0)
        b.addi(R(3), R(2), 1)
        b.st(R(3), R(1), 4)
        b.ld(R(4), R(1), 4)
        b.halt()

    t = run(body)
    assert t.final_registers[R(2)] == 42
    assert t.final_registers[R(4)] == 43
    assert t.final_memory[0x104] == 43


def test_uninitialized_memory_reads_zero():
    def body(b):
        b.movi(R(1), 0x2000)
        b.ld(R(2), R(1), 0)
        b.halt()

    t = run(body)
    assert t.final_registers[R(2)] == 0


def test_loop_and_branch():
    def body(b):
        b.movi(R(1), 0)   # acc
        b.movi(R(2), 1)   # i
        b.label("loop")
        b.add(R(1), R(1), R(2))
        b.addi(R(2), R(2), 1)
        b.cmplei(P(1), R(2), 10)
        b.br("loop", pred=P(1))
        b.halt()

    t = run(body)
    assert t.final_registers[R(1)] == sum(range(1, 11))


def test_predication_nullifies():
    def body(b):
        b.movi(R(1), 1)
        b.cmpeqi(P(1), R(1), 0)           # false
        b.movi(R(2), 99, pred=P(1))       # nullified
        b.movi(R(3), 7, pred=P(1))        # nullified
        b.cmpeqi(P(2), R(1), 1)           # true
        b.movi(R(4), 5, pred=P(2))        # executes
        b.halt()

    t = run(body)
    assert R(2) not in t.final_registers
    assert R(3) not in t.final_registers
    assert t.final_registers[R(4)] == 5
    nullified = [e for e in t.entries if not e.executed]
    assert len(nullified) == 2
    # Nullified entries read only their predicate and write nothing.
    for e in nullified:
        assert e.dests == ()
        assert e.srcs == (P(1),)


def test_nullified_branch_falls_through():
    def body(b):
        b.movi(R(1), 0)
        b.cmpeqi(P(1), R(1), 1)          # false
        b.br("skip", pred=P(1))          # nullified -> falls through
        b.movi(R(2), 1)
        b.label("skip")
        b.halt()

    t = run(body)
    assert t.final_registers[R(2)] == 1


def test_fp_ops():
    def body(b):
        b.fmovi(F(1), 1.5)
        b.fmovi(F(2), 2.0)
        b.fadd(F(3), F(1), F(2))
        b.fmul(F(4), F(1), F(2))
        b.fdiv(F(5), F(3), F(2))
        b.cvtfi(R(1), F(4))
        b.cvtif(F(6), R(1))
        b.fcmplt(P(1), F(1), F(2))
        b.halt()

    t = run(body)
    assert t.final_registers[F(3)] == pytest.approx(3.5)
    assert t.final_registers[F(4)] == pytest.approx(3.0)
    assert t.final_registers[F(5)] == pytest.approx(1.75)
    assert t.final_registers[R(1)] == 3
    assert t.final_registers[F(6)] == pytest.approx(3.0)
    assert t.final_registers[P(1)] is True


def test_zero_reg_ignores_writes():
    def body(b):
        b.movi(R(0), 55)
        b.mov(R(1), R(0))
        b.halt()

    t = run(body)
    assert t.final_registers[R(1)] == 0


def test_trace_entries_record_memory():
    def body(b):
        b.movi(R(1), 0x40)
        b.movi(R(2), 17)
        b.st(R(2), R(1), 0)
        b.ld(R(3), R(1), 0)
        b.halt()

    t = run(body)
    store = next(e for e in t.entries if e.is_store)
    load = next(e for e in t.entries if e.is_load)
    assert store.addr == 0x40 and store.value == 17
    assert load.addr == 0x40 and load.value == 17


def test_execution_limit_raises():
    def body(b):
        b.label("spin")
        b.jmp("spin")
        b.halt()

    with pytest.raises(ExecutionLimitExceeded):
        run(body, max_instructions=100)


def test_execution_limit_truncates_when_allowed():
    def body(b):
        b.label("spin")
        b.jmp("spin")
        b.halt()

    t = run(body, max_instructions=100, truncate_ok=True)
    assert t.truncated
    assert len(t) == 100


def test_restart_is_architectural_nop():
    def body(b):
        b.movi(R(1), 3)
        b.restart(R(1))
        b.addi(R(2), R(1), 1)
        b.halt()

    t = run(body)
    assert t.final_registers[R(2)] == 4
    restart = next(e for e in t.entries if e.is_restart)
    assert restart.dests == ()
    assert restart.srcs == (R(1),)


def test_dynamic_counts():
    def body(b):
        b.movi(R(1), 0x80)
        b.ld(R(2), R(1), 0)
        b.st(R(2), R(1), 4)
        b.fmovi(F(1), 1.0)
        b.mul(R(3), R(2), R(2))
        b.cmpeqi(P(1), R(3), 0)
        b.br("end", pred=P(1))
        b.label("end")
        b.halt()

    t = run(body)
    counts = t.dynamic_counts()
    assert counts["loads"] == 1
    assert counts["stores"] == 1
    assert counts["muldiv"] == 1
    assert counts["branches"] == 1
