"""Pin the columnar trace data to its dynamic reference semantics.

The static dependence graph in ``repro.isa.columns`` claims to be
*exactly* the producer sets a timing core's dispatch stage would compute
by walking a rename table over the trace in seq order.  This suite
re-derives those sets with a straightforward dict-based reference walk
(for both rename disciplines) and asserts the CSR arrays agree entry by
entry, on a real workload trace that exercises predication, nullified
slots, loads, stores and branches.  The issue-resource columns are
pinned against the per-entry rules the cores used to apply inline.
"""

import pytest

from repro.harness.experiment import TraceCache
from repro.isa.columns import QUEUE_CODE, columns_of
from repro.isa.opcodes import FUClass
from repro.resources import PORT_CODE


@pytest.fixture(scope="module")
def trace():
    return TraceCache(scale=0.05).trace("vpr")


def _reference_producers(dec, merged_dests):
    """Dynamic rename-table walk: last writer of each source register."""
    last_writer = {}
    producers = []
    for seq in range(dec.n):
        prods = []
        for src in dec.srcs[seq]:
            p = last_writer.get(src, -1)
            if p >= 0 and p not in prods:
                prods.append(p)
        if merged_dests and dec.is_predicated[seq]:
            dests = dec.static_dests[seq]
            for dest in dests:
                p = last_writer.get(dest, -1)
                if p >= 0 and p not in prods:
                    prods.append(p)
        else:
            dests = dec.dests[seq]
        for dest in dests:
            last_writer[dest] = seq
        producers.append(tuple(prods))
    return producers


@pytest.mark.parametrize("merged_dests", [False, True])
def test_static_producers_match_rename_walk(trace, merged_dests):
    dec = trace.decoded
    graph = columns_of(dec).dependences(merged_dests)
    reference = _reference_producers(dec, merged_dests)
    assert graph.prod_off[0] == 0
    assert graph.prod_off[dec.n] == len(graph.prod_seq)
    for seq in range(dec.n):
        assert graph.producers(seq) == reference[seq], seq


def test_merged_variant_differs_on_predicated_code(trace):
    """vpr predicates enough code that the two disciplines disagree."""
    dec = trace.decoded
    ideal = columns_of(dec).dependences(False)
    merged = columns_of(dec).dependences(True)
    assert any(ideal.producers(seq) != merged.producers(seq)
               for seq in range(dec.n))


@pytest.mark.parametrize("merged_dests", [False, True])
def test_consumer_lists_are_exact_transpose(trace, merged_dests):
    dec = trace.decoded
    graph = columns_of(dec).dependences(merged_dests)
    pairs = {(p, seq)
             for seq in range(dec.n)
             for p in graph.producers(seq)}
    transposed = set()
    for p in range(dec.n):
        lo, hi = graph.cons_off[p], graph.cons_off[p + 1]
        consumers = graph.cons_seq[lo:hi]
        assert consumers == sorted(consumers), p
        for seq in consumers:
            transposed.add((p, seq))
    assert transposed == pairs


def test_issue_resource_columns(trace):
    dec = trace.decoded
    cols = columns_of(dec)
    assert cols.n == dec.n
    for seq in range(dec.n):
        fu = dec.issue_fu[seq]
        assert cols.port_code[seq] == PORT_CODE[fu], seq
        assert cols.queue_code[seq] == QUEUE_CODE[fu], seq
    # The queue partition: MEM -> 0, ALU/BR/NONE -> 1, FP/MULDIV -> 2.
    assert {QUEUE_CODE[FUClass.MEM]} == {0}
    assert {QUEUE_CODE[FUClass.ALU], QUEUE_CODE[FUClass.BR],
            QUEUE_CODE[FUClass.NONE]} == {1}
    assert {QUEUE_CODE[FUClass.FP], QUEUE_CODE[FUClass.MULDIV]} == {2}


def test_columns_cached_per_decoded_trace(trace):
    dec = trace.decoded
    cols = columns_of(dec)
    assert columns_of(dec) is cols
    assert cols.dependences(False) is cols.dependences(False)
    assert cols.dependences(True) is cols.dependences(True)
    assert cols.dependences(False) is not cols.dependences(True)
