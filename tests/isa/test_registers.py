"""Unit tests for the flat register namespace."""

import pytest

from repro.isa import registers as regs


def test_namespaces_are_disjoint():
    ints = {regs.R(i) for i in range(regs.NUM_INT_REGS)}
    fps = {regs.F(i) for i in range(regs.NUM_FP_REGS)}
    preds = {regs.P(i) for i in range(regs.NUM_PRED_REGS)}
    assert not ints & fps
    assert not ints & preds
    assert not fps & preds
    assert len(ints | fps | preds) == regs.NUM_REGS


def test_class_predicates():
    assert regs.is_int_reg(regs.R(5))
    assert not regs.is_int_reg(regs.F(5))
    assert regs.is_fp_reg(regs.F(0))
    assert regs.is_pred_reg(regs.P(63))
    assert not regs.is_pred_reg(regs.R(63))


def test_paper_register_file_sizes():
    """Table 2 / Section 4: 128 int, 128 fp, 64 predicate registers."""
    assert regs.NUM_INT_REGS == 128
    assert regs.NUM_FP_REGS == 128
    assert regs.NUM_PRED_REGS == 64


def test_hardwired_registers():
    assert regs.ZERO_REG == regs.R(0)
    assert regs.TRUE_PRED == regs.P(0)
    assert regs.ZERO_REG in regs.HARDWIRED
    assert regs.TRUE_PRED in regs.HARDWIRED


@pytest.mark.parametrize("ctor,limit", [
    (regs.R, regs.NUM_INT_REGS),
    (regs.F, regs.NUM_FP_REGS),
    (regs.P, regs.NUM_PRED_REGS),
])
def test_out_of_range_rejected(ctor, limit):
    with pytest.raises(ValueError):
        ctor(limit)
    with pytest.raises(ValueError):
        ctor(-1)


def test_name_round_trip():
    for rid in (regs.R(0), regs.R(127), regs.F(0), regs.F(64), regs.P(63)):
        assert regs.parse_reg(regs.reg_name(rid)) == rid


def test_parse_rejects_garbage():
    for text in ("x3", "r", "p-1", "rr1", "", "f1.5"):
        with pytest.raises(ValueError):
            regs.parse_reg(text)
