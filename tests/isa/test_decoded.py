"""Pin the decoded-trace cache to the per-entry properties.

``DecodedTrace`` is pure derived data: every flat list must agree with
the corresponding ``TraceEntry`` property (including nullification
semantics — ``is_load``/``is_store`` gated on ``executed``,
``is_branch`` not) for every entry.  A real workload trace exercises
predication, nullified slots, restarts, loads, stores and branches.
"""

import pytest

from repro.harness.experiment import TraceCache
from repro.isa.opcodes import FUClass
from repro.isa.trace import Trace
from repro.machine import MachineConfig
from repro.pipeline.base import BaseCore


@pytest.fixture(scope="module")
def trace():
    return TraceCache(scale=0.05).trace("vpr")


def test_fields_match_entry_properties(trace):
    dec = trace.decoded
    assert dec.n == len(trace.entries)
    for i, entry in enumerate(trace.entries):
        inst = entry.inst
        spec = inst.spec
        assert dec.fu[i] is spec.fu
        assert dec.srcs[i] == entry.srcs
        assert dec.dests[i] == entry.dests
        assert dec.static_dests[i] == inst.dests
        assert dec.latency[i] == spec.latency
        assert dec.pc[i] == inst.index
        assert dec.stop[i] == inst.stop
        assert dec.executed[i] == entry.executed
        assert dec.is_load[i] == entry.is_load
        assert dec.is_store[i] == entry.is_store
        assert dec.is_branch[i] == spec.is_branch
        assert dec.is_restart[i] == entry.is_restart
        assert dec.mem_exec[i] == (entry.executed
                                   and (entry.is_load or entry.is_store))
        assert dec.addr[i] == entry.addr
        assert dec.value[i] == entry.value
        assert dec.taken[i] == entry.taken


def test_issue_fu_matches_basecore_rule(trace):
    """issue_fu mirrors BaseCore.issue_fu: NONE when nullified."""
    dec = trace.decoded
    core = BaseCore(trace, MachineConfig(), 64)
    nullified = 0
    for i, entry in enumerate(trace.entries):
        assert dec.issue_fu[i] is core.issue_fu(entry)
        if dec.issue_fu[i] is FUClass.NONE and entry.inst.spec.fu \
                is not FUClass.NONE:
            nullified += 1
    assert nullified > 0, "workload should exercise nullified slots"


def test_decoded_is_cached_per_trace(trace):
    assert trace.decoded is trace.decoded


def test_decoded_lazy_on_fresh_trace(trace):
    clone = Trace(trace.program, list(trace.entries),
                  trace.final_registers, trace.final_memory)
    assert clone._decoded is None
    dec = clone.decoded
    assert dec.n == trace.decoded.n
