"""The cycle-bound oracle (`repro.analysis.audit`) and its sweep-engine
integration."""

from types import SimpleNamespace

import pytest

from repro.analysis import diagnostics as dc
from repro.analysis.audit import (AuditViolation, audit_matrix,
                                  check_bound)
from repro.analysis.bounds import cycle_lower_bound
from repro.harness import run_model
from repro.harness.parallel import sweep
from repro.isa import ProgramBuilder, R, execute


def chain_trace(depth=6):
    b = ProgramBuilder("chain")
    b.movi(R(1), 0)
    for _ in range(depth):
        b.addi(R(1), R(1), 1)
    b.halt()
    return execute(b.build())


# -- check_bound ------------------------------------------------------------

def test_check_bound_passes_on_real_simulation():
    trace = chain_trace()
    stats = run_model("inorder", trace)
    cell = check_bound(stats, trace, "inorder", "chain")
    assert cell.ok
    assert cell.verified
    assert cell.margin >= 1.0
    assert cell.cycles == stats.cycles
    assert cell.to_dict()["ok"] is True


def test_check_bound_raises_on_sub_physical_cycles():
    trace = chain_trace()
    bound = cycle_lower_bound(trace).bound
    assert bound > 1
    fake = SimpleNamespace(cycles=bound - 1)
    with pytest.raises(AuditViolation) as excinfo:
        check_bound(fake, trace, "inorder", "chain")
    violation = excinfo.value
    assert violation.model == "inorder"
    assert violation.workload == "chain"
    assert violation.cycles == bound - 1
    assert violation.diagnostic.code == dc.AUD001
    assert "AUD001" in str(violation)


# -- audit_matrix -----------------------------------------------------------

def test_audit_matrix_smoke_cell():
    report = audit_matrix(models=["inorder"], workloads=["vpr"],
                          scale=0.05)
    assert report.ok
    assert len(report.cells) == 1
    (cell,) = report.cells
    assert cell.workload == "vpr" and cell.model == "inorder"
    assert cell.margin >= 1.0
    assert "audit PASSED" in report.render()
    doc = report.to_dict()
    assert doc["ok"] is True
    assert doc["violations"] == []
    assert len(doc["cells"]) == 1


def test_audit_matrix_rejects_unknown_model():
    with pytest.raises(KeyError):
        audit_matrix(models=["warpdrive"], workloads=["vpr"], scale=0.05)


def test_audit_matrix_records_unverified_cells(monkeypatch):
    def boom(model, trace, config=None, **kwargs):
        raise RuntimeError("simulator exploded")

    monkeypatch.setattr("repro.harness.experiment.run_model", boom)
    report = audit_matrix(models=["inorder"], workloads=["vpr"],
                          scale=0.05)
    assert report.ok                      # unverified, not violated
    assert len(report.unverified) == 1
    assert "RuntimeError" in report.unverified[0].error
    assert "unverified" in report.render()


def test_audit_matrix_attaches_slack_profiles():
    report = audit_matrix(models=["inorder"], workloads=["vpr"],
                          scale=0.05, slack_workloads=["vpr"])
    assert "vpr" in report.slack
    assert "slack profile: vpr" in report.render()
    assert report.to_dict()["slack"]["vpr"]["rows"]


# -- sweep --audit ----------------------------------------------------------

def test_sweep_audit_passes_on_real_models():
    report = sweep(["inorder"], ["vpr"], scale=0.05, jobs=1, audit=True)
    assert report.ok
    assert report.simulated == 1


def test_sweep_audit_turns_violation_into_failure_row(monkeypatch):
    fake = SimpleNamespace(cycles=0)
    monkeypatch.setattr("repro.harness.parallel.run_model",
                        lambda *args, **kwargs: fake)
    report = sweep(["inorder"], ["vpr"], scale=0.05, jobs=1, audit=True,
                   retries=0)
    assert not report.ok
    (failure,) = report.failures
    assert failure.error.startswith("AuditViolation:")
    assert "AUD001" in failure.error


def test_sweep_audit_skips_cache_reads(tmp_path):
    cache = str(tmp_path / "cache")
    warm = sweep(["inorder"], ["vpr"], scale=0.05, jobs=1,
                 results_cache=cache)
    assert warm.simulated == 1
    audited = sweep(["inorder"], ["vpr"], scale=0.05, jobs=1,
                    results_cache=cache, audit=True)
    # The audit needs the worker's trace, so the cached stats are not
    # read back even though the key matches.
    assert audited.cache_hits == 0
    assert audited.simulated == 1
