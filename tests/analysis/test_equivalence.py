"""Differential equivalence checking across all simulators."""

from repro.analysis.equivalence import (DEFAULT_MODELS, Divergence,
                                        EquivalenceReport, StateSnapshot,
                                        _compare, check_workload,
                                        check_workloads)


def snapshot(source, regs=None, mem=None, retired=10):
    return StateSnapshot(source, regs if regs is not None else {1: 7},
                         mem if mem is not None else {0x100: 3}, retired)


def test_vpr_is_equivalent_across_all_models():
    report = check_workload("vpr", scale=0.05)
    assert report.ok, report.render()
    # functional + compiled + one snapshot per timing model.
    assert len(report.snapshots) == 2 + len(DEFAULT_MODELS)
    sources = [s.source for s in report.snapshots]
    assert sources[:2] == ["functional", "compiled"]
    assert set(DEFAULT_MODELS) <= set(sources)
    retired = {s.retired for s in report.snapshots}
    assert len(retired) == 1, "RESTART-adjusted retire counts must agree"


def test_parser_subset_of_models():
    report = check_workload("parser", models=("inorder", "multipass"),
                            scale=0.05)
    assert report.ok, report.render()
    assert len(report.snapshots) == 4


def test_check_workloads_plural():
    reports = check_workloads(["vpr"], models=("multipass",), scale=0.05)
    assert [r.workload for r in reports] == ["vpr"]
    assert reports[0].ok


def test_compare_reports_register_divergence_minimized():
    report = EquivalenceReport("w", 0.05)
    _compare(report, snapshot("functional"),
             snapshot("multipass", regs={1: 8}))
    (div,) = report.divergences
    assert (div.left, div.right, div.kind) == ("functional", "multipass",
                                               "registers")
    assert "got 8, want 7" in div.detail
    assert not report.ok


def test_compare_reports_memory_and_retired_divergence():
    report = EquivalenceReport("w", 0.05)
    _compare(report, snapshot("functional"),
             snapshot("ooo", mem={0x100: 4}, retired=9))
    kinds = {d.kind for d in report.divergences}
    assert kinds == {"memory", "retired"}


def test_render_mentions_outcome():
    report = EquivalenceReport("w", 0.05)
    assert "EQUIVALENT" in report.render()
    report.divergences.append(Divergence("a", "b", "registers", "x"))
    assert "DIVERGED" in report.render()
