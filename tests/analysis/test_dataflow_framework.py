"""The generic worklist solver and its instances
(`repro.analysis.dataflow`)."""

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import (ALL_REGS, LiveVariables, MustDefined,
                                     ReachingDefinitions, solve)
from repro.compiler.dataflow import build_dataflow_graph
from repro.isa import P, ProgramBuilder, R


def loop_program():
    b = ProgramBuilder("loop")
    b.movi(R(1), 4)                 # 0
    b.movi(R(2), 0x100)             # 1
    b.label("loop")
    b.ld(R(3), R(2), 0)             # 2
    b.add(R(4), R(3), R(1))         # 3
    b.st(R(4), R(2), 0)             # 4
    b.subi(R(1), R(1), 1)           # 5
    b.cmpnei(P(1), R(1), 0)         # 6
    b.br("loop", pred=P(1))         # 7
    b.halt()                        # 8
    b.data_word(0x100, 7)
    return b.build()


def diamond_program():
    b = ProgramBuilder("diamond")
    b.movi(R(1), 1)                 # 0
    b.cmplti(P(1), R(1), 5)         # 1
    b.br("right", pred=P(1))        # 2
    b.movi(R(2), 2)                 # 3  (left arm only)
    b.jmp("join")                   # 4
    b.label("right")
    b.movi(R(3), 3)                 # 5  (right arm only)
    b.label("join")
    b.halt()                        # 6
    return b.build()


# -- reaching definitions / def-use chains ----------------------------------

def test_reaching_definitions_cross_block_and_loop_carried():
    program = loop_program()
    chains = ReachingDefinitions(program).def_use_chains()
    # movi r1 (0) feeds the add (3), the subi (5) and, before the first
    # redefinition only, the cmpnei is fed by subi — loop-carried.
    assert 3 in chains.uses_of[0]
    assert 5 in chains.uses_of[0]
    # subi r1 (5) loops back into the add and itself.
    assert 3 in chains.uses_of[5]
    assert 5 in chains.uses_of[5]
    # The load (2) feeds only the add.
    assert chains.uses_of[2] == {3}
    # defs_of is the exact reverse relation.
    for def_idx, uses in chains.uses_of.items():
        for use_idx in uses:
            assert def_idx in chains.defs_of[use_idx]


def test_compiler_dataflow_graph_delegates_to_solver():
    program = loop_program()
    graph = build_dataflow_graph(program)
    chains = ReachingDefinitions(program).def_use_chains()
    assert graph.succs == chains.uses_of
    assert graph.preds == chains.defs_of


def test_reaching_definitions_merge_at_joins():
    program = diamond_program()
    rd = ReachingDefinitions(program)
    solution = rd.solve()
    cfg = rd.cfg
    join_bid = cfg.block_of[6]
    reaching = {idx for idx, _reg in solution.in_of[join_bid]}
    # Both arms' movis reach the join block.
    assert {3, 5} <= reaching


# -- live variables ---------------------------------------------------------

def test_liveness_exit_blocks_keep_all_registers_live():
    program = loop_program()
    lv = LiveVariables(program)
    solution = lv.solve()
    halt_bid = lv.cfg.block_of[8]
    assert solution.out_of[halt_bid] == ALL_REGS


def test_liveness_upward_exposed_uses_only():
    b = ProgramBuilder("usekill")
    b.add(R(2), R(1), R(1))         # 0: reads r1 (no prior def)
    b.addi(R(3), R(2), 1)           # 1: reads r2 AFTER its def at 0
    b.halt()                        # 2
    program = b.build()
    lv = LiveVariables(program)
    # One block: r1 is upward-exposed (read before any kill); r2 is
    # defined at 0 before its read at 1, so it is not in the use set.
    assert R(1) in lv._use[0]
    assert R(2) not in lv._use[0]


def test_predicated_write_does_not_kill_liveness():
    b = ProgramBuilder("predkill")
    b.movi(R(1), 1)
    b.cmplti(P(1), R(1), 5)
    b.addi(R(2), R(1), 1, pred=P(1))   # predicated def of r2
    b.halt()
    program = b.build()
    lv = LiveVariables(program)
    assert R(2) not in lv._kill[0]


# -- must-defined -----------------------------------------------------------

def test_must_defined_intersects_paths():
    program = diamond_program()
    md = MustDefined(program)
    solution = md.solve()
    join_bid = md.cfg.block_of[6]
    # r1 is defined on every path; r2/r3 only on one arm each.
    assert R(1) in solution.in_of[join_bid]
    assert R(2) not in solution.in_of[join_bid]
    assert R(3) not in solution.in_of[join_bid]


def test_must_defined_entry_starts_empty():
    program = diamond_program()
    solution = MustDefined(program).solve()
    assert solution.in_of[0] == frozenset()


# -- the generic solver -----------------------------------------------------

def test_solver_handles_empty_program():
    b = ProgramBuilder("empty")
    b.halt()
    program = b.build()
    cfg = build_cfg(program)
    solution = solve(cfg, MustDefined(program, cfg))
    assert len(solution.in_of) == len(cfg)


def test_forward_and_backward_fixpoints_are_stable():
    program = loop_program()
    for problem_cls in (ReachingDefinitions, LiveVariables, MustDefined):
        problem = problem_cls(program)
        solution = problem.solve()
        # Re-applying the transfer to every block's input reproduces its
        # output: the solution is a genuine fixpoint.
        for block in problem.cfg:
            bid = block.bid
            if problem.direction == "forward":
                assert problem.transfer(bid, solution.in_of[bid]) \
                    == solution.out_of[bid]
            else:
                assert problem.transfer(bid, solution.out_of[bid]) \
                    == solution.in_of[bid]
