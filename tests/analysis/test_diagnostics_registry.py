"""Stability rules for the diagnostic-code registry
(`repro.analysis.diagnostics`)."""

from pathlib import Path

import pytest

from repro.analysis import diagnostics as dc

DOCS = Path(__file__).resolve().parents[2] / "docs" / "diagnostics.md"

#: Codes that have shipped.  Append when a rule is added; never remove —
#: a published code disappearing from the registry (without moving to
#: RETIRED_CODES) breaks every tool that keyed on it.
PUBLISHED = {
    "UBD001": dc.Severity.ERROR,
    "DWR001": dc.Severity.WARNING,
    "UNR001": dc.Severity.WARNING,
    "CFG001": dc.Severity.WARNING,
    "LBL001": dc.Severity.ERROR,
    "LBL002": dc.Severity.ERROR,
    "LBL003": dc.Severity.ERROR,
    "MEM001": dc.Severity.ERROR,
    "RST001": dc.Severity.ERROR,
    "RST002": dc.Severity.ERROR,
    "RST003": dc.Severity.ERROR,
    "RST004": dc.Severity.WARNING,
    "GRP001": dc.Severity.ERROR,
    "GRP002": dc.Severity.ERROR,
    "GRP003": dc.Severity.ERROR,
    "PCH001": dc.Severity.ERROR,
    "PCH002": dc.Severity.ERROR,
    "AUD001": dc.Severity.ERROR,
}


def test_every_code_is_well_formed_and_described():
    reg = dc.registry()
    assert reg, "registry must not be empty"
    for code, spec in reg.items():
        assert dc.CODE_PATTERN.match(code), code
        assert spec.code == code
        assert spec.summary.strip(), f"{code} has no description"
        assert spec.severity in (dc.Severity.ERROR, dc.Severity.WARNING)


def test_published_codes_are_pinned():
    reg = dc.registry()
    for code, severity in PUBLISHED.items():
        assert code in reg, f"published code {code} vanished"
        assert reg[code].severity is severity, (
            f"{code} changed severity — that silently changes lint exit "
            f"codes; add a new code instead")
    # The reverse direction: a new code must be added to PUBLISHED above
    # (that is the act of publishing it).
    assert set(reg) == set(PUBLISHED)


def test_no_code_is_both_live_and_retired():
    assert not set(dc.registry()) & dc.RETIRED_CODES


def test_severity_of_matches_registry():
    assert dc.SEVERITY_OF == {code: spec.severity
                              for code, spec in dc.registry().items()}


def test_register_rejects_malformed_code():
    with pytest.raises(ValueError, match="malformed"):
        dc._register("bad1", dc.Severity.ERROR, "x")
    with pytest.raises(ValueError, match="malformed"):
        dc._register("ABCD001", dc.Severity.ERROR, "x")


def test_register_rejects_duplicate_code():
    with pytest.raises(ValueError, match="duplicate"):
        dc._register("UBD001", dc.Severity.ERROR, "x")


def test_register_rejects_retired_code(monkeypatch):
    monkeypatch.setattr(dc, "RETIRED_CODES", frozenset({"OLD001"}))
    with pytest.raises(ValueError, match="retired"):
        dc._register("OLD001", dc.Severity.ERROR, "x")


def test_register_rejects_empty_description():
    with pytest.raises(ValueError, match="description"):
        dc._register("NEW001", dc.Severity.ERROR, "   ")
    assert "NEW001" not in dc.registry()


def test_describe_returns_the_summary():
    assert dc.describe("AUD001") == dc.registry()["AUD001"].summary


def test_docs_catalogue_is_in_sync():
    assert DOCS.exists(), (
        "docs/diagnostics.md missing; regenerate with "
        "PYTHONPATH=src python -m repro.analysis.diagnostics "
        "> docs/diagnostics.md")
    assert DOCS.read_text() == dc.render_catalogue(), (
        "docs/diagnostics.md is stale; regenerate with "
        "PYTHONPATH=src python -m repro.analysis.diagnostics "
        "> docs/diagnostics.md")


def test_diagnostic_severity_defaults_from_registry():
    warn = dc.Diagnostic(dc.DWR001, "w")
    err = dc.Diagnostic(dc.UBD001, "e")
    assert not warn.is_error
    assert err.is_error
    # Unregistered codes fail safe: treated as errors.
    assert dc.Diagnostic("ZZZ999", "?").is_error
