"""Runtime invariant checking: ArchReplay and the --check instrumentation."""

import pytest

from repro.analysis import ArchReplay, InvariantError
from repro.harness import TraceCache, make_model
from repro.isa import P, R, ProgramBuilder, execute
from repro.isa.trace import TraceEntry
from repro.multipass.result_store import ResultStore, RSEntry


def small_trace():
    b = ProgramBuilder("inv")
    b.movi(R(1), 3)
    b.movi(R(2), 0x80)
    b.label("loop")
    b.ld(R(3), R(2), 0)
    b.add(R(4), R(3), R(1))
    b.st(R(4), R(2), 0)
    b.subi(R(1), R(1), 1)
    b.cmplti(P(1), R(1), 1)
    b.cmpeqi(P(2), P(1), 0)
    b.br("loop", pred=P(2))
    b.halt()
    b.data_word(0x80, 5)
    return execute(b.build())


def test_replaying_golden_trace_passes():
    trace = small_trace()
    replay = ArchReplay(trace)
    for entry in trace:
        replay.commit(entry)
    replay.finish()


def test_out_of_order_commit_raises():
    trace = small_trace()
    replay = ArchReplay(trace)
    replay.commit(trace[0])
    with pytest.raises(InvariantError, match="out-of-order commit"):
        replay.commit(trace[2])


def test_double_commit_raises():
    trace = small_trace()
    replay = ArchReplay(trace)
    replay.commit(trace[0])
    with pytest.raises(InvariantError, match="out-of-order commit"):
        replay.commit(trace[0])


def test_skipped_entry_detected_at_finish():
    trace = small_trace()
    replay = ArchReplay(trace)
    for entry in trace.entries[:-1]:
        replay.commit(entry)
    with pytest.raises(InvariantError, match="incomplete retirement"):
        replay.finish()


def test_tampered_value_detected():
    trace = small_trace()
    replay = ArchReplay(trace)
    first_load = next(e for e in trace if e.is_load)
    for entry in trace.entries[:first_load.seq]:
        replay.commit(entry)
    forged = TraceEntry(first_load.inst, first_load.seq, first_load.dests,
                        first_load.srcs, addr=first_load.addr,
                        value=12345, taken=first_load.taken)
    with pytest.raises(InvariantError, match="value mismatch"):
        replay.commit(forged)


def test_wrong_path_commit_detected():
    trace = small_trace()
    replay = ArchReplay(trace)
    skipped_ahead = TraceEntry(trace[1].inst, 0, trace[1].dests,
                               trace[1].srcs, value=trace[1].value)
    with pytest.raises(InvariantError, match="control-flow divergence"):
        replay.commit(skipped_ahead)


@pytest.mark.parametrize("model", ["inorder", "multipass", "runahead",
                                   "twopass", "ooo", "ooo-realistic",
                                   "multipass-hwrestart"])
def test_every_model_passes_checked_run(model):
    cache = TraceCache(scale=0.05)
    trace = cache.trace("vpr")
    core = make_model(model, trace, check=True)
    core.run()
    assert core.replay.retired == len(trace)


def test_result_store_checked_capacity_overflow():
    rs = ResultStore(capacity=2, checked=True)
    rs.put(RSEntry(0, ready=1))
    rs.put(RSEntry(1, ready=1))
    with pytest.raises(InvariantError, match="overflowed"):
        rs.put(RSEntry(2, ready=1))


def test_result_store_unchecked_does_not_enforce():
    rs = ResultStore(capacity=1, checked=False)
    rs.put(RSEntry(0, ready=1))
    rs.put(RSEntry(1, ready=1))   # legacy permissive behaviour
    assert len(rs) == 2
